//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides
//! exactly the surface the workspace consumes: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`RngExt::random_range`] over
//! integer and float ranges. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic, fast, and statistically solid for
//! workload generation and simulation; it makes no cryptographic claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a uniform value in `[0, 1)`.
    fn random_unit(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// A range that knows how to sample a uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = widening_mod(rng.next_u64(), span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Reduces a raw 64-bit draw into `[0, span)`; `span == 0` means the
/// full 2^64 range (only reachable from `0..=u64::MAX`).
fn widening_mod(raw: u64, span: u128) -> u64 {
    if span == 0 || span > u128::from(u64::MAX) {
        raw
    } else {
        // Lemire-style widening multiply avoids the modulo's low-bit bias.
        ((u128::from(raw) * span) >> 64) as u64
    }
}

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = rng.random_unit() as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                // lo + (hi - lo) can round past hi when u == 1.0; keep
                // the contract that samples never exceed the endpoint.
                let v = lo + (hi - lo) * u;
                if v > hi { hi } else { v }
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 stream expands the seed into the full state; it
            // cannot produce the all-zero state xoshiro forbids.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0u32..=5);
            assert!(w <= 5);
            let s = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
            let w: f64 = rng.random_range(2.0..=3.0);
            assert!((2.0..=3.0).contains(&w));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.random_range(0usize..10)] += 1;
        }
        for b in buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }
}
