//! Vendored stand-in for the `parking_lot` crate.
//!
//! Implements the non-poisoning `Mutex`/`MutexGuard`/`Condvar` API the
//! workspace uses on top of `std::sync`. Poisoned std locks are
//! recovered transparently (`parking_lot` has no poisoning), so a
//! panicking holder never wedges the middleware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A non-poisoning mutual-exclusion lock.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is always `Some` outside of [`Condvar::wait`],
/// which briefly takes the std guard to hand it to the OS wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable for use with [`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing `guard`'s lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses; returns `true` when
    /// the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
