//! Vendored stand-in for the `crossbeam` crate.
//!
//! Provides [`channel`]: bounded multi-producer multi-consumer channels
//! with the `crossbeam-channel` API surface the runtime uses (`bounded`,
//! blocking `send`, `recv`, `recv_timeout`, `try_recv`, disconnection on
//! last-handle drop). Built on `std::sync::{Mutex, Condvar}` — correct
//! and portable; the lock-free fast paths of the real crate can be
//! swapped back in by pointing the workspace dependency at crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel {
    //! Bounded MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Creates a bounded channel holding at most `cap` messages.
    ///
    /// A `cap` of zero is rounded up to one (the runtime never uses
    /// rendezvous semantics; a zero-capacity channel would deadlock a
    /// single-threaded send-then-recv sequence).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders are gone and the buffer is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of a bounded channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while the buffer is full.
        ///
        /// # Errors
        ///
        /// [`SendError`] when every [`Receiver`] has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if st.buf.len() < st.cap {
                    st.buf.push_back(msg);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Sends `msg` without blocking.
        ///
        /// # Errors
        ///
        /// Returns the message back when the buffer is full or the
        /// channel disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 || st.buf.len() >= st.cap {
                return Err(SendError(msg));
            }
            st.buf.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake blocked receivers so they observe disconnection.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a bounded channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the buffer is empty.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the buffer is drained and every
        /// [`Sender`] has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(msg) = st.buf.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives a message, waiting at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
        /// [`RecvTimeoutError::Disconnected`] when the channel is done.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.lock();
            loop {
                if let Some(msg) = st.buf.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
                if res.timed_out() && st.buf.is_empty() {
                    return if st.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Receives a message without blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            if let Some(msg) = st.buf.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                // Wake blocked senders so they observe disconnection.
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            for i in 0..4 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = bounded::<u8>(2);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = bounded::<u8>(2);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn blocking_send_unblocks_on_recv() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn mpmc_under_contention() {
            let (tx, rx) = bounded::<u64>(8);
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        for i in 0..1000u64 {
                            tx.send(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for p in producers {
                p.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap().len()).sum();
            assert_eq!(total, 4000);
        }
    }
}
