//! Vendored stand-in for the `libc` crate.
//!
//! Declares exactly the Linux glibc/musl bindings the YASMIN runtime
//! uses for its real-time setup: CPU affinity (`cpu_set_t`,
//! `pthread_setaffinity_np`), memory locking (`mlockall`) and
//! `SCHED_FIFO` priorities (`pthread_setschedparam`). Types, constants
//! and signatures mirror the real `libc` crate for `*-linux-gnu`
//! targets, so swapping the real crate back in is a manifest-only
//! change. The crate is empty off Linux; callers gate on
//! `cfg(target_os = "linux")`.

#![warn(missing_docs)]
#![allow(non_camel_case_types)]
// The CPU_* helpers keep the C macro names, as the real crate does.
#![allow(non_snake_case)]

#[cfg(target_os = "linux")]
mod linux {
    /// C `int`.
    pub type c_int = i32;
    /// C `unsigned long`.
    pub type c_ulong = u64;
    /// C `size_t`.
    pub type size_t = usize;
    /// POSIX thread handle.
    pub type pthread_t = c_ulong;

    /// Number of CPUs representable in a [`cpu_set_t`].
    pub const CPU_SETSIZE: c_int = 1024;

    /// Linux CPU affinity mask (1024 bits).
    #[repr(C)]
    #[derive(Copy, Clone, Debug)]
    pub struct cpu_set_t {
        bits: [u64; CPU_SETSIZE as usize / 64],
    }

    /// Clears every CPU in `set` (the `CPU_ZERO` macro).
    ///
    /// # Safety
    ///
    /// Not actually unsafe; marked so to match the real crate's
    /// signature.
    pub unsafe fn CPU_ZERO(set: &mut cpu_set_t) {
        set.bits = [0; CPU_SETSIZE as usize / 64];
    }

    /// Adds `cpu` to `set` (the `CPU_SET` macro). Out-of-range CPUs are
    /// ignored, as in glibc.
    ///
    /// # Safety
    ///
    /// Not actually unsafe; marked so to match the real crate's
    /// signature.
    pub unsafe fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
        let idx = cpu / 64;
        if idx < set.bits.len() {
            set.bits[idx] |= 1 << (cpu % 64);
        }
    }

    /// Returns whether `cpu` is in `set` (the `CPU_ISSET` macro).
    ///
    /// # Safety
    ///
    /// Not actually unsafe; marked so to match the real crate's
    /// signature.
    pub unsafe fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
        let idx = cpu / 64;
        idx < set.bits.len() && set.bits[idx] & (1 << (cpu % 64)) != 0
    }

    /// `mlockall` flag: lock currently mapped pages.
    pub const MCL_CURRENT: c_int = 1;
    /// `mlockall` flag: lock pages mapped in the future.
    pub const MCL_FUTURE: c_int = 2;
    /// Fixed-priority FIFO scheduling policy.
    pub const SCHED_FIFO: c_int = 1;

    /// Scheduling parameters for `pthread_setschedparam`.
    #[repr(C)]
    #[derive(Copy, Clone, Debug)]
    pub struct sched_param {
        /// Static priority (1–99 for `SCHED_FIFO`).
        pub sched_priority: c_int,
    }

    extern "C" {
        /// Handle of the calling thread.
        pub fn pthread_self() -> pthread_t;
        /// Restricts `thread` to the CPUs in `cpuset`.
        pub fn pthread_setaffinity_np(
            thread: pthread_t,
            cpusetsize: size_t,
            cpuset: *const cpu_set_t,
        ) -> c_int;
        /// Locks the process address space into RAM.
        pub fn mlockall(flags: c_int) -> c_int;
        /// Sets `thread`'s scheduling policy and parameters.
        pub fn pthread_setschedparam(
            thread: pthread_t,
            policy: c_int,
            param: *const sched_param,
        ) -> c_int;
    }
}

#[cfg(target_os = "linux")]
pub use linux::*;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn cpu_set_macros_roundtrip() {
        // SAFETY: the CPU_* helpers only touch the passed-in value.
        unsafe {
            let mut set: cpu_set_t = std::mem::zeroed();
            CPU_ZERO(&mut set);
            assert!(!CPU_ISSET(0, &set));
            CPU_SET(0, &mut set);
            CPU_SET(63, &mut set);
            CPU_SET(64, &mut set);
            assert!(CPU_ISSET(0, &set));
            assert!(CPU_ISSET(63, &set));
            assert!(CPU_ISSET(64, &set));
            assert!(!CPU_ISSET(1, &set));
            // Out of range: ignored, not UB.
            CPU_SET(1_000_000, &mut set);
        }
    }

    #[test]
    fn pthread_self_is_nonzero() {
        // SAFETY: pthread_self has no preconditions.
        let me = unsafe { pthread_self() };
        assert_ne!(me, 0);
    }

    #[test]
    fn affinity_call_links_and_runs() {
        // SAFETY: set is a valid zeroed mask with CPU 0 set; the call
        // only affects the calling thread.
        unsafe {
            let mut set: cpu_set_t = std::mem::zeroed();
            CPU_ZERO(&mut set);
            CPU_SET(0, &mut set);
            // May fail in restricted cpusets; linking and not crashing
            // is the contract under test.
            let _ = pthread_setaffinity_np(pthread_self(), std::mem::size_of::<cpu_set_t>(), &set);
        }
    }
}
