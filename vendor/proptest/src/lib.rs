//! Vendored stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! `proptest!` macro over functions whose arguments are drawn from
//! strategies (`lo..hi` integer ranges, `any::<T>()`,
//! `prop::collection::vec`), `ProptestConfig::with_cases`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Inputs are drawn from a
//! deterministic per-test RNG (seeded from the test name and case
//! index) so failures reproduce exactly; there is no shrinking — the
//! failing case prints its inputs via the assertion message instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies; re-exported for custom strategies.
pub type TestRng = StdRng;

/// Creates the deterministic RNG for one (test, case) pair.
#[must_use]
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the test name, mixed with the case index, so every
    // test explores a distinct but fully reproducible input stream.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Something that can generate values for a test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy producing any value of `T` (uniform over the type).
#[must_use]
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_unit()
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::RngExt;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Vectors of `element` values with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.random_range(self.size.clone());
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each function runs `cases` times with
/// arguments freshly drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strategy),+ ) $body
            )*
        }
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Any, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 1usize..40, x in any::<u64>()) {
            prop_assert!((1..40).contains(&n));
            let _ = x;
        }

        #[test]
        fn vectors_respect_len(v in prop::collection::vec(0u64..10, 1..64)) {
            prop_assert!(!v.is_empty() && v.len() < 64);
            prop_assert!(v.iter().all(|&e| e < 10), "bad elem in {:?}", v);
        }
    }

    #[test]
    fn rng_is_deterministic_per_case() {
        use rand::RngCore;
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
