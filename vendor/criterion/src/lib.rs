//! Vendored stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`, `black_box` — with a simple
//! wall-clock measurement loop: warm up, run batches until the
//! measurement budget is spent, report mean/min per-iteration time.
//! No statistics engine, plots, or baselines; `cargo bench` prints a
//! one-line summary per benchmark. Passing `--test` (as Criterion
//! accepts) runs each benchmark exactly once for a smoke check.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Shared benchmark settings and the CLI mode.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        // cargo bench passes `--bench`; Criterion's own flags we honour
        // are `--test` (run once, no measurement) and a bare filter.
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                "--profile-time" | "--save-baseline" | "--baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => filter = Some(other.to_string()),
                _ => {}
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(200),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.as_ref();
        let full_id = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if !self.criterion.matches(&full_id) {
            return self;
        }
        if self.criterion.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {full_id} ... ok");
            return self;
        }

        // Warm-up: repeatedly run single iterations until the budget is
        // spent; the last observed per-iter time sizes the batches.
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_micros(1);
        loop {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed;
            }
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }

        // Measurement: `sample_size` batches sized to fill the budget.
        let budget = self.measurement_time.max(Duration::from_millis(10));
        let batch_time = budget / self.sample_size as u32;
        let iters_per_batch =
            (batch_time.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        let mut means = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_batch,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            means.push(b.elapsed.as_secs_f64() / iters_per_batch as f64);
        }
        means.sort_by(f64::total_cmp);
        let min = means.first().copied().unwrap_or(0.0);
        let mid = means[means.len() / 2];
        let max = means.last().copied().unwrap_or(0.0);
        println!(
            "{full_id:<40} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mid),
            fmt_time(max)
        );
        self
    }

    /// Ends the group (kept for API compatibility; reporting is inline).
    pub fn finish(self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this batch's iteration count.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_quickly_in_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| ran += 1));
        group.finish();
        assert!(ran >= 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
    }
}
