//! # YASMIN — Yet Another Scheduling MIddleware for exploratioN
//!
//! A Rust reproduction of *"YASMIN: a Real-time Middleware for COTS
//! Heterogeneous Platforms"* (Rouxel, Altmeyer & Grelck, Middleware 2021,
//! arXiv:2108.00730): user-space real-time scheduling with multi-version
//! tasks, hardware-accelerator arbitration, global/partitioned on-line
//! scheduling, off-line time tables, DAG task graphs with FIFO channels —
//! plus the simulator, baselines and analysis used to regenerate every
//! table and figure of the paper's evaluation.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`core`] | task model, versions, graphs, config, platforms, time |
//! | [`sched`] | the scheduling engine (online G/P, offline tables, version selection, PIP, typed priority message plane) |
//! | [`rt`] | real-thread runtime (scheduler thread + pinned workers) |
//! | [`sim`] | discrete-event simulator (heterogeneous platforms, kernel latency models) |
//! | [`sync`] | MCS/ticket locks, PIP mutex, barriers, SPSC rings, wait strategies |
//! | [`taskgen`] | DRS/UUniFast generators, DAGs, the drone SAR workload |
//! | [`analysis`] | RTA, EDF demand bound, G-EDF tests, DAG bounds |
//! | [`baselines`] | Mollison & Anderson library, cyclictest, stress-ng analogue |
//! | [`mod@bench`] | experiment harness for the paper's figures and tables |
//!
//! ## Quick start
//!
//! Declare tasks (the paper's Table 1 API, rustified), build a runtime,
//! run:
//!
//! ```
//! use std::sync::Arc;
//! use yasmin::prelude::*;
//!
//! # fn main() -> Result<(), yasmin::Error> {
//! let mut b = TaskSetBuilder::new();
//! let tick = b.task_decl(TaskSpec::periodic("tick", Duration::from_millis(5)))?;
//! let v = b.version_decl(tick, VersionSpec::new("v0", Duration::from_micros(50)))?;
//! let taskset = Arc::new(b.build()?);
//!
//! let config = Config::builder()
//!     .workers(1)
//!     .priority(PriorityPolicy::EarliestDeadlineFirst)
//!     .preemption(false) // thread runtime is job-level non-preemptive
//!     .build()?;
//!
//! let rt = RuntimeBuilder::new(taskset, config)
//!     .body(tick, v, |ctx| { let _ = ctx.job.seq; })
//!     .build()?;
//! std::thread::sleep(std::time::Duration::from_millis(25));
//! rt.stop();
//! let report = rt.cleanup();
//! assert!(report.records.len() >= 2);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for the paper's diamond-graph listing, the drone SAR
//! application, off-line table scheduling and a host cyclictest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use yasmin_analysis as analysis;
pub use yasmin_baselines as baselines;
pub use yasmin_bench as bench;
pub use yasmin_core as core;
pub use yasmin_rt as rt;
pub use yasmin_sched as sched;
pub use yasmin_sim as sim;
pub use yasmin_sync as sync;
pub use yasmin_taskgen as taskgen;

pub use yasmin_core::{Error, Result};

/// The most common imports in one place.
pub mod prelude {
    pub use yasmin_core::channel::BackpressurePolicy;
    pub use yasmin_core::config::{
        Config, LockChoice, MappingScheme, SchedulerClass, VersionPolicy, WaitChoice,
    };
    pub use yasmin_core::energy::{BatteryLevel, Energy, Power};
    pub use yasmin_core::graph::{TaskSet, TaskSetBuilder};
    pub use yasmin_core::ids::{AccelId, ChannelId, JobId, TaskId, TenantId, VersionId, WorkerId};
    pub use yasmin_core::platform::PlatformSpec;
    pub use yasmin_core::priority::{Priority, PriorityPolicy};
    pub use yasmin_core::task::{ActivationKind, DeadlineKind, OverrunPolicy, TaskSpec};
    pub use yasmin_core::time::{Duration, Instant};
    pub use yasmin_core::version::{ExecMode, ModeMask, PermMask, VersionProps, VersionSpec};
    pub use yasmin_rt::{
        JobCtx, Runtime, RuntimeBuilder, ShardedRuntime, ShardedRuntimeBuilder, TaskBody,
    };
    pub use yasmin_sched::{
        AdmissionControl, AdmissionError, BoundViolation, ChannelBuilder, JobOutcome, MsgEvent,
        MsgNotify, NotifyHandle, OnlineEngine, Receiver, ScheduleTable, SendError, Sender,
        TenantBudget,
    };
    pub use yasmin_sim::{SimConfig, Simulation};
}
