//! Quickstart — the paper's running example (Listings 1 & 2).
//!
//! A diamond task graph: a periodic `fork` feeds `left` and `right`;
//! both feed `join`. Data travels through FIFO channels. `left` has two
//! versions — one plain, one using the declared
//! `quantum_rand_num_generator` accelerator — selected at run time by the
//! energy policy against the platform battery probe.
//!
//! Run: `cargo run --release --example quickstart`

use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::{Arc, Mutex};
use yasmin::prelude::*;

fn main() -> Result<(), yasmin::Error> {
    // ----- Listing 1: the configuration header, rustified -------------
    // (GLOBAL mapping, EDF priorities, energy-based version selection,
    // 2 worker threads.)
    let battery = Arc::new(AtomicU16::new(1000)); // permille, drained below
    let battery_probe = Arc::clone(&battery);
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Global)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .version_policy(VersionPolicy::Energy)
        .preemption(false) // thread runtime schedules at job boundaries
        .battery_source(move || BatteryLevel::from_permille(battery_probe.load(Ordering::Relaxed)))
        .build()?;

    // ----- Listing 2: task, version, channel declarations -------------
    let mut b = TaskSetBuilder::new();
    let fork = b.task_decl(TaskSpec::periodic("fork", Duration::from_millis(250)))?;
    let left = b.task_decl(TaskSpec::graph_node("left"))?;
    let right = b.task_decl(TaskSpec::graph_node("right"))?;
    let join = b.task_decl(TaskSpec::graph_node("join"))?;

    let accel = b.hwaccel_decl("quantum_rand_num_generator");

    let fork_v = b.version_decl(fork, VersionSpec::new("fork", Duration::from_micros(60)))?;
    let right_v = b.version_decl(right, VersionSpec::new("right", Duration::from_micros(80)))?;
    let join_v = b.version_decl(join, VersionSpec::new("join", Duration::from_micros(50)))?;
    // left_v1: cheap, CPU only. left_v2: accelerator-backed, more energy.
    let left_v1 = b.version_decl(
        left,
        VersionSpec::new("left_v1", Duration::from_micros(90))
            .with_energy_budget(Energy::from_millijoules(5)),
    )?;
    let left_v2 = b.version_decl(
        left,
        VersionSpec::new("left_v2", Duration::from_micros(30))
            .with_energy_budget(Energy::from_millijoules(11)),
    )?;
    b.hwaccel_use(left, left_v2, accel)?;

    // Channels: fl carries no data (pure precedence, capacity 0 in the
    // paper; here the token is tracked by the engine and the data path is
    // a typed SPSC ring captured by the closures).
    let fl = b.channel_decl("fl", 2, 0);
    let fr = b.channel_decl("fr", 2, 8);
    let lj = b.channel_decl("lj", 2, 4);
    let rj = b.channel_decl("rj", 4, 4);
    b.channel_connect(fork, left, fl)?;
    b.channel_connect(fork, right, fr)?;
    b.channel_connect(left, join, lj)?;
    b.channel_connect(right, join, rj)?;
    let taskset = Arc::new(b.build()?);

    // ----- user task bodies, wired with typed channels ----------------
    let (fr_tx, fr_rx) = yasmin::sync::spsc::channel::<u64>(4);
    let (lj_tx, lj_rx) = yasmin::sync::spsc::channel::<u64>(4);
    let (rj_tx, rj_rx) = yasmin::sync::spsc::channel::<u64>(8);
    let (fr_tx, fr_rx) = (Mutex::new(fr_tx), Mutex::new(fr_rx));
    let (lj_tx, lj_rx) = (Mutex::new(lj_tx), Mutex::new(lj_rx));
    let (rj_tx, rj_rx) = (Mutex::new(rj_tx), Mutex::new(rj_rx));

    let battery_drain = Arc::clone(&battery);
    let v2_runs = Arc::new(AtomicU16::new(0));
    let v1_runs = Arc::new(AtomicU16::new(0));
    let v2_runs_b = Arc::clone(&v2_runs);
    let v1_runs_b = Arc::clone(&v1_runs);

    let rt = RuntimeBuilder::new(taskset, config)
        .body(fork, fork_v, move |ctx| {
            // push a token value to right; drain the battery as we fly.
            let _ = fr_tx.lock().unwrap().push(ctx.job.seq * 2);
            let lvl = battery_drain.load(Ordering::Relaxed);
            battery_drain.store(lvl.saturating_sub(60), Ordering::Relaxed);
        })
        .body(left, left_v1, move |_| {
            v1_runs_b.fetch_add(1, Ordering::Relaxed);
            let _ = lj_tx.lock().unwrap().push(1);
        })
        .body(left, left_v2, move |_| {
            v2_runs_b.fetch_add(1, Ordering::Relaxed);
            // "get_val_from_specific_accel()"
            let _ = 42u64;
        })
        .body(right, right_v, move |_| {
            if let Some(v) = fr_rx.lock().unwrap().pop() {
                let mut tx = rj_tx.lock().unwrap();
                let _ = tx.push(v);
                let _ = tx.push(v * 2);
            }
        })
        .body(join, join_v, move |ctx| {
            let mut rx = rj_rx.lock().unwrap();
            let a = rx.pop().unwrap_or(0);
            let b = rx.pop().unwrap_or(0);
            let c = lj_rx.lock().unwrap().pop().unwrap_or(0);
            println!(
                "join #{:>2}: right sent {a} and {b}, left sent {c}",
                ctx.job.seq
            );
        })
        .build()?;

    // start() already ran inside build+spawn; let four frames through.
    std::thread::sleep(std::time::Duration::from_millis(1_100));
    rt.stop();
    let report = rt.cleanup();

    println!(
        "\n{} jobs completed; left ran v2 (accelerated) {} times and v1 (cheap) {} times\n\
         — the energy policy downgraded once the battery probe dropped.",
        report.records.len(),
        v2_runs.load(Ordering::Relaxed),
        v1_runs.load(Ordering::Relaxed),
    );
    Ok(())
}
