//! The Search & Rescue drone mission of §5, simulated end to end.
//!
//! Builds the SAR application of Figure 3b (frame pipeline at 2 fps with
//! CUDA/CPU multi-version image tasks + 100 Hz flight-control handler),
//! flies a short mission on an Apalis-TK1-class platform under G-EDF with
//! automatic version selection, and reports per-frame times, version
//! choices and deadline behaviour.
//!
//! Run: `cargo run --release --example drone_sar`

use std::sync::Arc;
use yasmin::prelude::*;
use yasmin::sim::{ExecModel, OverheadModel, StressProfile};
use yasmin::taskgen::drone::{self, VersionRestriction, SECURE_MODE};

fn main() -> Result<(), yasmin::Error> {
    let mission = Duration::from_secs(30);
    let workload = drone::build(VersionRestriction::Both)?;
    println!(
        "SAR application: {} tasks, {} channels, accelerator `{}`",
        workload.taskset.len(),
        workload.taskset.channels().len(),
        workload.taskset.accel(workload.gpu)?.name()
    );

    // Schedulability sanity before flying: Graham bound of the frame
    // graph on 3 workers.
    let bound = yasmin::analysis::graham_bound(
        &workload.taskset,
        workload.tasks.fetch,
        3,
        yasmin::analysis::WcetAssumption::MinVersion,
    );
    println!("Graham makespan bound (min-WCET versions, 3 cores): {bound}");

    let config = Config::builder()
        .workers(3)
        .mapping(MappingScheme::Global)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .version_policy(VersionPolicy::Mode)
        .build()?;

    // Boats appear in one frame out of three: those windows run in the
    // secure mode, so `encode` selects its AES version.
    let frames = mission / drone::FRAME_PERIOD;
    let mode_schedule: Vec<(Duration, ExecMode)> = (0..frames)
        .map(|k| {
            let mode = if k % 3 == 2 {
                SECURE_MODE
            } else {
                ExecMode::NORMAL
            };
            (drone::FRAME_PERIOD * k, mode)
        })
        .collect();

    let sim = SimConfig {
        platform: PlatformSpec::apalis_tk1(),
        horizon: mission,
        exec: ExecModel::Wcet,
        kernel: None,
        stress: StressProfile::IDLE,
        overheads: OverheadModel::default(),
        seed: 2026,
        measure_engine_time: false,
        mode_schedule,
        msg_schedule: Vec::new(),
        fault_schedule: Vec::new(),
    };
    let result = Simulation::new(Arc::new(workload.taskset.clone()), config, sim)?.run()?;

    let e2e = result.end_to_end(workload.tasks.send);
    let (min, max, avg) = e2e.as_micros_triple();
    println!(
        "\nframes processed : {}",
        result.records_of(workload.tasks.send).count()
    );
    println!(
        "frame time (ms)  : min {:.1}  max {:.1}  avg {:.1}",
        min / 1e3,
        max / 1e3,
        avg / 1e3
    );

    // Which versions did the scheduler pick?
    for (task, name) in [
        (workload.tasks.detect, "detect"),
        (workload.tasks.estimate, "estimate"),
        (workload.tasks.highlight, "highlight"),
        (workload.tasks.encode, "encode"),
    ] {
        let mut by_version = std::collections::BTreeMap::new();
        for r in result.records_of(task) {
            *by_version.entry(r.version).or_insert(0u32) += 1;
        }
        let detail: Vec<String> = by_version
            .iter()
            .map(|(v, n)| {
                let vname = workload
                    .taskset
                    .task(task)
                    .unwrap()
                    .version(*v)
                    .unwrap()
                    .name()
                    .to_string();
                format!("{vname}×{n}")
            })
            .collect();
        println!("{name:<10}: {}", detail.join(", "));
    }

    let fc = result.response_times(workload.tasks.fc_handler);
    println!(
        "\nflight-control handler: {} activations, max response {:.0} µs, {} misses",
        fc.count(),
        fc.max().unwrap_or(0) as f64 / 1e3,
        result.miss_count(workload.tasks.fc_handler)
    );
    println!(
        "total deadline misses : {} (multi-version 'both' absorbs the AES frames)",
        result.total_misses()
    );
    println!(
        "modelled energy       : {:.1} J",
        result.energy.as_millijoules_f64() / 1e3
    );
    Ok(())
}
