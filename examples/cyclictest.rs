//! cyclictest on this host (§4.2): measures real wake-up latency of
//! periodic threads, bare and under the stress-ng-like load, plus the
//! YASMIN-managed variant through the real runtime.
//!
//! Run: `cargo run --release --example cyclictest`

use std::sync::Arc;
use yasmin::baselines::cyclictest::{run_real, CyclictestConfig};
use yasmin::baselines::stress::StressRunner;
use yasmin::prelude::*;
use yasmin::sim::StressProfile;

fn yasmin_managed(cfg: &CyclictestConfig, loops_cap: usize) -> yasmin::core::stats::Summary {
    // The same measurement, but with the threads managed by the YASMIN
    // runtime: each task body records its dispatch latency.
    let mut b = TaskSetBuilder::new();
    let mut ids = Vec::new();
    for i in 0..cfg.threads {
        let t = b
            .task_decl(TaskSpec::periodic(format!("cyclic{i}"), cfg.interval))
            .expect("valid spec");
        let v = b
            .version_decl(t, VersionSpec::new("v", Duration::from_micros(20)))
            .expect("valid version");
        ids.push((t, v));
    }
    let ts = Arc::new(b.build().expect("valid set"));
    let config = Config::builder()
        .workers(cfg.threads)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .build()
        .expect("valid config");
    let mut builder = RuntimeBuilder::new(ts, config).lock_memory();
    for (t, v) in ids {
        builder = builder.body(t, v, |_| {});
    }
    let rt = builder.build().expect("runtime builds");
    let wall: std::time::Duration = (cfg.interval * (loops_cap as u64 + 2)).into();
    std::thread::sleep(wall);
    rt.stop();
    let report = rt.cleanup();
    report
        .records
        .iter()
        .map(|r| r.start_latency().as_nanos())
        .collect()
}

fn main() {
    // Shortened from the paper's -l 10000 so the example finishes in
    // seconds; pass the full protocol through `exp_table2` instead.
    let cfg = CyclictestConfig {
        threads: 6,
        interval: Duration::from_millis(10),
        loops: 200,
    };
    println!(
        "cyclictest -t {} -i {} -l {} (host kernel)\n",
        cfg.threads,
        cfg.interval.as_micros(),
        cfg.loops
    );

    let idle = run_real(&cfg);
    let (min, max, avg) = idle.as_micros_triple();
    println!("bare threads, idle host     : <{min:.0}, {max:.0}, {avg:.0}> µs");

    let stress = StressRunner::spawn(StressProfile {
        cache: 2,
        cpu: 2,
        timer: 2,
        yield_: 2,
    });
    let loaded = run_real(&cfg);
    stress.stop();
    let (min, max, avg) = loaded.as_micros_triple();
    println!("bare threads, stressed host : <{min:.0}, {max:.0}, {avg:.0}> µs");

    let managed = yasmin_managed(&cfg, 100);
    let (min, max, avg) = managed.as_micros_triple();
    println!("YASMIN-managed, idle host   : <{min:.0}, {max:.0}, {avg:.0}> µs");
    println!(
        "\n(The YASMIN figure includes the scheduler-thread relay — the same\n\
         architectural cost Table 2 measures on the Odroid-XU4.)"
    );
}
