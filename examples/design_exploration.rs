//! Design-space exploration (the middleware's raison d'être): the same
//! application swept across scheduling policies, mappings and version-
//! selection strategies, entirely in the simulator — "RT-experts and
//! non-experts alike can explore the scheduling design space to select
//! the best performing technique" (§1).
//!
//! Run: `cargo run --release --example design_exploration`

use std::sync::Arc;
use yasmin::prelude::*;
use yasmin::sim::ExecModel;
use yasmin::taskgen::taskset::{build_independent, build_partitioned, IndependentSetParams};

fn main() -> Result<(), yasmin::Error> {
    let params = IndependentSetParams {
        n: 24,
        total_utilisation: 1.6,
        seed: 11,
        ..IndependentSetParams::default()
    };

    println!("| mapping | priority | preemption | misses | max response (ms) | preemptions |");
    println!("|---|---|---|---|---|---|");
    for mapping in [MappingScheme::Global, MappingScheme::Partitioned] {
        for priority in [
            PriorityPolicy::EarliestDeadlineFirst,
            PriorityPolicy::DeadlineMonotonic,
            PriorityPolicy::RateMonotonic,
        ] {
            for preemption in [true, false] {
                let ts = match mapping {
                    MappingScheme::Global => build_independent(&params)?,
                    MappingScheme::Partitioned => build_partitioned(&params, 2)?,
                };
                let config = Config::builder()
                    .workers(2)
                    .mapping(mapping)
                    .priority(priority)
                    .preemption(preemption)
                    .max_pending_jobs(8192)
                    .build()?;
                let mut sim = SimConfig::uniform(2, Duration::from_secs(2));
                sim.exec = ExecModel::UniformPct {
                    min_pct: 80,
                    max_pct: 100,
                };
                sim.seed = 99;
                let result = Simulation::new(Arc::new(ts), config, sim)?.run()?;
                let max_resp = result
                    .records
                    .iter()
                    .map(|r| r.response_time().as_nanos())
                    .max()
                    .unwrap_or(0) as f64
                    / 1e6;
                println!(
                    "| {} | {} | {} | {} | {:.2} | {} |",
                    mapping.label(),
                    priority.label(),
                    if preemption { "on" } else { "off" },
                    result.total_misses(),
                    max_resp,
                    result.engine_stats.preempted,
                );
            }
        }
    }
    println!(
        "\nSwitching any of these knobs is one builder call — the paper's\n\
         'recompile with a different config.h', without the recompile."
    );
    Ok(())
}
