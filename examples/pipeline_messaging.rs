//! A telemetry pipeline over the typed message plane:
//! producer → filter → sink, with a high-priority control lane.
//!
//! The producer emits one frame every 5 ms over a channel bound to its
//! DAG edge; every fourth frame is urgent and rides the channel's
//! **high lane**, whose declared ceiling the scheduler can see. The
//! filter stage is deliberately slower than the frame period, so a
//! backlog of filter jobs builds up on its worker — and each urgent
//! post boosts the pending filter job to the ceiling through the
//! priority-inheritance machinery until the lane drains, letting
//! control traffic overtake the data backlog. Kept frames cross a
//! second (plain) channel to the sink on the other worker, so the
//! hand-off also exercises the cross-shard routing path.
//!
//! Run: `cargo run --release --example pipeline_messaging`
//!
//! See `yasmin_sched::msg` for the full lane/boost protocol.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use yasmin::prelude::*;

fn ms(n: u64) -> Duration {
    Duration::from_micros(n * 1_000)
}

fn main() -> Result<(), yasmin::Error> {
    // ----- the pipeline graph -----------------------------------------
    // producer (periodic, worker 0) ──frames──▶ filter (worker 1)
    //                                             │
    //                                           kept (plain channel)
    //                                             ▼
    //                                           sink (worker 0)
    let mut b = TaskSetBuilder::new();
    let producer =
        b.task_decl(TaskSpec::periodic("producer", ms(5)).on_worker(WorkerId::new(0)))?;
    let vp = b.version_decl(producer, VersionSpec::new("v", Duration::from_micros(50)))?;
    let filter = b.task_decl(TaskSpec::graph_node("filter").on_worker(WorkerId::new(1)))?;
    let vf = b.version_decl(filter, VersionSpec::new("v", ms(8)))?;
    let sink = b.task_decl(TaskSpec::graph_node("sink").on_worker(WorkerId::new(0)))?;
    let vs = b.version_decl(sink, VersionSpec::new("v", Duration::from_micros(100)))?;

    // 64-slot data lane + 16-slot high lane: an urgent frame boosts the
    // pending `filter` job to the ceiling until the lane drains.
    let frames = b.channel_decl_prioritized("frames", 64, 8, 16, Priority::HIGHEST);
    b.channel_connect(producer, filter, frames)?;
    // The kept-frames channel is plain: no ceiling, no boost.
    let kept = b.channel_decl("kept", 64, 8);
    b.channel_connect(filter, sink, kept)?;
    let taskset = Arc::new(b.build()?);

    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .build()?;

    // ----- typed endpoints, validated against the declared spec -------
    let mut builder = ShardedRuntimeBuilder::new(taskset, config);
    let (frames_tx, frames_rx) = builder.channel::<u64>(frames)?;
    let (kept_tx, kept_rx) = builder.channel::<u64>(kept)?;

    let produced = Arc::new(AtomicU32::new(0));
    let urgent = Arc::new(AtomicU32::new(0));
    let filtered = Arc::new(AtomicU32::new(0));
    let sunk = Arc::new(AtomicU32::new(0));
    let checksum = Arc::new(AtomicU64::new(0));

    let (p, u) = (Arc::clone(&produced), Arc::clone(&urgent));
    let f = Arc::clone(&filtered);
    let (s, c) = (Arc::clone(&sunk), Arc::clone(&checksum));
    let rt = builder
        .body(producer, vp, move |_| {
            let n = u64::from(p.fetch_add(1, Ordering::SeqCst));
            if n % 4 == 0 {
                u.fetch_add(1, Ordering::SeqCst);
                let _ = frames_tx.send_high(n); // control lane: boosts `filter`
            } else {
                let _ = frames_tx.send(n); // data lane
            }
        })
        .body(filter, vf, move |_| {
            // Keep even frames; `recv` drains the high lane first, so
            // urgent frames are seen before the queued data backlog.
            while let Some(n) = frames_rx.recv() {
                if n % 2 == 0 {
                    f.fetch_add(1, Ordering::SeqCst);
                    let _ = kept_tx.send(n);
                }
            }
            // The expensive stage the backlog piles up behind.
            std::thread::sleep(std::time::Duration::from_millis(8));
        })
        .body(sink, vs, move |_| {
            while let Some(n) = kept_rx.recv() {
                s.fetch_add(1, Ordering::SeqCst);
                c.fetch_add(n, Ordering::SeqCst);
            }
        })
        .build()?;

    std::thread::sleep(std::time::Duration::from_millis(120));
    rt.stop();
    let report = rt.cleanup();

    println!(
        "producer emitted {} frames ({} urgent, on the high lane)",
        produced.load(Ordering::SeqCst),
        urgent.load(Ordering::SeqCst)
    );
    println!(
        "filter kept {} even frames; sink received {} (checksum {})",
        filtered.load(Ordering::SeqCst),
        sunk.load(Ordering::SeqCst),
        checksum.load(Ordering::SeqCst)
    );
    println!(
        "scheduler boosts from the control lane: {} (released on drain)",
        report.engine_stats.msg_boosts
    );
    assert!(
        report.engine_stats.msg_boosts >= 1,
        "an urgent post while filter work is pending must boost it"
    );
    Ok(())
}
