//! Off-line table-driven scheduling (§3.4, Fig. 1c).
//!
//! Synthesises a time table for a small task set over one hyperperiod,
//! validates it (no overlap, precedence, accelerator exclusivity),
//! prints it, and lets the on-line dispatcher walk two hyperperiods.
//!
//! Run: `cargo run --release --example offline_schedule`

use std::sync::Arc;
use yasmin::prelude::*;
use yasmin::sched::offline::{synthesize_strict, OfflineDispatcher, SynthesisOptions};

fn main() -> Result<(), yasmin::Error> {
    let mut b = TaskSetBuilder::new();
    let gpu = b.hwaccel_decl("gpu");

    // A sensor->filter pipeline plus two independent tasks, one of which
    // has a GPU version that the off-line scheduler pre-selects.
    let sensor = b.task_decl(TaskSpec::periodic("sensor", Duration::from_millis(20)))?;
    b.version_decl(sensor, VersionSpec::new("sensor", Duration::from_millis(2)))?;
    let filter = b.task_decl(TaskSpec::graph_node("filter"))?;
    b.version_decl(filter, VersionSpec::new("filter", Duration::from_millis(3)))?;
    let ch = b.channel_decl("samples", 2, 16);
    b.channel_connect(sensor, filter, ch)?;

    let ctrl = b.task_decl(TaskSpec::periodic("control", Duration::from_millis(10)))?;
    b.version_decl(ctrl, VersionSpec::new("control", Duration::from_millis(1)))?;

    let vision = b.task_decl(TaskSpec::periodic("vision", Duration::from_millis(40)))?;
    let vg = b.version_decl(
        vision,
        VersionSpec::new("vision-gpu", Duration::from_millis(6)),
    )?;
    b.hwaccel_use(vision, vg, gpu)?;
    b.version_decl(
        vision,
        VersionSpec::new("vision-cpu", Duration::from_millis(14)),
    )?;

    let ts = b.build()?;
    println!(
        "hyperperiod = {}, scheduler tick would be {}",
        ts.hyperperiod().unwrap(),
        ts.scheduler_tick().unwrap()
    );

    let table = synthesize_strict(&ts, 2, SynthesisOptions::default())?;
    table.validate(&ts)?;
    println!(
        "table: horizon {}, makespan {}, {} entries, 0 deadline misses\n",
        table.horizon(),
        table.makespan(),
        table.all_entries().count()
    );
    for w in 0..table.workers() {
        println!("worker {w}:");
        for e in table.entries(WorkerId::new(w as u16)) {
            let task = ts.task(e.task)?;
            let version = task.version(e.version)?;
            println!(
                "  [{} .. {}] {:<10} ({}) release {} deadline {}",
                e.start,
                e.finish(),
                task.spec().name(),
                version.name(),
                e.release,
                e.abs_deadline,
            );
        }
    }

    // The run-time dispatcher unrolls hyperperiods ("special delay slots
    // … make the worker threads wait" between entries).
    let mut dispatcher = OfflineDispatcher::new(Arc::new(table));
    println!("\ndispatcher walk (worker 0, two hyperperiods):");
    let per_cycle = dispatcher.table().entries(WorkerId::new(0)).len();
    for _ in 0..2 * per_cycle {
        let slot = dispatcher.next_slot(WorkerId::new(0)).expect("nonempty");
        println!(
            "  start {:>9} run {:<10} v{} for {}",
            slot.start.to_string(),
            ts.task(slot.task)?.spec().name(),
            slot.version.index(),
            slot.duration
        );
    }
    Ok(())
}
