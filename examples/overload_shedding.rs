//! Fault-tolerant execution under overload: a fast producer floods a
//! slow consumer, and a flaky sensor task panics every few activations.
//!
//! Two PR 9 mechanisms keep the system live:
//!
//! * **Overload shedding** — the consumer joins a fast `frames` edge
//!   (2 ms producer) with a slow `pace` edge (12 ms pacer), so frame
//!   tokens pile up waiting for the next pace token. The `frames`
//!   channel is declared with [`BackpressurePolicy::DropOldest`]: when
//!   the wait fills its declared capacity, the scheduler sheds the
//!   *stalest* pending activation token instead of rejecting the new
//!   one, so each join consumes recent data and the backlog is bounded.
//!   `EngineStats::shed_drops` counts the sheds; `channel_overflows`
//!   stays zero because nothing is ever refused.
//! * **Worker-panic containment** — the sensor body panics on every
//!   third frame. The worker catches the unwind, reports the job as
//!   [`JobOutcome::Failed`], and keeps serving later activations; the
//!   panic messages printed below are the contained unwinds, not
//!   crashes. `EngineStats::failed` counts them.
//!
//! Run: `cargo run --release --example overload_shedding`
//!
//! See `docs/ARCHITECTURE.md` ("Fault model") for the full policy
//! matrix (overrun enforcement, kill/demote, trip wire, drain).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use yasmin::prelude::*;

fn ms(n: u64) -> Duration {
    Duration::from_micros(n * 1_000)
}

fn main() -> Result<(), yasmin::Error> {
    // ----- the graph --------------------------------------------------
    // producer (periodic 2 ms, worker 0) ──frames──▶ consumer (worker 1)
    // pacer    (periodic 12 ms, worker 1) ──pace───▶ consumer  (join)
    // sensor   (periodic 10 ms, worker 0; panics every 3rd activation)
    let mut b = TaskSetBuilder::new();
    let producer =
        b.task_decl(TaskSpec::periodic("producer", ms(2)).on_worker(WorkerId::new(0)))?;
    let vp = b.version_decl(producer, VersionSpec::new("v", Duration::from_micros(50)))?;
    let pacer = b.task_decl(TaskSpec::periodic("pacer", ms(12)).on_worker(WorkerId::new(1)))?;
    let vpc = b.version_decl(pacer, VersionSpec::new("v", Duration::from_micros(50)))?;
    let consumer = b.task_decl(TaskSpec::graph_node("consumer").on_worker(WorkerId::new(1)))?;
    let vc = b.version_decl(consumer, VersionSpec::new("v", Duration::from_micros(200)))?;
    let sensor = b.task_decl(TaskSpec::periodic("sensor", ms(10)).on_worker(WorkerId::new(0)))?;
    let vs = b.version_decl(sensor, VersionSpec::new("v", Duration::from_micros(100)))?;

    // Four pending frame tokens at most; beyond that the scheduler
    // sheds the oldest token rather than rejecting the newest.
    let frames = b.channel_decl_shedding("frames", 4, 8, BackpressurePolicy::DropOldest);
    b.channel_connect(producer, consumer, frames)?;
    let pace = b.channel_decl("pace", 4, 1);
    b.channel_connect(pacer, consumer, pace)?;
    let taskset = Arc::new(b.build()?);

    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .build()?;

    let mut builder = ShardedRuntimeBuilder::new(taskset, config);
    let (frames_tx, frames_rx) = builder.channel::<u64>(frames)?;

    let produced = Arc::new(AtomicU32::new(0));
    let consumed = Arc::new(AtomicU32::new(0));
    let freshest = Arc::new(AtomicU64::new(0));
    let sensed = Arc::new(AtomicU32::new(0));

    let p = Arc::clone(&produced);
    let (c, fresh) = (Arc::clone(&consumed), Arc::clone(&freshest));
    let s = Arc::clone(&sensed);
    let rt = builder
        .body(producer, vp, move |_| {
            let n = u64::from(p.fetch_add(1, Ordering::SeqCst));
            // Lossy payload send: token-side shedding is the
            // scheduler's job, the typed channel only carries the
            // payloads — a full lane here just means the consumer will
            // see a gap, exactly like the shed token it mirrors.
            let _ = frames_tx.send(n);
        })
        .body(pacer, vpc, move |_| {})
        .body(consumer, vc, move |_| {
            // One join per pace token: drain whatever payloads the kept
            // (recent) frame tokens correspond to.
            while let Some(n) = frames_rx.recv() {
                c.fetch_add(1, Ordering::SeqCst);
                fresh.store(n, Ordering::SeqCst);
            }
        })
        .body(sensor, vs, move |_| {
            let k = s.fetch_add(1, Ordering::SeqCst);
            assert!(k % 3 != 2, "sensor glitch on frame {k} (injected)");
        })
        .build()?;

    std::thread::sleep(std::time::Duration::from_millis(150));
    rt.stop();
    let report = rt.cleanup();

    println!(
        "producer emitted {} frames; consumer processed {} (freshest seq {})",
        produced.load(Ordering::SeqCst),
        consumed.load(Ordering::SeqCst),
        freshest.load(Ordering::SeqCst)
    );
    println!(
        "scheduler shed {} stale activation tokens (DropOldest); {} refusals",
        report.engine_stats.shed_drops, report.engine_stats.channel_overflows
    );
    println!(
        "sensor activations: {}, contained panics: {} (worker lived on)",
        sensed.load(Ordering::SeqCst),
        report.engine_stats.failed
    );
    assert!(
        report.engine_stats.shed_drops >= 1,
        "a 2 ms producer joined against a 12 ms pacer must shed"
    );
    assert_eq!(
        report.engine_stats.channel_overflows, 0,
        "DropOldest sheds instead of refusing"
    );
    assert!(
        report.engine_stats.failed >= 1,
        "every third sensor activation panics; containment must record it"
    );
    Ok(())
}
