//! Multi-tenant serving — admit a tenant into a *running* schedule,
//! let it execute under a budget, then retire it.
//!
//! The runtime starts with one build-time task set (tenant 0). While it
//! is running, a second task set arrives. An admission gate on the
//! caller's (non-real-time) thread re-runs the schedulability analysis
//! over the merged set; only if every bound still holds is the tenant
//! spliced into the live engine — over the same control lanes the
//! scheduler shards already drain — with its releases anchored to the
//! next tick edge so the first deadline is as safe as the analysis
//! assumed. A third, oversubscribed task set is refused with the exact
//! bound it violates, and the running schedule never hears of it.
//!
//! Run: `cargo run --release --example multi_tenant`
//!
//! See `yasmin_sched::admission` for the full tenancy model.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use yasmin::prelude::*;

const MS: u64 = 1_000; // microseconds per millisecond

fn ms(n: u64) -> Duration {
    Duration::from_micros(n * MS)
}

/// A single-task tenant: one periodic task pinned to `worker`, one
/// version, one body that bumps `counter`. Tenants are ordinary task
/// sets — built with the same `TaskSetBuilder` as the build-time set.
fn tenant_taskset(
    name: &str,
    period: Duration,
    wcet: Duration,
    worker: u16,
    counter: &Arc<AtomicU32>,
) -> (TaskSet, HashMap<(TaskId, VersionId), TaskBody>) {
    let mut b = TaskSetBuilder::new();
    let t = b
        .task_decl(TaskSpec::periodic(name, period).on_worker(WorkerId::new(worker)))
        .expect("task decl");
    let v = b
        .version_decl(t, VersionSpec::new("v", wcet))
        .expect("version decl");
    let c = Arc::clone(counter);
    let mut bodies: HashMap<(TaskId, VersionId), TaskBody> = HashMap::new();
    // Bodies are keyed by the tenant's *local* ids; the runtime remaps
    // them onto the merged id space during the splice.
    bodies.insert(
        (t, v),
        Arc::new(move |_: &JobCtx| {
            c.fetch_add(1, Ordering::Relaxed);
        }),
    );
    (b.build().expect("tenant build"), bodies)
}

fn main() -> Result<(), yasmin::Error> {
    // ----- tenant 0: the build-time task set ---------------------------
    // One 5 ms periodic task pinned to worker 0. Partitioned mapping +
    // sharded dispatch gives each worker its own scheduler shard, so the
    // tenant we admit later lands on worker 1 without ever contending
    // with this one.
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .build()?;

    let mut b = TaskSetBuilder::new();
    let base = b.task_decl(TaskSpec::periodic("base", ms(5)).on_worker(WorkerId::new(0)))?;
    let vb = b.version_decl(base, VersionSpec::new("v", Duration::from_micros(60)))?;
    let taskset = Arc::new(b.build()?);

    let base_runs = Arc::new(AtomicU32::new(0));
    let br = Arc::clone(&base_runs);
    let rt = ShardedRuntimeBuilder::new(taskset, config)
        .body(base, vb, move |_| {
            br.fetch_add(1, Ordering::Relaxed);
        })
        .build()?;
    std::thread::sleep(std::time::Duration::from_millis(15));
    println!(
        "schedule running: tenant 0 completed {} jobs",
        base_runs.load(Ordering::Relaxed)
    );

    // ----- admit: a well-behaved tenant with a budget ------------------
    // 10 ms period, 80 µs WCET, pinned to worker 1. The deferrable
    // budget caps the tenant at 2 ms of CPU per 10 ms window *per
    // shard* — overrunning jobs are deferred, not dropped, and the
    // build-time tenant is insulated either way.
    let tenant_runs = Arc::new(AtomicU32::new(0));
    let (cand, bodies) =
        tenant_taskset("guest", ms(10), Duration::from_micros(80), 1, &tenant_runs);
    let tenant = rt
        .admit(&cand, bodies, Some(TenantBudget::deferrable(ms(2), ms(10))))
        .expect("guest tenant passes every bound");
    println!("tenant {} admitted while the schedule runs", tenant.raw());

    // ----- reject: an oversubscribed tenant ----------------------------
    // 12 ms of work every 10 ms on worker 1 — density 1.2. The gate
    // names the violated bound; no scheduler thread ever saw the set.
    let noop = Arc::new(AtomicU32::new(0));
    let (bad, bad_bodies) = tenant_taskset("greedy", ms(10), ms(12), 1, &noop);
    match rt.admit(&bad, bad_bodies, None) {
        Err(AdmissionError::Rejected(violation)) => {
            println!("greedy tenant refused: {violation}");
        }
        other => panic!("expected a rejection, got {other:?}"),
    }

    // ----- run, then retire --------------------------------------------
    std::thread::sleep(std::time::Duration::from_millis(50));
    let served = tenant_runs.load(Ordering::Relaxed);
    rt.retire(tenant)?;
    println!("tenant {} retired after {served} jobs", tenant.raw());

    std::thread::sleep(std::time::Duration::from_millis(20));
    rt.stop();
    let report = rt.cleanup();

    // Tenant 0 ran undisturbed from start to stop; the guest's jobs all
    // ran on its own worker and none after the in-flight one at retire.
    let guest_task = TaskId::new(1); // merged suffix: base set holds T0
    let guest_recs = report
        .records
        .iter()
        .filter(|r| r.job.task == guest_task)
        .count();
    println!(
        "final tally: tenant 0 ran {} jobs, guest ran {} (records agree: {})",
        base_runs.load(Ordering::Relaxed),
        tenant_runs.load(Ordering::Relaxed),
        guest_recs
    );
    Ok(())
}
