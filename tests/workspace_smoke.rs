//! Workspace smoke test: every member crate links through the `yasmin`
//! facade and its headline types are constructible. This is the
//! first-line defence against manifest rot — a crate dropped from the
//! facade, a broken re-export, or a member that stops compiling fails
//! here before any behavioural test runs.

use std::sync::Arc;
use yasmin::prelude::*;

/// `yasmin-core` via the facade: builder, task, version, channel.
#[test]
fn core_links_and_builds_a_taskset() {
    let mut b = TaskSetBuilder::new();
    let t = b
        .task_decl(TaskSpec::periodic("smoke", Duration::from_millis(10)))
        .expect("task_decl");
    let v = b
        .version_decl(t, VersionSpec::new("v0", Duration::from_micros(100)))
        .expect("version_decl");
    let set = b.build().expect("build");
    assert_eq!(set.task(t).expect("task").versions().len(), 1);
    let _: VersionId = v;
}

/// `yasmin-core::config` via the facade prelude.
#[test]
fn config_links_and_validates() {
    let config = Config::builder()
        .workers(2)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .expect("config");
    assert!(!config.label().is_empty());
}

/// `yasmin-sched` via the facade: the online engine is constructible.
#[test]
fn sched_links_and_constructs_engine() {
    let mut b = TaskSetBuilder::new();
    let t = b
        .task_decl(TaskSpec::periodic("e", Duration::from_millis(5)))
        .expect("task_decl");
    b.version_decl(t, VersionSpec::new("v0", Duration::from_millis(1)))
        .expect("version_decl");
    let ts = Arc::new(b.build().expect("build"));
    let config = Config::builder().workers(1).build().expect("config");
    let engine = OnlineEngine::new(ts, config).expect("engine");
    assert_eq!(engine.stats().dispatched, 0);
}

/// `yasmin-sched::offline` via the facade: table synthesis runs.
#[test]
fn sched_offline_links_and_synthesizes() {
    use yasmin::sched::offline::{synthesize, SynthesisOptions};
    let mut b = TaskSetBuilder::new();
    let t = b
        .task_decl(TaskSpec::periodic("o", Duration::from_millis(4)))
        .expect("task_decl");
    b.version_decl(t, VersionSpec::new("v0", Duration::from_millis(1)))
        .expect("version_decl");
    let ts = b.build().expect("build");
    let table: ScheduleTable = synthesize(&ts, 1, SynthesisOptions::default()).expect("synthesize");
    assert!(table.validate(&ts).is_ok());
}

/// `yasmin-rt` via the facade: a runtime starts, runs jobs, stops.
#[test]
fn rt_links_and_runs_a_job() {
    let mut b = TaskSetBuilder::new();
    let t = b
        .task_decl(TaskSpec::periodic("rt", Duration::from_millis(2)))
        .expect("task_decl");
    let v = b
        .version_decl(t, VersionSpec::new("v0", Duration::from_micros(10)))
        .expect("version_decl");
    let ts = Arc::new(b.build().expect("build"));
    let config = Config::builder()
        .workers(1)
        .preemption(false) // the thread runtime is job-level non-preemptive
        .build()
        .expect("config");
    let rt = RuntimeBuilder::new(ts, config)
        .body(t, v, |ctx| {
            let _ = ctx.job.seq;
        })
        .build()
        .expect("runtime");
    std::thread::sleep(std::time::Duration::from_millis(20));
    rt.stop();
    let report = rt.cleanup();
    assert!(
        !report.records.is_empty(),
        "runtime produced no job records"
    );
}

/// `yasmin-sim` via the facade: the simulator runs a tiny horizon.
#[test]
fn sim_links_and_simulates() {
    let mut b = TaskSetBuilder::new();
    let t = b
        .task_decl(TaskSpec::periodic("s", Duration::from_millis(5)))
        .expect("task_decl");
    b.version_decl(t, VersionSpec::new("v0", Duration::from_millis(1)))
        .expect("version_decl");
    let ts = Arc::new(b.build().expect("build"));
    let config = Config::builder().workers(1).build().expect("config");
    let sim = SimConfig::uniform(1, Duration::from_millis(50));
    let result = Simulation::new(ts, config, sim)
        .expect("sim")
        .run()
        .expect("run");
    assert!(result.records.len() >= 9, "expected ~10 releases in 50ms");
}

/// `yasmin-sync` via the facade: locks, barriers and rings construct.
#[test]
fn sync_links_and_locks() {
    use yasmin::sync::{LockKind, SpinBarrier, TicketLock, YasminLock};
    let lock = YasminLock::new(LockKind::Posix, 0u32);
    *lock.lock() += 1;
    assert_eq!(*lock.lock(), 1);
    let ticket = TicketLock::new(7u8);
    assert_eq!(*ticket.lock(), 7);
    let barriers = SpinBarrier::new(1);
    assert_eq!(barriers.len(), 1);
    let (mut tx, mut rx) = yasmin::sync::spsc::channel::<u8>(2);
    tx.push(3).expect("push");
    assert_eq!(rx.pop(), Some(3));
}

/// `yasmin-taskgen` via the facade: generators produce valid vectors.
#[test]
fn taskgen_links_and_generates() {
    let u = yasmin::taskgen::uunifast(8, 2.0, 42);
    assert_eq!(u.len(), 8);
    assert!((u.iter().sum::<f64>() - 2.0).abs() < 1e-9);
    let d = yasmin::taskgen::drs(8, 2.0, 1.0, 42).expect("drs");
    assert_eq!(d.len(), 8);
}

/// `yasmin-analysis` via the facade: the classic bounds answer.
#[test]
fn analysis_links_and_answers() {
    use yasmin::analysis::{edf_utilisation_test, liu_layland_bound, WcetAssumption};
    let bound = liu_layland_bound(2);
    assert!(bound > 0.82 && bound < 0.83);
    let mut b = TaskSetBuilder::new();
    let t = b
        .task_decl(TaskSpec::periodic("a", Duration::from_millis(10)))
        .expect("task_decl");
    b.version_decl(t, VersionSpec::new("v0", Duration::from_millis(4)))
        .expect("version_decl");
    let ts = b.build().expect("build");
    assert!(edf_utilisation_test(&ts, WcetAssumption::MaxVersion));
}

/// `yasmin-baselines` via the facade: configuration types construct.
#[test]
fn baselines_links_and_configures() {
    let cfg = yasmin::baselines::CyclictestConfig::default();
    let _variant = yasmin::baselines::Variant::Native;
    assert!(cfg.interval >= Duration::from_micros(1));
}

/// `yasmin-bench` via the facade: the experiment harness is reachable
/// (result writing is best-effort by contract).
#[test]
fn bench_links_and_writes_results() {
    yasmin::bench::write_result("smoke.txt", "ok\n");
}

/// Energy/battery/platform types from the prelude are constructible.
#[test]
fn prelude_value_types_construct() {
    let e = Energy::from_millijoules(5);
    assert!((e.as_millijoules_f64() - 5.0).abs() < 1e-9);
    let p = Power::from_milliwatts(1000);
    let over_1s = p.energy_over(Duration::from_secs(1));
    assert!((over_1s.as_millijoules_f64() - 1000.0).abs() < 1e-6);
    let b = BatteryLevel::from_permille(500);
    assert!(b.as_fraction() > 0.49 && b.as_fraction() < 0.51);
    let plat = PlatformSpec::odroid_xu4();
    assert!(plat.cores().count() >= 1);
}
