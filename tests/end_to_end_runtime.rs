//! End-to-end tests of the real-thread runtime through the public facade.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use yasmin::prelude::*;

fn base_config(workers: usize) -> Config {
    Config::builder()
        .workers(workers)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .build()
        .expect("valid config")
}

#[test]
fn diamond_graph_flows_data_end_to_end() {
    let mut b = TaskSetBuilder::new();
    let fork = b
        .task_decl(TaskSpec::periodic("fork", Duration::from_millis(5)))
        .unwrap();
    let left = b.task_decl(TaskSpec::graph_node("left")).unwrap();
    let right = b.task_decl(TaskSpec::graph_node("right")).unwrap();
    let join = b.task_decl(TaskSpec::graph_node("join")).unwrap();
    let mut vs = Vec::new();
    for t in [fork, left, right, join] {
        vs.push(
            b.version_decl(t, VersionSpec::new("v", Duration::from_micros(30)))
                .unwrap(),
        );
    }
    for (i, (s, d)) in [(fork, left), (fork, right), (left, join), (right, join)]
        .into_iter()
        .enumerate()
    {
        let c = b.channel_decl(format!("c{i}"), 4, 8);
        b.channel_connect(s, d, c).unwrap();
    }
    let ts = Arc::new(b.build().unwrap());

    let (ltx, lrx) = yasmin::sync::spsc::channel::<u64>(16);
    let (rtx, rrx) = yasmin::sync::spsc::channel::<u64>(16);
    let (ltx, lrx) = (Mutex::new(ltx), Mutex::new(lrx));
    let (rtx, rrx) = (Mutex::new(rtx), Mutex::new(rrx));
    let sum = Arc::new(AtomicU32::new(0));
    let sum_join = Arc::clone(&sum);

    let rt = RuntimeBuilder::new(ts, base_config(2))
        .body(fork, vs[0], |_| {})
        .body(left, vs[1], move |ctx| {
            let _ = ltx.lock().unwrap().push(ctx.job.seq + 1);
        })
        .body(right, vs[2], move |ctx| {
            let _ = rtx.lock().unwrap().push(ctx.job.seq + 1);
        })
        .body(join, vs[3], move |_| {
            let l = lrx.lock().unwrap().pop().unwrap_or(0);
            let r = rrx.lock().unwrap().pop().unwrap_or(0);
            assert_eq!(l, r, "join consumed mismatched frames");
            sum_join.fetch_add(l as u32, Ordering::SeqCst);
        })
        .build()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(60));
    rt.stop();
    let report = rt.cleanup();
    assert!(sum.load(Ordering::SeqCst) > 0);
    // Every completed frame ran the four tasks exactly once.
    let count = |t: TaskId| report.records.iter().filter(|r| r.job.task == t).count();
    assert_eq!(count(left), count(join));
    assert_eq!(count(right), count(join));
    assert!(count(fork) >= count(join));
    assert_eq!(report.engine_stats.channel_overflows, 0);
}

#[test]
fn partitioned_runtime_respects_pinning() {
    let mut b = TaskSetBuilder::new();
    let t0 = b
        .task_decl(TaskSpec::periodic("w0", Duration::from_millis(4)).on_worker(WorkerId::new(0)))
        .unwrap();
    let t1 = b
        .task_decl(TaskSpec::periodic("w1", Duration::from_millis(4)).on_worker(WorkerId::new(1)))
        .unwrap();
    let v0 = b
        .version_decl(t0, VersionSpec::new("v", Duration::from_micros(20)))
        .unwrap();
    let v1 = b
        .version_decl(t1, VersionSpec::new("v", Duration::from_micros(20)))
        .unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .priority(PriorityPolicy::DeadlineMonotonic)
        .preemption(false)
        .build()
        .unwrap();
    let rt = RuntimeBuilder::new(ts, config)
        .body(t0, v0, |ctx| assert_eq!(ctx.worker, WorkerId::new(0)))
        .body(t1, v1, |ctx| assert_eq!(ctx.worker, WorkerId::new(1)))
        .build()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(40));
    rt.stop();
    let report = rt.cleanup();
    for r in &report.records {
        let expected = if r.job.task == t0 { 0 } else { 1 };
        assert_eq!(r.worker.index(), expected);
    }
    assert!(report.records.len() >= 4);
}

#[test]
fn user_defined_priorities_are_honoured() {
    // Two tasks with equal periods; user priority makes t_b strictly more
    // urgent, so on one worker t_b's job always runs before t_a's at each
    // tick.
    let mut b = TaskSetBuilder::new();
    let t_a = b
        .task_decl(
            TaskSpec::periodic("a", Duration::from_millis(6)).with_priority(Priority::new(20)),
        )
        .unwrap();
    let t_b = b
        .task_decl(
            TaskSpec::periodic("b", Duration::from_millis(6)).with_priority(Priority::new(10)),
        )
        .unwrap();
    let va = b
        .version_decl(t_a, VersionSpec::new("v", Duration::from_micros(20)))
        .unwrap();
    let vb = b
        .version_decl(t_b, VersionSpec::new("v", Duration::from_micros(20)))
        .unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(1)
        .priority(PriorityPolicy::UserDefined)
        .preemption(false)
        .build()
        .unwrap();
    let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
    let (oa, ob) = (Arc::clone(&order), Arc::clone(&order));
    let rt = RuntimeBuilder::new(ts, config)
        .body(t_a, va, move |_| oa.lock().unwrap().push("a"))
        .body(t_b, vb, move |_| ob.lock().unwrap().push("b"))
        .build()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    rt.stop();
    let _ = rt.cleanup();
    let order = order.lock().unwrap();
    assert!(order.len() >= 4);
    // In every released pair, b precedes a.
    for pair in order.chunks(2) {
        if pair.len() == 2 {
            assert_eq!(pair[0], "b", "user priority violated: {order:?}");
            assert_eq!(pair[1], "a");
        }
    }
}

#[test]
fn stop_drains_inflight_jobs() {
    let mut b = TaskSetBuilder::new();
    let t = b
        .task_decl(TaskSpec::periodic("slow", Duration::from_millis(20)))
        .unwrap();
    let v = b
        .version_decl(t, VersionSpec::new("v", Duration::from_millis(5)))
        .unwrap();
    let ts = Arc::new(b.build().unwrap());
    let rt = RuntimeBuilder::new(ts, base_config(1))
        .body(t, v, |_| {
            std::thread::sleep(std::time::Duration::from_millis(5))
        })
        .build()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(22));
    rt.stop();
    let report = rt.cleanup(); // must not hang and must keep the records
    assert!(!report.records.is_empty());
    assert_eq!(report.engine_stats.completed, report.records.len() as u64);
}
