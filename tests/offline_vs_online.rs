//! Consistency between off-line table scheduling and on-line scheduling
//! of the same task sets.

use std::sync::Arc;
use yasmin::prelude::*;
use yasmin::sched::offline::{synthesize, synthesize_strict, OfflineDispatcher, SynthesisOptions};
use yasmin::sim::ExecModel;
use yasmin::taskgen::dag::{build_dag, DagParams};
use yasmin::taskgen::taskset::{build_independent, IndependentSetParams};

#[test]
fn strict_table_sets_also_pass_online_edf() {
    // If the off-line EDF list scheduler fits everything on m workers,
    // on-line global EDF on the same m workers must not miss either
    // (it dominates the non-preemptive table).
    let mut checked = 0;
    for seed in 0..25 {
        let ts = build_independent(&IndependentSetParams {
            n: 6,
            total_utilisation: 0.8,
            cap: 0.4,
            seed,
            ..IndependentSetParams::default()
        })
        .unwrap();
        let Ok(table) = synthesize_strict(&ts, 2, SynthesisOptions::default()) else {
            continue;
        };
        table.validate(&ts).unwrap();
        checked += 1;
        let config = Config::builder()
            .workers(2)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .max_pending_jobs(8192)
            .build()
            .unwrap();
        let horizon = ts.hyperperiod().unwrap() * 2;
        let mut sim = SimConfig::uniform(2, horizon);
        sim.exec = ExecModel::Wcet;
        let result = Simulation::new(Arc::new(ts), config, sim)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(result.total_misses(), 0, "seed {seed}");
    }
    assert!(checked >= 8, "too few feasible tables: {checked}");
}

#[test]
fn tables_validate_on_random_dags() {
    for seed in 0..25 {
        let ts = build_dag(&DagParams {
            layers: 4,
            max_width: 3,
            period: Duration::from_millis(200),
            seed,
            ..DagParams::default()
        })
        .unwrap();
        let table = synthesize(&ts, 2, SynthesisOptions::default()).unwrap();
        table.validate(&ts).expect("structurally valid table");
        // Every node instance appears exactly once per hyperperiod.
        assert_eq!(table.all_entries().count(), ts.len());
    }
}

#[test]
fn dispatcher_instances_count_up_across_cycles() {
    let ts = build_independent(&IndependentSetParams {
        n: 3,
        total_utilisation: 0.5,
        seed: 9,
        ..IndependentSetParams::default()
    })
    .unwrap();
    let table = Arc::new(synthesize_strict(&ts, 1, SynthesisOptions::default()).unwrap());
    let per_cycle = table.entries(WorkerId::new(0)).len();
    let mut d = OfflineDispatcher::new(table);
    let mut starts = Vec::new();
    for _ in 0..3 * per_cycle {
        let slot = d.next_slot(WorkerId::new(0)).unwrap();
        starts.push(slot.start);
    }
    // Monotone non-decreasing starts across hyperperiod wraps.
    for pair in starts.windows(2) {
        assert!(pair[1] >= pair[0], "dispatcher went backwards: {starts:?}");
    }
}

#[test]
fn offline_version_preselection_shrinks_gpu_usage() {
    // A task with GPU+CPU versions: MinWcet picks the GPU version,
    // CpuOnly avoids it; both produce valid tables.
    let mut b = TaskSetBuilder::new();
    let gpu = b.hwaccel_decl("gpu");
    let t = b
        .task_decl(TaskSpec::periodic("t", Duration::from_millis(50)))
        .unwrap();
    let vg = b
        .version_decl(t, VersionSpec::new("g", Duration::from_millis(5)))
        .unwrap();
    b.hwaccel_use(t, vg, gpu).unwrap();
    b.version_decl(t, VersionSpec::new("c", Duration::from_millis(12)))
        .unwrap();
    let ts = b.build().unwrap();

    let min_wcet = synthesize_strict(&ts, 1, SynthesisOptions::default()).unwrap();
    assert_eq!(min_wcet.all_entries().next().unwrap().version, vg);

    let cpu_only = synthesize_strict(
        &ts,
        1,
        SynthesisOptions {
            version_choice: yasmin::sched::offline::OfflineVersionChoice::CpuOnly,
            ..SynthesisOptions::default()
        },
    )
    .unwrap();
    assert_ne!(cpu_only.all_entries().next().unwrap().version, vg);
    min_wcet.validate(&ts).unwrap();
    cpu_only.validate(&ts).unwrap();
}
