//! Property-based tests over the workspace invariants.

use proptest::prelude::*;
use std::sync::Arc;
use yasmin::prelude::*;
use yasmin::sim::ExecModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DRS: the drawn vector sums to the target and respects the cap.
    #[test]
    fn drs_invariants(n in 1usize..40, total_pct in 1u32..100, seed in any::<u64>()) {
        let cap = 1.0;
        let total = f64::from(total_pct) / 100.0 * n as f64 * cap;
        let total = total.max(1e-6);
        let v = yasmin::taskgen::drs(n, total, cap, seed).unwrap();
        prop_assert_eq!(v.len(), n);
        let sum: f64 = v.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6, "sum {} != {}", sum, total);
        for u in v {
            prop_assert!((0.0..=cap + 1e-9).contains(&u));
        }
    }

    /// UUniFast: non-negative and exact-sum.
    #[test]
    fn uunifast_invariants(n in 1usize..50, total_milli in 1u32..3000, seed in any::<u64>()) {
        let total = f64::from(total_milli) / 1000.0;
        let v = yasmin::taskgen::uunifast(n, total, seed);
        let sum: f64 = v.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9);
        prop_assert!(v.iter().all(|&u| u >= 0.0));
    }

    /// gcd/lcm: divisibility and bounds.
    #[test]
    fn gcd_lcm_laws(a in 1u64..1_000_000, b in 1u64..1_000_000) {
        use yasmin::core::time::{gcd, lcm};
        let da = Duration::from_nanos(a);
        let db = Duration::from_nanos(b);
        let g = gcd(da, db);
        let l = lcm(da, db);
        prop_assert_eq!(a % g.as_nanos(), 0);
        prop_assert_eq!(b % g.as_nanos(), 0);
        prop_assert_eq!(l.as_nanos() % a, 0);
        prop_assert_eq!(l.as_nanos() % b, 0);
        // gcd * lcm == a * b for u64-safe ranges.
        prop_assert_eq!(
            u128::from(g.as_nanos()) * u128::from(l.as_nanos()),
            u128::from(a) * u128::from(b)
        );
    }

    /// Ready queue pops exactly the sorted order of what was pushed.
    #[test]
    fn ready_queue_is_a_priority_queue(prios in prop::collection::vec(0u64..1000, 1..64)) {
        use yasmin::sched::{Job, ReadyQueue};
        let mut q = ReadyQueue::with_capacity(prios.len());
        for (i, p) in prios.iter().enumerate() {
            let job = Job {
                id: JobId::new(i as u64),
                task: TaskId::new(i as u32),
                seq: 0,
                release: Instant::ZERO,
                graph_release: Instant::ZERO,
                abs_deadline: Instant::MAX,
                priority: Priority::new(*p),
                preempted: false,
            };
            q.push(job).unwrap();
        }
        let mut popped = Vec::new();
        while let Some(j) = q.pop() {
            popped.push(j.priority.raw());
        }
        let mut expected = prios.clone();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// SPSC ring: output sequence equals input sequence, whatever the
    /// interleaving of pushes and pops.
    #[test]
    fn spsc_fifo_order(ops in prop::collection::vec(any::<bool>(), 1..200), cap in 1usize..16) {
        let (mut tx, mut rx) = yasmin::sync::spsc::channel::<u32>(cap);
        let mut next_in = 0u32;
        let mut next_out = 0u32;
        for push in ops {
            if push {
                if tx.push(next_in).is_ok() {
                    next_in += 1;
                }
            } else if let Some(v) = rx.pop() {
                prop_assert_eq!(v, next_out);
                next_out += 1;
            }
        }
        while let Some(v) = rx.pop() {
            prop_assert_eq!(v, next_out);
            next_out += 1;
        }
        prop_assert_eq!(next_out, next_in);
    }

    /// EDF optimality on one core: any implicit-deadline periodic set
    /// with U <= 1 runs without misses in the zero-overhead simulator.
    #[test]
    fn edf_uniprocessor_optimality(
        n in 1usize..6,
        util_pct in 10u32..100,
        seed in 0u64..1000,
    ) {
        let params = yasmin::taskgen::taskset::IndependentSetParams {
            n,
            total_utilisation: f64::from(util_pct) / 100.0,
            cap: 1.0,
            seed,
            ..Default::default()
        };
        let ts = yasmin::taskgen::taskset::build_independent(&params).unwrap();
        let horizon = ts.hyperperiod().unwrap().min(Duration::from_secs(4)) * 2;
        let config = Config::builder()
            .workers(1)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .max_pending_jobs(16384)
            .build()
            .unwrap();
        let mut sim = SimConfig::uniform(1, horizon);
        sim.exec = ExecModel::Wcet;
        let result = Simulation::new(Arc::new(ts), config, sim).unwrap().run().unwrap();
        prop_assert_eq!(result.total_misses(), 0, "EDF with U <= 1 missed");
    }

    /// Off-line tables synthesised from random independent sets always
    /// validate structurally.
    #[test]
    fn offline_tables_always_validate(n in 1usize..8, util_pct in 10u32..90, seed in 0u64..500) {
        use yasmin::sched::offline::{synthesize, SynthesisOptions};
        let params = yasmin::taskgen::taskset::IndependentSetParams {
            n,
            total_utilisation: f64::from(util_pct) / 100.0,
            seed,
            ..Default::default()
        };
        let ts = yasmin::taskgen::taskset::build_independent(&params).unwrap();
        let table = synthesize(&ts, 2, SynthesisOptions::default()).unwrap();
        prop_assert!(table.validate(&ts).is_ok());
    }

    /// Battery levels clamp and order consistently.
    #[test]
    fn battery_monotone(a in 0u16..2000, b in 0u16..2000) {
        let la = BatteryLevel::from_permille(a);
        let lb = BatteryLevel::from_permille(b);
        prop_assert_eq!(la <= lb, a.min(1000) <= b.min(1000));
        prop_assert!(la.as_fraction() <= 1.0);
    }
}
