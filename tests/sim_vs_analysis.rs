//! Cross-validation: whenever an analysis declares a task set
//! schedulable, the simulator — running the real engine with zero
//! overheads and WCET-exact execution — must observe zero deadline
//! misses.

use std::sync::Arc;
use yasmin::analysis::{self, WcetAssumption};
use yasmin::prelude::*;
use yasmin::sim::ExecModel;
use yasmin::taskgen::taskset::{build_independent, build_partitioned, IndependentSetParams};

fn simulate(
    ts: Arc<TaskSet>,
    workers: usize,
    mapping: MappingScheme,
    priority: PriorityPolicy,
    horizon: Duration,
) -> usize {
    let config = Config::builder()
        .workers(workers)
        .mapping(mapping)
        .priority(priority)
        .max_pending_jobs(16384)
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(workers, horizon);
    sim.exec = ExecModel::Wcet;
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    result.total_misses()
}

fn horizon_for(ts: &TaskSet) -> Duration {
    // Two hyperperiods bound the steady state for synchronous releases.
    ts.hyperperiod().unwrap() * 2
}

#[test]
fn rta_schedulable_implies_no_misses_under_dm() {
    let mut checked = 0;
    for seed in 0..20 {
        let ts = build_independent(&IndependentSetParams {
            n: 6,
            total_utilisation: 0.75,
            seed,
            ..IndependentSetParams::default()
        })
        .unwrap();
        if !analysis::schedulable(
            &ts,
            PriorityPolicy::DeadlineMonotonic,
            WcetAssumption::MaxVersion,
        ) {
            continue;
        }
        checked += 1;
        let horizon = horizon_for(&ts);
        let misses = simulate(
            Arc::new(ts),
            1,
            MappingScheme::Global,
            PriorityPolicy::DeadlineMonotonic,
            horizon,
        );
        assert_eq!(misses, 0, "RTA said schedulable (seed {seed})");
    }
    assert!(checked >= 5, "too few schedulable sets sampled: {checked}");
}

#[test]
fn edf_demand_test_implies_no_misses() {
    let mut checked = 0;
    for seed in 100..120 {
        let ts = build_independent(&IndependentSetParams {
            n: 8,
            total_utilisation: 0.95,
            seed,
            ..IndependentSetParams::default()
        })
        .unwrap();
        if !analysis::edf_schedulable(&ts, WcetAssumption::MaxVersion) {
            continue;
        }
        checked += 1;
        let horizon = horizon_for(&ts);
        let misses = simulate(
            Arc::new(ts),
            1,
            MappingScheme::Global,
            PriorityPolicy::EarliestDeadlineFirst,
            horizon,
        );
        assert_eq!(misses, 0, "EDF demand test said schedulable (seed {seed})");
    }
    assert!(checked >= 10, "too few schedulable sets sampled: {checked}");
}

#[test]
fn gfb_test_implies_no_misses_under_global_edf() {
    let mut checked = 0;
    for seed in 200..230 {
        let ts = build_independent(&IndependentSetParams {
            n: 10,
            total_utilisation: 1.2,
            cap: 0.4,
            seed,
            ..IndependentSetParams::default()
        })
        .unwrap();
        if !analysis::gfb_global_edf_test(&ts, 2, WcetAssumption::MaxVersion) {
            continue;
        }
        checked += 1;
        let horizon = horizon_for(&ts);
        let misses = simulate(
            Arc::new(ts),
            2,
            MappingScheme::Global,
            PriorityPolicy::EarliestDeadlineFirst,
            horizon,
        );
        assert_eq!(misses, 0, "GFB said schedulable (seed {seed})");
    }
    assert!(checked >= 10, "too few schedulable sets sampled: {checked}");
}

#[test]
fn partitioned_rta_implies_no_misses() {
    let mut checked = 0;
    for seed in 300..330 {
        let ts = build_partitioned(
            &IndependentSetParams {
                n: 8,
                total_utilisation: 1.2,
                cap: 0.6,
                seed,
                ..IndependentSetParams::default()
            },
            2,
        )
        .unwrap();
        let rts = analysis::rta::partitioned_response_times(
            &ts,
            2,
            PriorityPolicy::DeadlineMonotonic,
            WcetAssumption::MaxVersion,
        );
        if !rts.iter().all(|(_, r)| r.schedulable()) {
            continue;
        }
        checked += 1;
        let horizon = horizon_for(&ts);
        let misses = simulate(
            Arc::new(ts),
            2,
            MappingScheme::Partitioned,
            PriorityPolicy::DeadlineMonotonic,
            horizon,
        );
        assert_eq!(misses, 0, "partitioned RTA said schedulable (seed {seed})");
    }
    assert!(checked >= 5, "too few schedulable sets sampled: {checked}");
}

#[test]
fn overload_produces_misses() {
    // Sanity for the whole chain: a set with U > m must miss under any
    // policy.
    let ts = build_independent(&IndependentSetParams {
        n: 6,
        total_utilisation: 1.8,
        seed: 1,
        ..IndependentSetParams::default()
    })
    .unwrap();
    let horizon = horizon_for(&ts);
    let misses = simulate(
        Arc::new(ts),
        1,
        MappingScheme::Global,
        PriorityPolicy::EarliestDeadlineFirst,
        horizon,
    );
    assert!(misses > 0);
}
