//! Failure injection and degraded-mode behaviour: channel overflow,
//! accelerator starvation (PIP), sporadic violations, queue saturation,
//! configuration misuse.

use std::sync::Arc;
use yasmin::prelude::*;
use yasmin::sched::{ActionSink, OnlineEngine};
use yasmin::sim::ExecModel;

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

#[test]
fn channel_overflow_is_counted_not_fatal() {
    // A join with one fast input (10ms) and one slow input (50ms): the
    // fast edge's tokens pile up past its declared capacity of 1 while
    // the join waits for the slow side.
    let mut b = TaskSetBuilder::new();
    let fast = b.task_decl(TaskSpec::periodic("fast", ms(10))).unwrap();
    let slow = b.task_decl(TaskSpec::periodic("slow", ms(50))).unwrap();
    let join = b.task_decl(TaskSpec::graph_node("join")).unwrap();
    b.version_decl(fast, VersionSpec::new("f", ms(1))).unwrap();
    b.version_decl(slow, VersionSpec::new("s", ms(1))).unwrap();
    b.version_decl(join, VersionSpec::new("j", ms(1))).unwrap();
    let cf = b.channel_decl("tight", 1, 4);
    let cs = b.channel_decl("wide", 8, 4);
    b.channel_connect(fast, join, cf).unwrap();
    b.channel_connect(slow, join, cs).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(4096)
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(2, ms(200));
    sim.exec = ExecModel::Wcet;
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    assert!(
        result.engine_stats.channel_overflows > 0,
        "overflow must be detected: {:?}",
        result.engine_stats
    );
    // The schedule keeps going regardless.
    assert!(result.records.len() > 5);
}

#[test]
fn accel_starvation_triggers_pip_and_eventual_service() {
    // One GPU, one long-running low-urgency hog (GPU-only) and an urgent
    // GPU-only task: the urgent task must boost the hog (PIP) and run
    // right after it.
    let mut b = TaskSetBuilder::new();
    let gpu = b.hwaccel_decl("gpu");
    let hog = b.task_decl(TaskSpec::periodic("hog", ms(100))).unwrap();
    let vh = b.version_decl(hog, VersionSpec::new("h", ms(40))).unwrap();
    b.hwaccel_use(hog, vh, gpu).unwrap();
    let urgent = b
        .task_decl(
            TaskSpec::periodic("urgent", ms(100))
                .with_release_offset(ms(5))
                .with_constrained_deadline(ms(60)),
        )
        .unwrap();
    let vu = b
        .version_decl(urgent, VersionSpec::new("u", ms(5)))
        .unwrap();
    b.hwaccel_use(urgent, vu, gpu).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        // The gcd of the two 100ms periods would give a 100ms scheduler
        // tick, releasing the offset task only after the hog finished; a
        // finer tick exposes the contention window (§3.3 allows any tick
        // dividing the periods).
        .tick(ms(5))
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(2, ms(300));
    sim.exec = ExecModel::Wcet;
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    assert!(result.engine_stats.pip_boosts > 0, "PIP must fire");
    assert!(result.engine_stats.blocked_skips > 0);
    // The urgent task is eventually served every period and meets its
    // 60ms deadline (hog finishes at 40ms, urgent needs 5ms).
    assert_eq!(result.miss_count(TaskId::new(1)), 0);
    assert_eq!(result.records_of(TaskId::new(1)).count(), 3);
}

#[test]
fn ready_queue_saturation_is_survivable() {
    // A deliberately tiny queue bound with an overloaded set: the engine
    // records the loss instead of panicking.
    let mut b = TaskSetBuilder::new();
    for i in 0..8 {
        let t = b
            .task_decl(TaskSpec::periodic(format!("t{i}"), ms(10)))
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", ms(30))).unwrap();
    }
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(1)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(4)
        .build()
        .unwrap();
    let sim = SimConfig::uniform(1, ms(500));
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    // Releases beyond the bound are surfaced via the overflow counter.
    assert!(result.engine_stats.channel_overflows > 0);
}

#[test]
fn sporadic_violation_counting_via_engine() {
    let mut b = TaskSetBuilder::new();
    let s = b.task_decl(TaskSpec::sporadic("s", ms(10))).unwrap();
    b.version_decl(s, VersionSpec::new("v", ms(1))).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder().workers(1).tick(ms(10)).build().unwrap();
    let mut engine = OnlineEngine::new(ts, config).unwrap();
    let mut sink = ActionSink::new();
    engine.start_into(Instant::ZERO, &mut sink).unwrap();
    for at in [0, 3_000_000, 20_000_000] {
        sink.clear();
        engine
            .activate_into(s, Instant::from_nanos(at), &mut sink)
            .unwrap();
    }
    assert_eq!(engine.stats().sporadic_violations, 1);
}

#[test]
fn gpu_only_task_with_no_cpu_version_waits_but_completes() {
    // Three GPU-only tasks, one GPU, one worker pool of 3: they must
    // serialise on the accelerator and all finish.
    let mut b = TaskSetBuilder::new();
    let gpu = b.hwaccel_decl("gpu");
    let mut tasks = Vec::new();
    for i in 0..3 {
        let t = b
            .task_decl(TaskSpec::periodic(format!("g{i}"), ms(100)))
            .unwrap();
        let v = b.version_decl(t, VersionSpec::new("v", ms(20))).unwrap();
        b.hwaccel_use(t, v, gpu).unwrap();
        tasks.push(t);
    }
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(3)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(3, ms(100));
    sim.exec = ExecModel::Wcet;
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    assert_eq!(result.records.len(), 3);
    // Accelerator exclusivity: executions must not overlap.
    let mut spans: Vec<(Instant, Instant)> = result
        .records
        .iter()
        .map(|r| (r.first_start, r.completion))
        .collect();
    spans.sort();
    for pair in spans.windows(2) {
        assert!(pair[1].0 >= pair[0].1, "GPU overlap: {spans:?}");
    }
}

#[test]
fn config_misuse_is_rejected_loudly() {
    // Partitioned without assignments.
    let mut b = TaskSetBuilder::new();
    let t = b.task_decl(TaskSpec::periodic("t", ms(10))).unwrap();
    b.version_decl(t, VersionSpec::new("v", ms(1))).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .build()
        .unwrap();
    assert!(OnlineEngine::new(Arc::clone(&ts), config).is_err());

    // Simulator with more workers than cores.
    let config = Config::builder().workers(4).build().unwrap();
    assert!(Simulation::new(ts, config, SimConfig::uniform(2, ms(10))).is_err());
}
