//! Failure injection and degraded-mode behaviour: channel overflow,
//! accelerator starvation (PIP), sporadic violations, queue saturation,
//! configuration misuse — plus the PR 9 fault-tolerance machinery:
//! WCET-overrun enforcement, deterministic fault schedules replayed
//! through all three sim drivers, worker-panic containment in both
//! thread runtimes, overload shedding and the deadline-miss trip wire,
//! and the loss-free sharded drain.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use yasmin::prelude::*;
use yasmin::sched::{Action, ActionSink, OnlineEngine};
use yasmin::sim::{run_partitioned_parallel, ExecModel, FaultEvent, ParSimOptions};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

#[test]
fn channel_overflow_is_counted_not_fatal() {
    // A join with one fast input (10ms) and one slow input (50ms): the
    // fast edge's tokens pile up past its declared capacity of 1 while
    // the join waits for the slow side.
    let mut b = TaskSetBuilder::new();
    let fast = b.task_decl(TaskSpec::periodic("fast", ms(10))).unwrap();
    let slow = b.task_decl(TaskSpec::periodic("slow", ms(50))).unwrap();
    let join = b.task_decl(TaskSpec::graph_node("join")).unwrap();
    b.version_decl(fast, VersionSpec::new("f", ms(1))).unwrap();
    b.version_decl(slow, VersionSpec::new("s", ms(1))).unwrap();
    b.version_decl(join, VersionSpec::new("j", ms(1))).unwrap();
    let cf = b.channel_decl("tight", 1, 4);
    let cs = b.channel_decl("wide", 8, 4);
    b.channel_connect(fast, join, cf).unwrap();
    b.channel_connect(slow, join, cs).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(4096)
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(2, ms(200));
    sim.exec = ExecModel::Wcet;
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    assert!(
        result.engine_stats.channel_overflows > 0,
        "overflow must be detected: {:?}",
        result.engine_stats
    );
    // The schedule keeps going regardless.
    assert!(result.records.len() > 5);
}

#[test]
fn accel_starvation_triggers_pip_and_eventual_service() {
    // One GPU, one long-running low-urgency hog (GPU-only) and an urgent
    // GPU-only task: the urgent task must boost the hog (PIP) and run
    // right after it.
    let mut b = TaskSetBuilder::new();
    let gpu = b.hwaccel_decl("gpu");
    let hog = b.task_decl(TaskSpec::periodic("hog", ms(100))).unwrap();
    let vh = b.version_decl(hog, VersionSpec::new("h", ms(40))).unwrap();
    b.hwaccel_use(hog, vh, gpu).unwrap();
    let urgent = b
        .task_decl(
            TaskSpec::periodic("urgent", ms(100))
                .with_release_offset(ms(5))
                .with_constrained_deadline(ms(60)),
        )
        .unwrap();
    let vu = b
        .version_decl(urgent, VersionSpec::new("u", ms(5)))
        .unwrap();
    b.hwaccel_use(urgent, vu, gpu).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        // The gcd of the two 100ms periods would give a 100ms scheduler
        // tick, releasing the offset task only after the hog finished; a
        // finer tick exposes the contention window (§3.3 allows any tick
        // dividing the periods).
        .tick(ms(5))
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(2, ms(300));
    sim.exec = ExecModel::Wcet;
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    assert!(result.engine_stats.pip_boosts > 0, "PIP must fire");
    assert!(result.engine_stats.blocked_skips > 0);
    // The urgent task is eventually served every period and meets its
    // 60ms deadline (hog finishes at 40ms, urgent needs 5ms).
    assert_eq!(result.miss_count(TaskId::new(1)), 0);
    assert_eq!(result.records_of(TaskId::new(1)).count(), 3);
}

#[test]
fn ready_queue_saturation_is_survivable() {
    // A deliberately tiny queue bound with an overloaded set: the engine
    // records the loss instead of panicking.
    let mut b = TaskSetBuilder::new();
    for i in 0..8 {
        let t = b
            .task_decl(TaskSpec::periodic(format!("t{i}"), ms(10)))
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", ms(30))).unwrap();
    }
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(1)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(4)
        .build()
        .unwrap();
    let sim = SimConfig::uniform(1, ms(500));
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    // Releases beyond the bound are surfaced via the overflow counter.
    assert!(result.engine_stats.channel_overflows > 0);
}

#[test]
fn sporadic_violation_counting_via_engine() {
    let mut b = TaskSetBuilder::new();
    let s = b.task_decl(TaskSpec::sporadic("s", ms(10))).unwrap();
    b.version_decl(s, VersionSpec::new("v", ms(1))).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder().workers(1).tick(ms(10)).build().unwrap();
    let mut engine = OnlineEngine::new(ts, config).unwrap();
    let mut sink = ActionSink::new();
    engine.start_into(Instant::ZERO, &mut sink).unwrap();
    for at in [0, 3_000_000, 20_000_000] {
        sink.clear();
        engine
            .activate_into(s, Instant::from_nanos(at), &mut sink)
            .unwrap();
    }
    assert_eq!(engine.stats().sporadic_violations, 1);
}

#[test]
fn gpu_only_task_with_no_cpu_version_waits_but_completes() {
    // Three GPU-only tasks, one GPU, one worker pool of 3: they must
    // serialise on the accelerator and all finish.
    let mut b = TaskSetBuilder::new();
    let gpu = b.hwaccel_decl("gpu");
    let mut tasks = Vec::new();
    for i in 0..3 {
        let t = b
            .task_decl(TaskSpec::periodic(format!("g{i}"), ms(100)))
            .unwrap();
        let v = b.version_decl(t, VersionSpec::new("v", ms(20))).unwrap();
        b.hwaccel_use(t, v, gpu).unwrap();
        tasks.push(t);
    }
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(3)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(3, ms(100));
    sim.exec = ExecModel::Wcet;
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    assert_eq!(result.records.len(), 3);
    // Accelerator exclusivity: executions must not overlap.
    let mut spans: Vec<(Instant, Instant)> = result
        .records
        .iter()
        .map(|r| (r.first_start, r.completion))
        .collect();
    spans.sort();
    for pair in spans.windows(2) {
        assert!(pair[1].0 >= pair[0].1, "GPU overlap: {spans:?}");
    }
}

#[test]
fn overrun_enforcement_applies_policy_on_tick() {
    // enforce_wcet(true): a job strictly past release + WCET is flagged
    // on the next tick; DemoteToBackground surfaces as a Boost action
    // to background priority.
    let mut b = TaskSetBuilder::new();
    let t = b
        .task_decl(
            TaskSpec::periodic("t", ms(10)).with_overrun_policy(OverrunPolicy::DemoteToBackground),
        )
        .unwrap();
    b.version_decl(t, VersionSpec::new("v", ms(1))).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(1)
        .tick(ms(1))
        .enforce_wcet(true)
        .build()
        .unwrap();
    let mut engine = OnlineEngine::new(ts, config).unwrap();
    let mut sink = ActionSink::new();
    engine.start_into(Instant::ZERO, &mut sink).unwrap();
    assert!(matches!(sink.as_slice(), [Action::Dispatch { .. }]));

    // At 1ms the job is exactly at its enforcement deadline (strict
    // comparison: no overrun); at 2ms it is past it.
    sink.clear();
    engine.on_tick_into(Instant::ZERO + ms(1), &mut sink);
    assert_eq!(engine.stats().overruns, 0);
    sink.clear();
    engine.on_tick_into(Instant::ZERO + ms(2), &mut sink);
    assert_eq!(engine.stats().overruns, 1);
    assert!(
        sink.as_slice().iter().any(|a| matches!(
            a,
            Action::Boost { priority, .. } if *priority == Priority::LOWEST
        )),
        "demotion must surface as a background boost: {:?}",
        sink.as_slice()
    );
    // The policy fires exactly once per job.
    sink.clear();
    engine.on_tick_into(Instant::ZERO + ms(3), &mut sink);
    assert_eq!(engine.stats().overruns, 1);
}

#[test]
fn forced_overrun_kill_gates_successor_tokens() {
    // src (Kill policy) -> dst: the overrun fault at 1ms flags the
    // first src job; its completion is still recorded (the middleware
    // never destroys a thread mid-body) but its successor token is
    // dropped, so dst runs once fewer than src.
    let mut b = TaskSetBuilder::new();
    let src = b
        .task_decl(TaskSpec::periodic("src", ms(10)).with_overrun_policy(OverrunPolicy::Kill))
        .unwrap();
    let dst = b.task_decl(TaskSpec::graph_node("dst")).unwrap();
    b.version_decl(src, VersionSpec::new("s", ms(2))).unwrap();
    b.version_decl(dst, VersionSpec::new("d", ms(1))).unwrap();
    let c = b.channel_decl("c", 4, 8);
    b.channel_connect(src, dst, c).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(1)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(1, ms(50));
    sim.exec = ExecModel::Wcet;
    sim.fault_schedule.push((
        Duration::from_micros(1_100),
        FaultEvent::Overrun { task: src },
    ));
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    assert_eq!(result.engine_stats.overruns, 1);
    assert_eq!(result.records_of(src).count(), 5, "releases at 0..50ms");
    assert_eq!(
        result.records_of(dst).count(),
        4,
        "the killed activation must not fire dst"
    );
}

#[test]
fn crash_fault_retires_through_policy() {
    // Two chains on two workers: a (Kill) -> x and b (LogOnly) -> y.
    // Both roots crash mid-body at 1.1ms. A crash under Kill drops the
    // successor token; under LogOnly downstream still fires (the
    // application tolerates a stale frame).
    let mut b = TaskSetBuilder::new();
    let ta = b
        .task_decl(TaskSpec::periodic("a", ms(10)).with_overrun_policy(OverrunPolicy::Kill))
        .unwrap();
    let tb = b.task_decl(TaskSpec::periodic("b", ms(10))).unwrap();
    let x = b.task_decl(TaskSpec::graph_node("x")).unwrap();
    let y = b.task_decl(TaskSpec::graph_node("y")).unwrap();
    for (t, w) in [(ta, ms(2)), (tb, ms(2)), (x, ms(1)), (y, ms(1))] {
        b.version_decl(t, VersionSpec::new("v", w)).unwrap();
    }
    let ca = b.channel_decl("ca", 4, 8);
    let cb = b.channel_decl("cb", 4, 8);
    b.channel_connect(ta, x, ca).unwrap();
    b.channel_connect(tb, y, cb).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(2, ms(50));
    sim.exec = ExecModel::Wcet;
    let crash_at = Duration::from_micros(1_100);
    sim.fault_schedule
        .push((crash_at, FaultEvent::Crash { task: ta }));
    sim.fault_schedule
        .push((crash_at, FaultEvent::Crash { task: tb }));
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    assert_eq!(result.engine_stats.failed, 2);
    // Crashed jobs never complete: 4 records each instead of 5.
    assert_eq!(result.records_of(ta).count(), 4);
    assert_eq!(result.records_of(tb).count(), 4);
    assert_eq!(result.records_of(x).count(), 4, "Kill drops the token");
    assert_eq!(result.records_of(y).count(), 5, "LogOnly still fires");
}

#[test]
fn overload_shedding_bounds_the_backlog() {
    // The fast/slow join from `channel_overflow_is_counted_not_fatal`,
    // but the tight edge now declares a shedding policy: the backlog is
    // dropped instead of growing, and the overflow counter stays clean.
    let run = |policy: BackpressurePolicy| {
        let mut b = TaskSetBuilder::new();
        let fast = b.task_decl(TaskSpec::periodic("fast", ms(10))).unwrap();
        let slow = b.task_decl(TaskSpec::periodic("slow", ms(50))).unwrap();
        let join = b.task_decl(TaskSpec::graph_node("join")).unwrap();
        b.version_decl(fast, VersionSpec::new("f", ms(1))).unwrap();
        b.version_decl(slow, VersionSpec::new("s", ms(1))).unwrap();
        b.version_decl(join, VersionSpec::new("j", ms(1))).unwrap();
        let cf = b.channel_decl_shedding("tight", 1, 4, policy);
        let cs = b.channel_decl("wide", 8, 4);
        b.channel_connect(fast, join, cf).unwrap();
        b.channel_connect(slow, join, cs).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let config = Config::builder()
            .workers(2)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .max_pending_jobs(4096)
            .build()
            .unwrap();
        let mut sim = SimConfig::uniform(2, ms(200));
        sim.exec = ExecModel::Wcet;
        Simulation::new(ts, config, sim).unwrap().run().unwrap()
    };
    for policy in [
        BackpressurePolicy::DropOldest,
        BackpressurePolicy::DeadlineAwareDrop,
    ] {
        let result = run(policy);
        assert!(
            result.engine_stats.shed_drops > 0,
            "{policy:?} must shed: {:?}",
            result.engine_stats
        );
        assert_eq!(
            result.engine_stats.channel_overflows, 0,
            "{policy:?} sheds instead of overflowing"
        );
        assert!(result.records.len() > 5);
    }
}

#[test]
fn miss_storm_trips_and_window_recovers() {
    // One worker, two tasks that together need 16ms per 10ms period:
    // every completion misses. With a 50ms window and a budget of one
    // miss, the trip wire must trip, recover at the window roll, and
    // trip again — at least twice over 200ms.
    let mut b = TaskSetBuilder::new();
    for i in 0..2 {
        let t = b
            .task_decl(TaskSpec::periodic(format!("t{i}"), ms(10)))
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", ms(8))).unwrap();
    }
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(1)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(4096)
        .miss_trip(ms(50), 1)
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(1, ms(200));
    sim.exec = ExecModel::Wcet;
    let result = Simulation::new(ts, config, sim).unwrap().run().unwrap();
    assert!(
        result.engine_stats.miss_trips >= 2,
        "trip wire must trip, recover, and re-trip: {:?}",
        result.engine_stats
    );
}

#[test]
fn fault_schedule_parity_single_owner_vs_sharded() {
    // The same fault schedule (overrun + crash + burst) replayed through
    // the single-owner simulator and the free-running sharded driver
    // must produce bit-identical traces (modulo shard-stamped job ids)
    // and identical fault counters.
    let w0 = WorkerId::new(0);
    let w1 = WorkerId::new(1);
    let mut b = TaskSetBuilder::new();
    let t0 = b
        .task_decl(
            TaskSpec::periodic("t0", ms(10))
                .with_overrun_policy(OverrunPolicy::Kill)
                .on_worker(w0),
        )
        .unwrap();
    let d0 = b
        .task_decl(TaskSpec::graph_node("d0").on_worker(w0))
        .unwrap();
    let t1 = b
        .task_decl(TaskSpec::periodic("t1", ms(10)).on_worker(w1))
        .unwrap();
    let s1 = b
        .task_decl(
            TaskSpec::sporadic("s1", ms(20))
                .with_release_offset(Duration::from_micros(3_700))
                .on_worker(w1),
        )
        .unwrap();
    b.version_decl(t0, VersionSpec::new("v", Duration::from_micros(3_137)))
        .unwrap();
    b.version_decl(d0, VersionSpec::new("v", Duration::from_micros(1_009)))
        .unwrap();
    b.version_decl(t1, VersionSpec::new("v", Duration::from_micros(2_411)))
        .unwrap();
    b.version_decl(s1, VersionSpec::new("v", Duration::from_micros(907)))
        .unwrap();
    let c = b.channel_decl("c", 4, 8);
    b.channel_connect(t0, d0, c).unwrap();
    let ts = Arc::new(b.build().unwrap());

    let config = |sharded: bool| {
        Config::builder()
            .workers(2)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(sharded)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap()
    };
    let mut sim = SimConfig::uniform(2, ms(100));
    sim.exec = ExecModel::Wcet;
    sim.fault_schedule = vec![
        (
            Duration::from_micros(1_501),
            FaultEvent::Overrun { task: t0 },
        ),
        (Duration::from_micros(1_501), FaultEvent::Crash { task: t1 }),
        (
            Duration::from_micros(41_303),
            FaultEvent::Burst { task: s1, count: 3 },
        ),
    ];

    let single = Simulation::new(Arc::clone(&ts), config(false), sim.clone())
        .unwrap()
        .run()
        .unwrap();
    let par = run_partitioned_parallel(
        Arc::clone(&ts),
        config(true),
        sim,
        ParSimOptions {
            producers: 2,
            lane_capacity: 16,
            ..ParSimOptions::default()
        },
    )
    .unwrap();

    assert!(single.engine_stats.overruns >= 1, "the overrun landed");
    assert_eq!(single.engine_stats.failed, 1, "the crash landed");
    assert_eq!(single.engine_stats.overruns, par.engine_stats.overruns);
    assert_eq!(single.engine_stats.failed, par.engine_stats.failed);
    assert_eq!(single.engine_stats.released, par.engine_stats.released);
    assert_eq!(single.engine_stats.completed, par.engine_stats.completed);
    assert_eq!(single.records.len(), par.records.len(), "trace lengths");
    let key = |r: &yasmin::sim::JobRecord| (r.task, r.seq);
    let mut s = single.records.to_vec();
    let mut p = par.records.to_vec();
    s.sort_by_key(key);
    p.sort_by_key(key);
    for (a, b) in s.iter().zip(&p) {
        assert_eq!(key(a), key(b), "record identity");
        assert_eq!(a.release, b.release, "{a:?} vs {b:?}");
        assert_eq!(a.first_start, b.first_start, "{a:?} vs {b:?}");
        assert_eq!(a.completion, b.completion, "{a:?} vs {b:?}");
        assert_eq!(a.version, b.version);
        assert_eq!(a.worker, b.worker);
    }
}

#[test]
fn fault_schedule_through_protocol_loop() {
    // Cross-shard edge: the fault schedule runs through the protocol
    // loop. The overrun kills the first src activation's token; the
    // crash at 11.3ms swallows the second instance entirely; the rest
    // route their tokens across shards.
    let w0 = WorkerId::new(0);
    let w1 = WorkerId::new(1);
    let mut b = TaskSetBuilder::new();
    let src = b
        .task_decl(
            TaskSpec::periodic("src", ms(10))
                .with_overrun_policy(OverrunPolicy::Kill)
                .on_worker(w0),
        )
        .unwrap();
    let dst = b
        .task_decl(TaskSpec::graph_node("dst").on_worker(w1))
        .unwrap();
    b.version_decl(src, VersionSpec::new("s", ms(2))).unwrap();
    b.version_decl(dst, VersionSpec::new("d", ms(1))).unwrap();
    let c = b.channel_decl("c", 4, 8);
    b.channel_connect(src, dst, c).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .preemption(false)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .unwrap();
    let mut sim = SimConfig::uniform(2, ms(50));
    sim.exec = ExecModel::Wcet;
    sim.fault_schedule = vec![
        (
            Duration::from_micros(1_100),
            FaultEvent::Overrun { task: src },
        ),
        (
            Duration::from_micros(11_300),
            FaultEvent::Crash { task: src },
        ),
    ];
    let result = run_partitioned_parallel(
        ts,
        config,
        sim,
        ParSimOptions {
            producers: 1,
            lane_capacity: 8,
            ..ParSimOptions::default()
        },
    )
    .unwrap();
    assert_eq!(result.engine_stats.overruns, 1);
    assert_eq!(result.engine_stats.failed, 1);
    assert_eq!(
        result.records_of(src).count(),
        4,
        "the crashed instance is gone"
    );
    assert_eq!(
        result.records_of(dst).count(),
        3,
        "killed + crashed activations must not fire dst"
    );
    assert_eq!(result.engine_stats.cross_activations, 3);
}

#[test]
fn worker_panic_is_contained_in_runtime() {
    // A body that panics every time must not take the runtime down:
    // the panic is caught on the worker, the job retires as Failed, and
    // the healthy task keeps completing.
    let mut b = TaskSetBuilder::new();
    let bad = b.task_decl(TaskSpec::periodic("bad", ms(5))).unwrap();
    let good = b.task_decl(TaskSpec::periodic("good", ms(5))).unwrap();
    let vb = b
        .version_decl(bad, VersionSpec::new("v", Duration::from_micros(50)))
        .unwrap();
    let vg = b
        .version_decl(good, VersionSpec::new("v", Duration::from_micros(50)))
        .unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .build()
        .unwrap();
    let rt = RuntimeBuilder::new(ts, config)
        .body(bad, vb, |_| panic!("injected body fault"))
        .body(good, vg, |_| {})
        .build()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(40));
    rt.stop();
    let report = rt.cleanup();
    assert!(report.engine_stats.failed >= 1, "{:?}", report.engine_stats);
    assert!(report
        .records
        .iter()
        .any(|r| r.job.task == bad && r.outcome == JobOutcome::Failed));
    assert!(
        report
            .records
            .iter()
            .filter(|r| r.job.task == good && r.outcome == JobOutcome::Completed)
            .count()
            >= 2,
        "healthy task must keep running"
    );
}

#[test]
fn worker_panic_is_contained_in_sharded_runtime() {
    // Same containment through the sharded runtime (also the TSan smoke
    // for the panic path: catch_unwind on a racing worker thread).
    let mut b = TaskSetBuilder::new();
    let bad = b
        .task_decl(TaskSpec::periodic("bad", ms(5)).on_worker(WorkerId::new(0)))
        .unwrap();
    let good = b
        .task_decl(TaskSpec::periodic("good", ms(5)).on_worker(WorkerId::new(1)))
        .unwrap();
    let vb = b
        .version_decl(bad, VersionSpec::new("v", Duration::from_micros(50)))
        .unwrap();
    let vg = b
        .version_decl(good, VersionSpec::new("v", Duration::from_micros(50)))
        .unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .preemption(false)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .unwrap();
    let rt = ShardedRuntimeBuilder::new(ts, config)
        .body(bad, vb, |_| panic!("injected body fault"))
        .body(good, vg, |_| {})
        .build()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(40));
    rt.stop();
    let report = rt.cleanup();
    assert!(report.engine_stats.failed >= 1, "{:?}", report.engine_stats);
    assert!(report
        .records
        .iter()
        .any(|r| r.job.task == bad && r.outcome == JobOutcome::Failed));
    assert!(report
        .records
        .iter()
        .any(|r| r.job.task == good && r.outcome == JobOutcome::Completed));
}

#[test]
fn sharded_stop_is_loss_free_under_cross_shard_traffic() {
    // Repeatedly tear down a sharded runtime mid-flight while tokens
    // cross shards. The two-phase drain must deliver every in-flight
    // peer message before any shard exits — the debug assertions at
    // shard exit (empty backlog, empty mailbox) turn a lost message
    // into a test failure — and no send may ever hit a closed peer.
    let crossed = Arc::new(AtomicU32::new(0));
    for round in 0..10u64 {
        let mut b = TaskSetBuilder::new();
        let src = b
            .task_decl(TaskSpec::periodic("src", ms(2)).on_worker(WorkerId::new(0)))
            .unwrap();
        let dst = b
            .task_decl(TaskSpec::graph_node("dst").on_worker(WorkerId::new(1)))
            .unwrap();
        let vs = b
            .version_decl(src, VersionSpec::new("v", Duration::from_micros(30)))
            .unwrap();
        let vd = b
            .version_decl(dst, VersionSpec::new("v", Duration::from_micros(30)))
            .unwrap();
        let c = b.channel_decl("c", 8, 8);
        b.channel_connect(src, dst, c).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let config = Config::builder()
            .workers(2)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(true)
            .preemption(false)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap();
        let hits = Arc::clone(&crossed);
        let rt = ShardedRuntimeBuilder::new(ts, config)
            .body(src, vs, |_| {})
            .body(dst, vd, move |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            })
            .build()
            .unwrap();
        // Stagger the teardown point so some rounds stop with tokens
        // mid-route.
        std::thread::sleep(std::time::Duration::from_millis(3 + round % 5));
        rt.stop();
        let _ = rt.cleanup(); // must neither hang nor assert
    }
    assert!(
        crossed.load(Ordering::Relaxed) > 0,
        "traffic must actually have crossed shards"
    );
}

#[test]
fn config_misuse_is_rejected_loudly() {
    // Partitioned without assignments.
    let mut b = TaskSetBuilder::new();
    let t = b.task_decl(TaskSpec::periodic("t", ms(10))).unwrap();
    b.version_decl(t, VersionSpec::new("v", ms(1))).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .build()
        .unwrap();
    assert!(OnlineEngine::new(Arc::clone(&ts), config).is_err());

    // Simulator with more workers than cores.
    let config = Config::builder().workers(4).build().unwrap();
    assert!(Simulation::new(ts, config, SimConfig::uniform(2, ms(10))).is_err());
}
