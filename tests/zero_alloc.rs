//! Proves the dispatch hot path is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up phase (rank caches fill, scratch buffers and the action sink
//! grow to their high-water marks) the test drives 10 000 further
//! steady-state scheduler interactions — `on_tick_into` plus a
//! completion/dispatch cycle per worker — and asserts the allocation
//! counter did not move at all.
//!
//! Runs without the libtest harness (`harness = false` in Cargo.toml)
//! so no other thread can touch the allocator during the measured
//! window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use yasmin_core::config::Config;
use yasmin_core::ids::{JobId, WorkerId};
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::time::Instant;
use yasmin_sched::{Action, ActionSink, OnlineEngine};
use yasmin_taskgen::taskset::{build_independent, IndependentSetParams};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn track(running: &mut [Option<JobId>], actions: &[Action]) {
    for a in actions {
        match *a {
            Action::Dispatch { worker, job, .. } => running[worker.index()] = Some(job.id),
            Action::Preempt { worker, .. } => running[worker.index()] = None,
            Action::Boost { .. } => {}
        }
    }
}

fn main() {
    const WORKERS: usize = 2;
    const WARMUP: u32 = 1_000;
    const STEADY: u32 = 10_000;

    let ts = build_independent(&IndependentSetParams {
        n: 64,
        total_utilisation: 1.5,
        seed: 42,
        ..IndependentSetParams::default()
    })
    .expect("valid taskset");
    let config = Config::builder()
        .workers(WORKERS)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    let mut engine = OnlineEngine::new(Arc::new(ts), config).expect("valid engine");
    let mut sink = ActionSink::with_capacity(256);
    let mut running: Vec<Option<JobId>> = vec![None; WORKERS];

    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    track(&mut running, sink.as_slice());
    let tick = engine.tick_period();
    let mut now = Instant::ZERO;

    let steady_iter = |engine: &mut OnlineEngine,
                       sink: &mut ActionSink,
                       running: &mut [Option<JobId>],
                       now: &mut Instant| {
        let mid = *now + tick.scale(1, 2);
        for w in 0..WORKERS {
            if let Some(job) = running[w].take() {
                sink.clear();
                engine
                    .on_job_completed_into(WorkerId::new(w as u16), job, mid, sink)
                    .expect("completion protocol upheld");
                track(running, sink.as_slice());
            }
        }
        *now += tick;
        sink.clear();
        engine.on_tick_into(*now, sink);
        track(running, sink.as_slice());
    };

    for _ in 0..WARMUP {
        steady_iter(&mut engine, &mut sink, &mut running, &mut now);
    }

    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    for _ in 0..STEADY {
        steady_iter(&mut engine, &mut sink, &mut running, &mut now);
    }
    let delta = ALLOC_CALLS.load(Ordering::SeqCst) - before;

    assert!(
        engine.stats().dispatched > u64::from(WARMUP),
        "loop must actually dispatch (got {})",
        engine.stats().dispatched
    );
    assert_eq!(
        delta, 0,
        "dispatch hot path allocated {delta} times across {STEADY} steady-state iterations"
    );
    println!(
        "zero_alloc: OK — 0 allocations across {STEADY} steady-state iterations \
         ({} dispatches total)",
        engine.stats().dispatched
    );
}
