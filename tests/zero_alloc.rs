//! Proves the dispatch hot path is allocation-free in steady state.
//!
//! A counting global allocator wraps the system allocator; after a
//! warm-up phase (rank caches fill, scratch buffers and the action sink
//! grow to their high-water marks) each scenario drives 10 000 further
//! steady-state scheduler interactions and asserts the allocation
//! counter did not move at all. Thirteen scenarios cover the paths the
//! ROADMAP names:
//!
//! 1. **independent / global** — the EDF tick/complete loop of PR 2;
//! 2. **DAG firing** — fork → (left, right) → join released through the
//!    engine's token machinery on every cycle;
//! 3. **partitioned / sharded** — per-worker [`EngineShard`]s fed
//!    through the lock-free command mailbox, i.e. the full sharded
//!    dispatch path of PR 3 including the mailbox push and drain;
//! 4. **accelerator contention / PIP** — a GPU-only urgent task blocks
//!    on the held accelerator every cycle, boosting the holder (the
//!    Boost action, wish scratch and blocked-job re-queue paths);
//! 5. **burst completion** — every worker's completion retired through
//!    one `on_jobs_completed_into` batch per cycle (PR 4), including
//!    the caller-side reusable batch buffer;
//! 6. **mode switching** — the execution mode flips every cycle, so
//!    each dispatch re-ranks versions through the invalidated rank
//!    cache (PR 5: the cache-refresh path itself must run on the
//!    pre-grown per-task entries and the in-place rank scratch);
//! 7. **steady-state stealing** — every cycle an idle thief shard runs
//!    the full PR 5 migration (O(1) `try_steal` probe, O(log n)
//!    `release_stolen` detach, `adopt_stolen` dispatch round) and
//!    retires the stolen job, while the victim refills;
//! 8. **multi-tenant serving** — a budgeted tenant admitted on-line
//!    (evaluate → splice → commit) before the measured window; the
//!    post-admission steady loop, including the per-dispatch budget
//!    charge against the tenant's reservation server, must not touch
//!    the allocator (admission itself is a control-path event and *may*
//!    allocate — the guarantee is about the state it leaves behind);
//! 9. **message plane** — every cycle sends one normal and one
//!    high-priority message over a ceiling-bearing channel, routes the
//!    resulting `MsgEvent`s through the notify hook into the lock-free
//!    mailbox (the runtimes' wiring), boosts the receiver's pending job
//!    via the PIP machinery, drains, restores and retires — the
//!    send/recv/boost loop of the typed message plane;
//! 10. **cross-shard outbox** — a completion fires a successor on a
//!     foreign shard every cycle: outbox fire, drain, route and
//!     destination release all on pre-grown storage (PR 9);
//! 11. **enforcement on** — `enforce_wcet` + `miss_trip` armed, one
//!     forced overrun with a background demotion per cycle (PR 9);
//! 12. **battery Energy refresh** — the battery probe's reading drifts
//!     every cycle under `VersionPolicy::Energy`, so every dispatch
//!     round re-ranks through a freshly invalidated rank cache keyed by
//!     the new battery context (the last zero-alloc gap the ROADMAP
//!     names);
//! 13. **steady-state batch stealing** — every cycle the thief shard
//!     runs the full PR 10 batched migration (ordered `try_steal_batch`
//!     scan, `release_stolen_batch` detach into the fixed-size
//!     [`JobBatch`], `adopt_stolen_batch` dispatch round) and retires
//!     all k stolen jobs, while the victim refills.
//!
//! Runs without the libtest harness (`harness = false` in Cargo.toml)
//! so no other thread can touch the allocator during the measured
//! windows.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use yasmin_bench::hotpath::track_actions as track;
use yasmin_core::config::{Config, MappingScheme};
use yasmin_core::graph::TaskSetBuilder;
use yasmin_core::ids::{JobId, WorkerId};
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::task::TaskSpec;
use yasmin_core::time::{Duration, Instant};
use yasmin_core::version::VersionSpec;
use yasmin_sched::{ActionSink, EngineShard, JobBatch, OnlineEngine, ShardCmd, StealHint};
use yasmin_sync::mailbox::{mailbox, MailboxReceiver, MailboxSender};
use yasmin_taskgen::taskset::{build_independent, build_partitioned, IndependentSetParams};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const WARMUP: u32 = 1_000;
const STEADY: u32 = 10_000;

/// Runs `iter` WARMUP times unmeasured, then STEADY times measured, and
/// asserts zero allocations across the measured window.
fn assert_zero_alloc(name: &str, mut iter: impl FnMut()) {
    for _ in 0..WARMUP {
        iter();
    }
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    for _ in 0..STEADY {
        iter();
    }
    let delta = ALLOC_CALLS.load(Ordering::SeqCst) - before;
    assert_eq!(
        delta, 0,
        "{name}: dispatch hot path allocated {delta} times across {STEADY} \
         steady-state iterations"
    );
    println!("zero_alloc[{name}]: OK — 0 allocations across {STEADY} steady-state iterations");
}

/// Scenario 1: EDF over independent tasks, global mapping (the PR 2
/// coverage).
fn independent_global() {
    const WORKERS: usize = 2;
    let ts = build_independent(&IndependentSetParams {
        n: 64,
        total_utilisation: 1.5,
        seed: 42,
        ..IndependentSetParams::default()
    })
    .expect("valid taskset");
    let config = Config::builder()
        .workers(WORKERS)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    let mut engine = OnlineEngine::new(Arc::new(ts), config).expect("valid engine");
    let mut sink = ActionSink::with_capacity(256);
    let mut running: Vec<Option<JobId>> = vec![None; WORKERS];

    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    track(&mut running, sink.as_slice());
    let tick = engine.tick_period();
    let mut now = Instant::ZERO;

    assert_zero_alloc("independent-global", || {
        let mid = now + tick.scale(1, 2);
        for w in 0..WORKERS {
            if let Some(job) = running[w].take() {
                sink.clear();
                engine
                    .on_job_completed_into(WorkerId::new(w as u16), job, mid, &mut sink)
                    .expect("completion protocol upheld");
                track(&mut running, sink.as_slice());
            }
        }
        now += tick;
        sink.clear();
        engine.on_tick_into(now, &mut sink);
        track(&mut running, sink.as_slice());
    });
    assert!(
        engine.stats().dispatched > u64::from(WARMUP),
        "loop must actually dispatch (got {})",
        engine.stats().dispatched
    );
}

/// Scenario 2: a fork → (left, right) → join DAG fired every period —
/// token pushes, join release and successor dispatch must all run on
/// pre-grown storage.
fn dag_firing() {
    const WORKERS: usize = 2;
    let mut b = TaskSetBuilder::new();
    let fork = b
        .task_decl(TaskSpec::periodic("fork", Duration::from_millis(10)))
        .unwrap();
    let left = b.task_decl(TaskSpec::graph_node("left")).unwrap();
    let right = b.task_decl(TaskSpec::graph_node("right")).unwrap();
    let join = b.task_decl(TaskSpec::graph_node("join")).unwrap();
    for t in [fork, left, right, join] {
        b.version_decl(t, VersionSpec::new("v", Duration::from_millis(1)))
            .unwrap();
    }
    let c1 = b.channel_decl("fl", 1, 1);
    let c2 = b.channel_decl("fr", 1, 1);
    let c3 = b.channel_decl("lj", 1, 1);
    let c4 = b.channel_decl("rj", 1, 1);
    b.channel_connect(fork, left, c1).unwrap();
    b.channel_connect(fork, right, c2).unwrap();
    b.channel_connect(left, join, c3).unwrap();
    b.channel_connect(right, join, c4).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(WORKERS)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(256)
        .build()
        .expect("valid config");
    let mut engine = OnlineEngine::new(ts, config).expect("valid engine");
    let mut sink = ActionSink::with_capacity(64);
    let mut running: Vec<Option<JobId>> = vec![None; WORKERS];

    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    track(&mut running, sink.as_slice());
    let tick = engine.tick_period();
    let step = tick.scale(1, 16);
    let mut now = Instant::ZERO;

    assert_zero_alloc("dag-firing", || {
        // Drain the whole graph instance: every completion may fire
        // successors, which dispatch immediately.
        let mut sub = now + step;
        loop {
            let mut any = false;
            for w in 0..WORKERS {
                if let Some(job) = running[w].take() {
                    sink.clear();
                    engine
                        .on_job_completed_into(WorkerId::new(w as u16), job, sub, &mut sink)
                        .expect("completion protocol upheld");
                    track(&mut running, sink.as_slice());
                    any = true;
                }
            }
            if !any {
                break;
            }
            sub += step;
        }
        now += tick;
        sink.clear();
        engine.on_tick_into(now, &mut sink);
        track(&mut running, sink.as_slice());
    });
    // 4 jobs per period: the DAG must really have fired.
    assert!(
        engine.stats().completed > u64::from(4 * WARMUP),
        "DAG loop must complete all nodes (got {})",
        engine.stats().completed
    );
}

type Feed = (Vec<MailboxSender<ShardCmd>>, MailboxReceiver<ShardCmd>);

/// Scenario 3: partitioned mapping with one [`EngineShard`] per worker,
/// every interaction fed as a [`ShardCmd`] through the lock-free
/// mailbox — the sharded dispatch path must be allocation-free
/// *including* the mailbox push and drain.
fn partitioned_sharded_mailbox() {
    const WORKERS: usize = 2;
    let ts = Arc::new(
        build_partitioned(
            &IndependentSetParams {
                n: 64,
                total_utilisation: 1.5,
                seed: 42,
                ..IndependentSetParams::default()
            },
            WORKERS,
        )
        .expect("valid taskset"),
    );
    let config = Config::builder()
        .workers(WORKERS)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    let mut shards = EngineShard::build_all(&ts, &config).expect("valid shards");
    let mut feeds: Vec<Feed> = (0..WORKERS).map(|_| mailbox::<ShardCmd>(1, 64)).collect();
    let mut sink = ActionSink::with_capacity(256);
    let mut running: Vec<Option<JobId>> = vec![None; WORKERS];

    for shard in &mut shards {
        shard
            .start_into(Instant::ZERO, &mut sink)
            .expect("fresh shard starts");
    }
    track(&mut running, sink.as_slice());
    let tick = shards[0].tick_period();
    let mut now = Instant::ZERO;

    let feed = |shard: &mut EngineShard, feed: &mut Feed, cmd: ShardCmd, sink: &mut ActionSink| {
        let (txs, rx) = feed;
        txs[0].send(cmd).expect("lane sized for the loop");
        sink.clear();
        while let Some(cmd) = rx.try_recv() {
            shard
                .process_into(cmd, sink)
                .expect("driver protocol upheld");
        }
    };

    assert_zero_alloc("partitioned-sharded-mailbox", || {
        let mid = now + tick.scale(1, 2);
        for (w, shard) in shards.iter_mut().enumerate() {
            if let Some(job) = running[w].take() {
                let cmd = ShardCmd::JobCompleted {
                    worker: WorkerId::new(w as u16),
                    job,
                    at: mid,
                };
                feed(shard, &mut feeds[w], cmd, &mut sink);
                track(&mut running, sink.as_slice());
            }
        }
        now += tick;
        for (w, shard) in shards.iter_mut().enumerate() {
            feed(shard, &mut feeds[w], ShardCmd::Tick { at: now }, &mut sink);
            track(&mut running, sink.as_slice());
        }
    });
    let dispatched: u64 = shards.iter().map(|s| s.stats().dispatched).sum();
    assert!(
        dispatched > u64::from(WARMUP),
        "sharded loop must actually dispatch (got {dispatched})"
    );
}

/// Scenario 4: accelerator contention with PIP boosts. A GPU holder
/// with a lax deadline and a GPU-only urgent task releasing mid-period
/// onto an idle second worker: every cycle the urgent job pops, finds
/// the accelerator busy, stays ready, and boosts the holder — Boost
/// actions, the accelerator wish scratch and the blocked-job re-queue
/// must all run on pre-grown storage.
fn accel_contention_pip() {
    let p = Duration::from_millis(40);
    let mut b = TaskSetBuilder::new();
    let gpu = b.hwaccel_decl("gpu");
    let hold = b.task_decl(TaskSpec::periodic("hold", p)).unwrap();
    let urgent = b
        .task_decl(
            TaskSpec::periodic("urgent", p)
                .with_release_offset(p.scale(1, 4))
                .with_constrained_deadline(p.scale(1, 4)),
        )
        .unwrap();
    b.version_decl(hold, VersionSpec::new("gpu", p.scale(1, 8)).with_accel(gpu))
        .unwrap();
    b.version_decl(
        urgent,
        VersionSpec::new("gpu", p.scale(1, 8)).with_accel(gpu),
    )
    .unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(64)
        .build()
        .expect("valid config");
    let mut engine = OnlineEngine::new(ts, config).expect("valid engine");
    let mut sink = ActionSink::with_capacity(64);
    let w0 = WorkerId::new(0);

    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    let mut now = Instant::ZERO;

    assert_zero_alloc("accel-contention-pip", || {
        // Urgent releases while the holder owns the GPU: blocked + boost.
        sink.clear();
        engine.on_tick_into(now + p.scale(1, 4), &mut sink);
        // Holder completes: urgent takes the GPU...
        let holder = engine.running(w0).expect("holder runs").job.id;
        sink.clear();
        engine
            .on_job_completed_into(w0, holder, now + p.scale(1, 2), &mut sink)
            .expect("completion protocol upheld");
        // ...and completes before the next period's holder release.
        let u = engine.running(w0).expect("urgent runs").job.id;
        sink.clear();
        engine
            .on_job_completed_into(w0, u, now + p.scale(3, 4), &mut sink)
            .expect("completion protocol upheld");
        now += p;
        sink.clear();
        engine.on_tick_into(now, &mut sink);
    });
    assert!(
        engine.stats().pip_boosts > u64::from(WARMUP),
        "every cycle must boost the holder (got {})",
        engine.stats().pip_boosts
    );
    assert!(
        engine.stats().blocked_skips > u64::from(WARMUP),
        "urgent must block on the busy accelerator (got {})",
        engine.stats().blocked_skips
    );
}

/// Scenario 5: bursty completions through the batch API — all workers'
/// completions of a cycle retired by ONE `on_jobs_completed_into` call
/// (a single dispatch round per burst), with the caller-side batch
/// buffer reused across cycles.
fn burst_batch_completion() {
    const WORKERS: usize = 4;
    let ts = build_independent(&IndependentSetParams {
        n: 64,
        total_utilisation: 3.0,
        seed: 42,
        ..IndependentSetParams::default()
    })
    .expect("valid taskset");
    let config = Config::builder()
        .workers(WORKERS)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    let mut engine = OnlineEngine::new(Arc::new(ts), config).expect("valid engine");
    let mut sink = ActionSink::with_capacity(256);
    let mut running: Vec<Option<JobId>> = vec![None; WORKERS];
    let mut batch: Vec<(WorkerId, JobId)> = Vec::with_capacity(WORKERS);

    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    track(&mut running, sink.as_slice());
    let tick = engine.tick_period();
    let mut now = Instant::ZERO;

    assert_zero_alloc("burst-batch-completion", || {
        let mid = now + tick.scale(1, 2);
        batch.clear();
        for (w, slot) in running.iter_mut().enumerate() {
            if let Some(job) = slot.take() {
                batch.push((WorkerId::new(w as u16), job));
            }
        }
        sink.clear();
        engine
            .on_jobs_completed_into(&batch, mid, &mut sink)
            .expect("completion protocol upheld");
        track(&mut running, sink.as_slice());
        now += tick;
        sink.clear();
        engine.on_tick_into(now, &mut sink);
        track(&mut running, sink.as_slice());
    });
    assert!(
        engine.stats().completed > u64::from(WARMUP),
        "burst loop must retire batches (got {})",
        engine.stats().completed
    );
}

/// Scenario 6: a mode switch every cycle invalidates the whole rank
/// cache, so every dispatch re-ranks its task's versions under the new
/// selection context — the refresh must fill the pre-grown cache
/// entries through the in-place rank scratch without touching the
/// allocator.
fn mode_switch_rank_refresh() {
    use yasmin_core::config::VersionPolicy;
    use yasmin_core::version::{ExecMode, ModeMask};
    const WORKERS: usize = 2;
    let alt = ExecMode::new(1);
    let mut b = TaskSetBuilder::new();
    for i in 0..32 {
        let t = b
            .task_decl(TaskSpec::periodic(
                format!("t{i}"),
                Duration::from_millis(10),
            ))
            .unwrap();
        b.version_decl(
            t,
            VersionSpec::new("norm", Duration::from_millis(1))
                .with_modes(ModeMask::only(ExecMode::NORMAL)),
        )
        .unwrap();
        b.version_decl(
            t,
            VersionSpec::new("alt", Duration::from_millis(2)).with_modes(ModeMask::only(alt)),
        )
        .unwrap();
    }
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(WORKERS)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .version_policy(VersionPolicy::Mode)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    let mut engine = OnlineEngine::new(ts, config).expect("valid engine");
    let mut sink = ActionSink::with_capacity(128);
    let mut running: Vec<Option<JobId>> = vec![None; WORKERS];

    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    track(&mut running, sink.as_slice());
    let tick = engine.tick_period();
    let mut now = Instant::ZERO;
    let mut flip = false;

    assert_zero_alloc("mode-switch-rank-refresh", || {
        flip = !flip;
        engine.set_mode(if flip { alt } else { ExecMode::NORMAL });
        let mid = now + tick.scale(1, 2);
        for w in 0..WORKERS {
            if let Some(job) = running[w].take() {
                sink.clear();
                engine
                    .on_job_completed_into(WorkerId::new(w as u16), job, mid, &mut sink)
                    .expect("completion protocol upheld");
                track(&mut running, sink.as_slice());
            }
        }
        now += tick;
        sink.clear();
        engine.on_tick_into(now, &mut sink);
        track(&mut running, sink.as_slice());
    });
    assert!(
        engine.stats().dispatched > u64::from(WARMUP),
        "mode-switch loop must dispatch (got {})",
        engine.stats().dispatched
    );
}

/// Scenario 7: the full work-stealing migration every cycle — probe,
/// detach, adopt, dispatch on the thief, completion hand-back — plus
/// the victim's refill, all on pre-grown storage.
fn steady_state_stealing() {
    const TASKS: usize = 32;
    let mut b = TaskSetBuilder::new();
    let mut tasks = Vec::new();
    for i in 0..TASKS {
        let t = b
            .task_decl(TaskSpec::aperiodic(format!("a{i}")).on_worker(WorkerId::new(0)))
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", Duration::from_millis(1)))
            .unwrap();
        tasks.push(t);
    }
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .tick(Duration::from_millis(1_000))
        .max_pending_jobs(TASKS + 8)
        .build()
        .expect("valid config");
    let mut shards = EngineShard::build_all(&ts, &config).expect("valid shards");
    let mut thief = shards.pop().unwrap();
    let mut victim = shards.pop().unwrap();
    let mut sink = ActionSink::with_capacity(64);
    victim
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh shard starts");
    thief
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh shard starts");
    // The first activation parks on the victim's worker; the rest hold
    // the queue at its steady size.
    for &t in &tasks {
        victim.activate_into(t, Instant::ZERO, &mut sink).unwrap();
    }
    let w1 = WorkerId::new(1);
    let mut now = Instant::ZERO;
    let step = Duration::from_micros(1);

    assert_zero_alloc("steady-state-stealing", || {
        now += step;
        let hint = victim.try_steal().expect("victim queue is loaded");
        let job = victim.release_stolen(hint).expect("hint is fresh");
        sink.clear();
        thief
            .adopt_stolen(job, now, &mut sink)
            .expect("thief is idle");
        sink.clear();
        thief
            .on_job_completed_into(w1, job.id, now, &mut sink)
            .expect("completion protocol upheld");
        sink.clear();
        victim.activate_into(job.task, now, &mut sink).unwrap();
    });
    assert!(
        victim.stats().donated > u64::from(WARMUP),
        "every cycle must donate (got {})",
        victim.stats().donated
    );
    assert_eq!(victim.stats().donated, thief.stats().stolen);
    assert!(thief.stats().completed > u64::from(WARMUP));
}

/// Scenario 8: multi-tenant steady state. A budgeted tenant is admitted
/// on-line — evaluated, spliced and committed — before the measured
/// window; afterwards the engine serves two tenants, and every dispatch
/// of the admitted one charges its reservation server. Splicing is
/// allowed to allocate (control path); the steady state it leaves
/// behind is not.
fn admitted_tenant_steady_state() {
    use yasmin_core::ids::TenantId;
    use yasmin_sched::admission::{reservation_for, AdmissionControl};
    use yasmin_sched::server::TenantBudget;
    const WORKERS: usize = 2;
    let p = Duration::from_millis(10);
    let build_set = |prefix: &str, n: usize| {
        let mut b = TaskSetBuilder::new();
        for i in 0..n {
            let t = b
                .task_decl(TaskSpec::periodic(format!("{prefix}{i}"), p))
                .unwrap();
            b.version_decl(t, VersionSpec::new("v", Duration::from_millis(1)))
                .unwrap();
        }
        b.build().unwrap()
    };
    let config = Config::builder()
        .workers(WORKERS)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    let mut engine =
        OnlineEngine::new(Arc::new(build_set("base", 8)), config).expect("valid engine");
    let mut sink = ActionSink::with_capacity(256);
    let mut running: Vec<Option<JobId>> = vec![None; WORKERS];

    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    track(&mut running, sink.as_slice());

    // On-line admission of a second, budgeted tenant: 4 tasks of
    // utilisation 0.1 under a half-capacity deferrable budget.
    let tenant_set = build_set("tenant", 4);
    let budget = TenantBudget::deferrable(Duration::from_millis(5), p);
    let admission = AdmissionControl::for_engine(&engine);
    let merged = admission
        .evaluate(engine.taskset(), &tenant_set, Some(&budget))
        .expect("tenant is admissible");
    let tenant = TenantId::new(engine.tenant_count() as u32);
    let server = reservation_for(tenant, Some(budget), Instant::ZERO);
    engine.splice_taskset(merged, server).expect("valid splice");
    sink.clear();
    engine
        .commit_tenant_into(tenant, Instant::ZERO, &mut sink)
        .expect("tenant commits");
    track(&mut running, sink.as_slice());

    let tick = engine.tick_period();
    let mut now = Instant::ZERO;

    assert_zero_alloc("admitted-tenant-steady-state", || {
        let mid = now + tick.scale(1, 2);
        for w in 0..WORKERS {
            if let Some(job) = running[w].take() {
                sink.clear();
                engine
                    .on_job_completed_into(WorkerId::new(w as u16), job, mid, &mut sink)
                    .expect("completion protocol upheld");
                track(&mut running, sink.as_slice());
            }
        }
        now += tick;
        sink.clear();
        engine.on_tick_into(now, &mut sink);
        track(&mut running, sink.as_slice());
    });
    assert!(
        engine.stats().dispatched > u64::from(WARMUP),
        "multi-tenant loop must dispatch (got {})",
        engine.stats().dispatched
    );
    let charged = engine
        .tenant_server(tenant)
        .expect("tenant is budgeted")
        .total_charged();
    assert!(
        !charged.is_zero(),
        "the admitted tenant's dispatches must charge its reservation server"
    );
}

/// Pumps queued [`MsgEvent`]s from the notify mailbox into the engine's
/// boost/restore hooks — the role the scheduler thread plays in the
/// real runtimes.
fn pump_msg_events(
    events: &mut MailboxReceiver<yasmin_sched::msg::MsgEvent>,
    engine: &mut OnlineEngine,
    now: Instant,
    sink: &mut ActionSink,
    running: &mut [Option<JobId>],
) {
    use yasmin_sched::msg::MsgEvent;
    while let Some(ev) = events.try_recv() {
        sink.clear();
        match ev {
            MsgEvent::HighPosted { dst, ceiling } => engine
                .on_high_posted_into(dst, ceiling, now, sink)
                .expect("receiver is live"),
            MsgEvent::HighDrained { dst } => engine
                .on_high_drained_into(dst, now, sink)
                .expect("receiver is live"),
        }
        track(running, sink.as_slice());
    }
}

/// Scenario 9: the typed message plane in steady state. One worker runs
/// `runner` while `dst` waits in the queue, so every high-lane post
/// finds a pending job to boost; each cycle does the full
/// send → notify → boost → recv → drain → restore → retire round trip
/// with the notify hook feeding a wait-free mailbox lane exactly as the
/// runtimes wire it.
fn message_plane_steady_state() {
    use std::sync::Mutex;
    use yasmin_core::priority::Priority;
    use yasmin_sched::msg::{ChannelBuilder, MsgEvent};

    let mut b = TaskSetBuilder::new();
    let runner = b.task_decl(TaskSpec::aperiodic("runner")).unwrap();
    b.version_decl(runner, VersionSpec::new("v", Duration::from_millis(1)))
        .unwrap();
    let dst = b.task_decl(TaskSpec::aperiodic("dst")).unwrap();
    b.version_decl(dst, VersionSpec::new("v", Duration::from_millis(1)))
        .unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(1)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .tick(Duration::from_millis(1_000))
        .max_pending_jobs(16)
        .build()
        .expect("valid config");
    let mut engine = OnlineEngine::new(ts, config).expect("valid engine");

    let (tx, rx) = ChannelBuilder::standalone("ctl", dst)
        .capacity(8)
        .high_lane(8, Priority::HIGHEST)
        .build::<u64>()
        .expect("valid channel");
    let (mut lanes, mut events) = mailbox::<MsgEvent>(1, 64);
    let feed = Mutex::new(lanes.pop().expect("one lane requested"));
    assert!(tx.notify_handle().set_notify(Arc::new(move |ev| {
        feed.lock()
            .expect("notify hook never panics")
            .send(ev)
            .expect("event lane sized for the cycle");
    })));

    let mut sink = ActionSink::with_capacity(64);
    let mut running: Vec<Option<JobId>> = vec![None; 1];
    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    track(&mut running, sink.as_slice());

    let step = Duration::from_micros(10);
    let mut now = Instant::ZERO;
    let mut seq = 0u64;

    assert_zero_alloc("message-plane", || {
        now += step;
        seq += 1;
        // `runner` takes the single worker; `dst` parks in the queue.
        sink.clear();
        engine
            .activate_into(runner, now, &mut sink)
            .expect("worker is idle");
        track(&mut running, sink.as_slice());
        let active = running[0].expect("runner dispatched");
        sink.clear();
        engine
            .activate_into(dst, now, &mut sink)
            .expect("queue has room");
        // Post both lanes; the high post boosts the queued `dst` job.
        tx.send(seq).expect("normal lane has room");
        tx.send_high(seq).expect("high lane has room");
        pump_msg_events(&mut events, &mut engine, now, &mut sink, &mut running);
        // Drain high lane first, then the normal lane; the drain event
        // restores the queued job's base priority.
        assert_eq!(rx.recv(), Some(seq));
        assert_eq!(rx.recv(), Some(seq));
        pump_msg_events(&mut events, &mut engine, now, &mut sink, &mut running);
        // Retire `runner`, which dispatches the restored `dst` job,
        // then retire that too so the next cycle starts idle.
        sink.clear();
        engine
            .on_job_completed_into(WorkerId::new(0), active, now, &mut sink)
            .expect("completion protocol upheld");
        track(&mut running, sink.as_slice());
        let drained = running[0].take().expect("dst dispatched after runner");
        sink.clear();
        engine
            .on_job_completed_into(WorkerId::new(0), drained, now, &mut sink)
            .expect("completion protocol upheld");
        track(&mut running, sink.as_slice());
    });
    assert!(
        engine.stats().msg_boosts > u64::from(WARMUP),
        "every cycle must boost the pending receiver (got {})",
        engine.stats().msg_boosts
    );
    assert!(rx.is_empty(), "both lanes drained every cycle");
}

/// Scenario 10: the cross-shard outbox path. Every cycle a source job
/// completes on shard 0 and lands its successor token in the outbox as
/// a `RemoteActivation`; the driver drains the outbox into a reusable
/// buffer and routes it to shard 1 as a `CrossActivate`, releasing and
/// dispatching the destination — the fire, drain, route and release
/// must all run on pre-grown storage.
fn cross_shard_outbox() {
    use yasmin_sched::RemoteActivation;
    let mut b = TaskSetBuilder::new();
    let src = b
        .task_decl(TaskSpec::aperiodic("src").on_worker(WorkerId::new(0)))
        .unwrap();
    let dst = b
        .task_decl(TaskSpec::graph_node("dst").on_worker(WorkerId::new(1)))
        .unwrap();
    b.version_decl(src, VersionSpec::new("v", Duration::from_millis(1)))
        .unwrap();
    b.version_decl(dst, VersionSpec::new("v", Duration::from_millis(1)))
        .unwrap();
    let c = b.channel_decl("c", 4, 8);
    b.channel_connect(src, dst, c).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .tick(Duration::from_millis(1_000))
        .max_pending_jobs(16)
        .build()
        .expect("valid config");
    let mut shards = EngineShard::build_all(&ts, &config).expect("valid shards");
    let mut s1 = shards.pop().unwrap();
    let mut s0 = shards.pop().unwrap();
    let mut sink = ActionSink::with_capacity(64);
    s0.start_into(Instant::ZERO, &mut sink)
        .expect("fresh shard starts");
    s1.start_into(Instant::ZERO, &mut sink)
        .expect("fresh shard starts");
    let (w0, w1) = (WorkerId::new(0), WorkerId::new(1));
    let mut running: Vec<Option<JobId>> = vec![None; 2];
    let mut outbox: Vec<RemoteActivation> = Vec::with_capacity(8);
    let step = Duration::from_micros(1);
    let mut now = Instant::ZERO;

    assert_zero_alloc("cross-shard-outbox", || {
        now += step;
        sink.clear();
        s0.activate_into(src, now, &mut sink)
            .expect("worker 0 idle");
        track(&mut running, sink.as_slice());
        let j0 = running[0].take().expect("src dispatched");
        sink.clear();
        s0.on_job_completed_into(w0, j0, now, &mut sink)
            .expect("completion protocol upheld");
        outbox.clear();
        s0.drain_outbox_into(&mut outbox);
        for ra in outbox.drain(..) {
            sink.clear();
            s1.process_into(
                ShardCmd::CrossActivate {
                    edge: ra.edge,
                    graph_release: ra.graph_release,
                    at: now,
                },
                &mut sink,
            )
            .expect("cross token routes");
            track(&mut running, sink.as_slice());
        }
        let j1 = running[1].take().expect("dst dispatched");
        sink.clear();
        s1.on_job_completed_into(w1, j1, now, &mut sink)
            .expect("completion protocol upheld");
    });
    assert!(
        s0.stats().cross_activations > u64::from(WARMUP),
        "every cycle must route a cross-shard token (got {})",
        s0.stats().cross_activations
    );
}

/// Scenario 11: steady state with fault-tolerance machinery armed —
/// `enforce_wcet` scans the running slots every tick, the miss-trip
/// window rolls, and every cycle one job is flagged as overrunning and
/// demoted to background (the Boost surfacing of `OverrunPolicy`
/// enforcement). None of it may touch the allocator.
fn enforcement_steady_state() {
    use yasmin_core::task::OverrunPolicy;
    const WORKERS: usize = 2;
    let mut b = TaskSetBuilder::new();
    for i in 0..32 {
        let t = b
            .task_decl(
                TaskSpec::periodic(format!("t{i}"), Duration::from_millis(10))
                    .with_overrun_policy(OverrunPolicy::DemoteToBackground),
            )
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", Duration::from_millis(1)))
            .unwrap();
    }
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(WORKERS)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .enforce_wcet(true)
        .miss_trip(Duration::from_millis(100), 64)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    let mut engine = OnlineEngine::new(ts, config).expect("valid engine");
    let mut sink = ActionSink::with_capacity(128);
    let mut running: Vec<Option<JobId>> = vec![None; WORKERS];

    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    track(&mut running, sink.as_slice());
    let tick = engine.tick_period();
    let mut now = Instant::ZERO;

    assert_zero_alloc("enforcement-steady-state", || {
        let mid = now + tick.scale(1, 2);
        // Flag worker 0's running job as overrunning: the Demote policy
        // books the overrun and emits the background Boost.
        if let Some(r) = engine.running(WorkerId::new(0)) {
            let t = r.job.task;
            sink.clear();
            engine.force_overrun(t, mid, &mut sink);
        }
        for w in 0..WORKERS {
            if let Some(job) = running[w].take() {
                sink.clear();
                engine
                    .on_job_completed_into(WorkerId::new(w as u16), job, mid, &mut sink)
                    .expect("completion protocol upheld");
                track(&mut running, sink.as_slice());
            }
        }
        now += tick;
        sink.clear();
        engine.on_tick_into(now, &mut sink);
        track(&mut running, sink.as_slice());
    });
    assert!(
        engine.stats().overruns > u64::from(WARMUP),
        "every cycle must book an overrun (got {})",
        engine.stats().overruns
    );
    assert!(!engine.is_tripped(), "on-time completions never trip");
}

/// Scenario 12: version selection under `VersionPolicy::Energy` with a
/// live battery probe whose reading drifts every cycle. Each dispatch
/// round pays the probe, sees a context different from the cached one,
/// invalidates the whole rank cache and re-ranks its task's versions
/// under the new affordability cut-off — the worst case for the refresh
/// path, which must run entirely on the pre-grown cache entries and the
/// in-place rank scratch.
fn battery_energy_refresh() {
    use std::sync::atomic::{AtomicU32, Ordering};
    use yasmin_core::config::VersionPolicy;
    use yasmin_core::energy::{BatteryLevel, Energy};
    use yasmin_sched::Action;
    const WORKERS: usize = 2;
    let mut b = TaskSetBuilder::new();
    for i in 0..32 {
        let t = b
            .task_decl(TaskSpec::periodic(
                format!("t{i}"),
                Duration::from_millis(10),
            ))
            .unwrap();
        b.version_decl(
            t,
            VersionSpec::new("cheap", Duration::from_millis(2))
                .with_energy(Energy::from_millijoules(5))
                .with_energy_budget(Energy::from_millijoules(5)),
        )
        .unwrap();
        b.version_decl(
            t,
            VersionSpec::new("hungry", Duration::from_millis(1))
                .with_energy(Energy::from_millijoules(12))
                .with_energy_budget(Energy::from_millijoules(12)),
        )
        .unwrap();
    }
    let ts = Arc::new(b.build().unwrap());
    let level = Arc::new(AtomicU32::new(1000));
    let probe = Arc::clone(&level);
    let config = Config::builder()
        .workers(WORKERS)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .version_policy(VersionPolicy::Energy)
        .battery_source(move || BatteryLevel::from_permille(probe.load(Ordering::Relaxed) as u16))
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    let mut engine = OnlineEngine::new(ts, config).expect("valid engine");
    let mut sink = ActionSink::with_capacity(128);
    let mut running: Vec<Option<JobId>> = vec![None; WORKERS];

    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    track(&mut running, sink.as_slice());
    let tick = engine.tick_period();
    let mut now = Instant::ZERO;
    let (mut cheap, mut hungry) = (0u64, 0u64);
    let mut count = |sink: &ActionSink| {
        for a in sink.as_slice() {
            if let Action::Dispatch { version, .. } = a {
                match version.index() {
                    0 => cheap += 1,
                    _ => hungry += 1,
                }
            }
        }
    };

    assert_zero_alloc("battery-energy-refresh", || {
        // Saw the battery between full (hungry affordable) and nearly
        // drained (only cheap affordable): the context differs on every
        // probe, so no dispatch ever hits a warm cache entry.
        let cur = level.load(Ordering::Relaxed);
        level.store(if cur <= 100 { 1000 } else { cur - 60 }, Ordering::Relaxed);
        let mid = now + tick.scale(1, 2);
        for w in 0..WORKERS {
            if let Some(job) = running[w].take() {
                sink.clear();
                engine
                    .on_job_completed_into(WorkerId::new(w as u16), job, mid, &mut sink)
                    .expect("completion protocol upheld");
                track(&mut running, sink.as_slice());
                count(&sink);
            }
        }
        now += tick;
        sink.clear();
        engine.on_tick_into(now, &mut sink);
        track(&mut running, sink.as_slice());
        count(&sink);
    });
    assert!(
        engine.stats().dispatched > u64::from(WARMUP),
        "battery loop must dispatch (got {})",
        engine.stats().dispatched
    );
    assert!(
        cheap > 0 && hungry > 0,
        "the drifting probe must flip the selection both ways \
         (cheap {cheap}, hungry {hungry})"
    );
}

/// Scenario 13: the batched work-stealing migration every cycle —
/// ordered hint scan, k-job detach into the fixed [`JobBatch`], one
/// adopt dispatch round on the thief, all k retirements and the
/// victim's refill, all on pre-grown storage.
fn steady_state_batch_stealing() {
    const TASKS: usize = 32;
    const K: usize = 4;
    let mut b = TaskSetBuilder::new();
    let mut tasks = Vec::new();
    for i in 0..TASKS {
        let t = b
            .task_decl(TaskSpec::aperiodic(format!("a{i}")).on_worker(WorkerId::new(0)))
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", Duration::from_millis(1)))
            .unwrap();
        tasks.push(t);
    }
    let ts = Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .tick(Duration::from_millis(1_000))
        .max_pending_jobs(TASKS + 8)
        .build()
        .expect("valid config");
    let mut shards = EngineShard::build_all(&ts, &config).expect("valid shards");
    let mut thief = shards.pop().unwrap();
    let mut victim = shards.pop().unwrap();
    let mut sink = ActionSink::with_capacity(64);
    victim
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh shard starts");
    thief
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh shard starts");
    for &t in &tasks {
        victim.activate_into(t, Instant::ZERO, &mut sink).unwrap();
    }
    let w1 = WorkerId::new(1);
    let mut now = Instant::ZERO;
    let step = Duration::from_micros(1);
    let mut hints: Vec<StealHint> = Vec::with_capacity(K);
    let mut batch = JobBatch::new();

    assert_zero_alloc("steady-state-batch-stealing", || {
        now += step;
        hints.clear();
        let hinted = victim.try_steal_batch(K, &mut hints);
        assert_eq!(hinted, K, "victim queue is loaded");
        batch.clear();
        let released = victim.release_stolen_batch(&hints, &mut batch);
        assert_eq!(released, K, "hints are fresh");
        sink.clear();
        thief
            .adopt_stolen_batch(batch.as_slice(), now, &mut sink)
            .expect("thief is idle");
        // The adopt round dispatched the most urgent stolen job; each
        // retirement dispatches the next from the thief's local queue.
        for _ in 0..K {
            let job = thief.running().expect("an adopted job runs").job.id;
            sink.clear();
            thief
                .on_job_completed_into(w1, job, now, &mut sink)
                .expect("completion protocol upheld");
        }
        assert!(thief.running().is_none(), "all k stolen jobs retired");
        for job in batch.as_slice() {
            sink.clear();
            victim.activate_into(job.task, now, &mut sink).unwrap();
        }
    });
    assert!(
        thief.stats().stolen_batch > u64::from(WARMUP),
        "every cycle must run one batched exchange (got {})",
        thief.stats().stolen_batch
    );
    assert_eq!(victim.stats().donated, thief.stats().stolen);
    assert!(thief.stats().completed > u64::from(K as u32 * WARMUP));
}

fn main() {
    independent_global();
    dag_firing();
    partitioned_sharded_mailbox();
    accel_contention_pip();
    burst_batch_completion();
    mode_switch_rank_refresh();
    steady_state_stealing();
    admitted_tenant_steady_state();
    message_plane_steady_state();
    cross_shard_outbox();
    enforcement_steady_state();
    battery_energy_refresh();
    steady_state_batch_stealing();
}
