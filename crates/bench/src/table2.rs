//! Experiment E3 — Table 2: cyclictest latency under YASMIN,
//! Linux+PREEMPT_RT and LitmusRT.
//!
//! Rows exactly as the paper prints them: for each kernel, the YASMIN-
//! managed cyclictest and the stock tool, under stress-ng-level load.
//! The YASMIN rows combine the calibrated kernel wake-up model with the
//! *measured* cost of the real scheduling engine handling the
//! cyclictest-shaped task set (see `yasmin_baselines::cyclictest`).

use yasmin_baselines::cyclictest::{measure_engine_overhead, simulate, CyclictestConfig, Variant};
use yasmin_core::stats::Summary;
use yasmin_sim::{KernelKind, StressProfile};

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Kernel ("OS" column).
    pub os: &'static str,
    /// cyclictest version column.
    pub version: String,
    /// Latency summary (ns inside; print µs).
    pub latency: Summary,
}

/// Parameters of the run.
#[derive(Clone, Copy, Debug)]
pub struct Table2Params {
    /// cyclictest invocation (paper: 6 threads, 10 ms, 10 000 loops).
    pub cyclictest: CyclictestConfig,
    /// Engine-overhead calibration iterations.
    pub engine_iters: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Table2Params {
    fn default() -> Self {
        Table2Params {
            cyclictest: CyclictestConfig::default(),
            engine_iters: 2_000,
            seed: 42,
        }
    }
}

impl Table2Params {
    /// A fast variant for tests.
    #[must_use]
    pub fn quick() -> Self {
        Table2Params {
            cyclictest: CyclictestConfig {
                threads: 6,
                interval: yasmin_core::time::Duration::from_millis(10),
                loops: 1_000,
            },
            engine_iters: 200,
            seed: 42,
        }
    }
}

/// Regenerates all Table 2 rows.
#[must_use]
pub fn run(p: &Table2Params) -> Vec<Table2Row> {
    // stress-ng -C 8 -c 8 -T 8 -y 8 saturates the Odroid's 8 cores.
    let stress = StressProfile::PAPER.intensity(8);
    let engine_cost = measure_engine_overhead(&p.cyclictest, p.engine_iters);

    let mut rows = Vec::new();
    // Linux + PREEMPT_RT.
    for (variant, label) in [(Variant::Yasmin, "YASMIN"), (Variant::Native, "RTapps")] {
        rows.push(Table2Row {
            os: "Linux+PREEMPT_RT 4.14.134-rt63",
            version: label.to_string(),
            latency: simulate(
                KernelKind::PreemptRt,
                variant,
                &p.cyclictest,
                stress,
                &engine_cost,
                p.seed,
            ),
        });
    }
    // LitmusRT 4.9.30: YASMIN, mainline cyclictest, the litmus-shipped
    // GSN-EDF variant, and the P-RES reservation plugin.
    rows.push(Table2Row {
        os: "LitmusRT 4.9.30",
        version: "YASMIN".into(),
        latency: simulate(
            KernelKind::LitmusGsnEdf,
            Variant::Yasmin,
            &p.cyclictest,
            stress,
            &engine_cost,
            p.seed ^ 1,
        ),
    });
    rows.push(Table2Row {
        os: "LitmusRT 4.9.30",
        version: "RTapps".into(),
        latency: simulate(
            KernelKind::LitmusGsnEdf,
            Variant::Native,
            &p.cyclictest,
            stress,
            &engine_cost,
            p.seed ^ 2,
        ),
    });
    rows.push(Table2Row {
        os: "LitmusRT 4.9.30",
        version: "litmus+GSN-EDF".into(),
        latency: simulate(
            KernelKind::LitmusGsnEdf,
            Variant::Native,
            &p.cyclictest,
            stress,
            &engine_cost,
            p.seed ^ 3,
        ),
    });
    rows.push(Table2Row {
        os: "LitmusRT 4.9.30",
        version: "litmus+P-RES".into(),
        latency: simulate(
            KernelKind::LitmusPres,
            Variant::Native,
            &p.cyclictest,
            stress,
            &engine_cost,
            p.seed ^ 4,
        ),
    });
    rows
}

/// Renders the rows as a markdown table in the paper's format.
#[must_use]
pub fn render(rows: &[Table2Row]) -> String {
    let mut out = String::from("| OS | cyclictest version | latency <min, max, avg> (us) |\n");
    out.push_str("|---|---|---|\n");
    for r in rows {
        let (min, max, avg) = r.latency.as_micros_triple();
        out.push_str(&format!(
            "| {} | {} | <{:.0}, {:.0}, {:.0}> |\n",
            r.os, r.version, min, max, avg
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_paper_shape() {
        let rows = run(&Table2Params::quick());
        assert_eq!(rows.len(), 6);
        let get = |os: &str, v: &str| {
            rows.iter()
                .find(|r| r.os.contains(os) && r.version == v)
                .map(|r| r.latency.as_micros_triple())
                .unwrap()
        };
        let rt_y = get("PREEMPT_RT", "YASMIN");
        let rt_n = get("PREEMPT_RT", "RTapps");
        let li_y = get("Litmus", "YASMIN");
        let li_n = get("Litmus", "RTapps");
        let pres = get("Litmus", "litmus+P-RES");
        // Shape checks straight from the paper:
        // (1) on PREEMPT_RT, YASMIN's min is lower, avg slightly higher;
        assert!(rt_y.0 < rt_n.0, "{rt_y:?} vs {rt_n:?}");
        assert!(rt_y.2 > rt_n.2);
        // (2) on LitmusRT, YASMIN costs more across the board;
        assert!(li_y.2 > li_n.2);
        // (3) LitmusRT latencies are far below PREEMPT_RT's;
        assert!(li_n.2 < rt_n.2 / 3.0);
        // (4) P-RES is the slowest row by far.
        assert!(pres.2 > li_n.2 * 5.0);
        let table = render(&rows);
        assert!(table.contains("litmus+P-RES"));
    }
}
