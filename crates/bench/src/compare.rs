//! Comparison of recorded hotpath benchmark JSONs — the CI
//! perf-regression gate (PR 3).
//!
//! The workspace vendors no JSON library, and the `BENCH_PR*.json`
//! format is our own (flat, one section per line, emitted by
//! [`crate::hotpath`]), so extraction is a small scanner rather than a
//! parser: find the section key, then the entry key after it, then the
//! first `"p50_ns":` integer after that.

/// The brace-balanced JSON object following `"key"` in `s`, or `None`
/// when the key (or its object) is absent. Bounding every lookup to the
/// owning object keeps a missing entry from silently matching the same
/// key in a *later* section.
fn object_at<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let at = s.find(&format!("\"{key}\""))?;
    let rest = &s[at..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts `section.entry.p50_ns` from a hotpath benchmark JSON.
///
/// Returns `None` when the section/entry/field is absent.
#[must_use]
pub fn extract_p50(json: &str, section: &str, entry: &str) -> Option<u64> {
    let entry_obj = object_at(object_at(json, section)?, entry)?;
    let field = entry_obj.find("\"p50_ns\":")?;
    let digits: String = entry_obj[field + "\"p50_ns\":".len()..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Outcome of one gated comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateCheck {
    /// `section.entry` compared (e.g. `after.on_tick`).
    pub what: String,
    /// Baseline median, ns.
    pub baseline_p50_ns: u64,
    /// Current median, ns.
    pub current_p50_ns: u64,
    /// `true` when the current median exceeds the allowed regression.
    pub regressed: bool,
}

impl std::fmt::Display for GateCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<28} baseline {:>6} ns  current {:>6} ns  {}",
            self.what,
            self.baseline_p50_ns,
            self.current_p50_ns,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Compares the `after` p50 medians of two hotpath JSONs, flagging any
/// entry whose current median exceeds the baseline by more than
/// `max_regression_pct` percent.
///
/// # Errors
///
/// A message naming the first entry missing from either JSON (a format
/// drift — the gate must fail loudly, not silently pass).
pub fn gate_p50(
    baseline_json: &str,
    current_json: &str,
    max_regression_pct: u64,
) -> Result<Vec<GateCheck>, String> {
    let entries = ["on_tick", "on_job_completed"];
    let mut checks = Vec::with_capacity(entries.len());
    for entry in entries {
        let b = extract_p50(baseline_json, "after", entry)
            .ok_or_else(|| format!("baseline JSON lacks after.{entry}.p50_ns"))?;
        let c = extract_p50(current_json, "after", entry)
            .ok_or_else(|| format!("current JSON lacks after.{entry}.p50_ns"))?;
        // b * (100 + pct) / 100, in integer arithmetic.
        let limit = b.saturating_mul(100 + max_regression_pct) / 100;
        checks.push(GateCheck {
            what: format!("after.{entry}"),
            baseline_p50_ns: b,
            current_p50_ns: c,
            regressed: c > limit,
        });
    }
    Ok(checks)
}

/// Same-host sanity gate: within one `BENCH_PR3.json`, the mailbox-fed
/// sharded path may cost at most `max_overhead_pct` percent over the
/// direct path for each entry point. Both sides are measured in the
/// same process on the same host, so — unlike the cross-file check —
/// this bound is immune to runner-vs-reference-host speed differences;
/// it catches a lock, allocation or O(n) scan slipping into the
/// mailbox feed itself.
///
/// # Errors
///
/// A message naming the first entry missing from the JSON.
pub fn gate_mailbox_overhead(
    current_json: &str,
    max_overhead_pct: u64,
) -> Result<Vec<GateCheck>, String> {
    let entries = ["on_tick", "on_job_completed"];
    let mut checks = Vec::with_capacity(entries.len());
    for entry in entries {
        let direct = extract_p50(current_json, "after", entry)
            .ok_or_else(|| format!("current JSON lacks after.{entry}.p50_ns"))?;
        let fed = extract_p50(current_json, "mailbox_feed", entry)
            .ok_or_else(|| format!("current JSON lacks mailbox_feed.{entry}.p50_ns"))?;
        let limit = direct.saturating_mul(100 + max_overhead_pct) / 100;
        checks.push(GateCheck {
            what: format!("mailbox_feed.{entry}"),
            baseline_p50_ns: direct,
            current_p50_ns: fed,
            regressed: fed > limit,
        });
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "bench": "hotpath",
  "after": {"on_tick": {"p50_ns": 140, "p99_ns": 646}, "on_job_completed": {"p50_ns": 190, "p99_ns": 294}},
  "dispatches": 22000
}"#;

    #[test]
    fn extracts_nested_p50() {
        assert_eq!(extract_p50(BASE, "after", "on_tick"), Some(140));
        assert_eq!(extract_p50(BASE, "after", "on_job_completed"), Some(190));
        assert_eq!(extract_p50(BASE, "after", "missing"), None);
        assert_eq!(extract_p50(BASE, "before", "on_tick"), None);
    }

    #[test]
    fn missing_entry_does_not_read_the_next_section() {
        // "after" lacks on_tick here; the lookup must NOT fall through
        // to mailbox_feed.on_tick.
        let json = r#"{
  "after": {"on_job_completed": {"p50_ns": 190}},
  "mailbox_feed": {"on_tick": {"p50_ns": 141}, "on_job_completed": {"p50_ns": 213}}
}"#;
        assert_eq!(extract_p50(json, "after", "on_tick"), None);
        assert_eq!(extract_p50(json, "after", "on_job_completed"), Some(190));
        assert_eq!(extract_p50(json, "mailbox_feed", "on_tick"), Some(141));
    }

    #[test]
    fn extraction_skips_earlier_sections() {
        let json = r#"{
  "pr2_baseline": {"on_tick": {"p50_ns": 999}},
  "after": {"on_tick": {"p50_ns": 100}}
}"#;
        assert_eq!(extract_p50(json, "after", "on_tick"), Some(100));
        assert_eq!(extract_p50(json, "pr2_baseline", "on_tick"), Some(999));
    }

    #[test]
    fn gate_passes_within_threshold() {
        let current = BASE.replace("\"p50_ns\": 140", "\"p50_ns\": 170");
        let checks = gate_p50(BASE, &current, 25).unwrap();
        assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
    }

    #[test]
    fn gate_fails_past_threshold() {
        let current = BASE.replace("\"p50_ns\": 190", "\"p50_ns\": 260");
        let checks = gate_p50(BASE, &current, 25).unwrap();
        let bad: Vec<_> = checks.iter().filter(|c| c.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].what, "after.on_job_completed");
        assert!(bad[0].to_string().contains("REGRESSED"));
    }

    #[test]
    fn gate_errors_on_format_drift() {
        assert!(gate_p50(BASE, "{}", 25).is_err());
        assert!(gate_p50("{}", BASE, 25).is_err());
    }

    const PR3: &str = r#"{
  "bench": "hotpath",
  "after": {"on_tick": {"p50_ns": 160}, "on_job_completed": {"p50_ns": 190}},
  "mailbox_feed": {"on_tick": {"p50_ns": 140}, "on_job_completed": {"p50_ns": 210}}
}"#;

    #[test]
    fn mailbox_overhead_gate_passes_within_bound() {
        let checks = gate_mailbox_overhead(PR3, 100).unwrap();
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
    }

    #[test]
    fn mailbox_overhead_gate_fails_past_bound() {
        let slow = PR3.replace("\"p50_ns\": 210", "\"p50_ns\": 500");
        let checks = gate_mailbox_overhead(&slow, 100).unwrap();
        let bad: Vec<_> = checks.iter().filter(|c| c.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].what, "mailbox_feed.on_job_completed");
        assert!(gate_mailbox_overhead("{}", 100).is_err());
    }
}
