//! Comparison of recorded hotpath benchmark JSONs — the CI
//! perf-regression gate (PR 3).
//!
//! The workspace vendors no JSON library, and the `BENCH_PR*.json`
//! format is our own (flat, one section per line, emitted by
//! [`crate::hotpath`]), so extraction is a small scanner rather than a
//! parser: find the section key, then the entry key after it, then the
//! first `"p50_ns":` integer after that.

/// The brace-balanced JSON object following `"key"` in `s`, or `None`
/// when the key (or its object) is absent. Bounding every lookup to the
/// owning object keeps a missing entry from silently matching the same
/// key in a *later* section.
fn object_at<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let at = s.find(&format!("\"{key}\""))?;
    let rest = &s[at..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts `section.entry.p50_ns` from a hotpath benchmark JSON.
///
/// Returns `None` when the section/entry/field is absent.
#[must_use]
pub fn extract_p50(json: &str, section: &str, entry: &str) -> Option<u64> {
    let entry_obj = object_at(object_at(json, section)?, entry)?;
    let field = entry_obj.find("\"p50_ns\":")?;
    let digits: String = entry_obj[field + "\"p50_ns\":".len()..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Outcome of one gated comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateCheck {
    /// `section.entry` compared (e.g. `after.on_tick`).
    pub what: String,
    /// Baseline median, ns.
    pub baseline_p50_ns: u64,
    /// Current median, ns.
    pub current_p50_ns: u64,
    /// `true` when the current median exceeds the allowed regression.
    pub regressed: bool,
}

impl std::fmt::Display for GateCheck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<28} baseline {:>6} ns  current {:>6} ns  {}",
            self.what,
            self.baseline_p50_ns,
            self.current_p50_ns,
            if self.regressed { "REGRESSED" } else { "ok" }
        )
    }
}

/// Compares the current JSON's `after` p50 medians against the **best**
/// (minimum) recorded baseline per entry point across several baseline
/// JSONs — so a PR cannot claim a win against the slowest ancestor
/// while regressing on the fastest. `baselines` pairs a display name
/// with the file's contents.
///
/// # Errors
///
/// A message naming the first entry missing from any JSON (a format
/// drift — the gate must fail loudly, not silently pass).
pub fn gate_p50_vs_best(
    baselines: &[(&str, &str)],
    current_json: &str,
    max_regression_pct: u64,
) -> Result<Vec<GateCheck>, String> {
    if baselines.is_empty() {
        return Err("gate_p50_vs_best needs at least one baseline".into());
    }
    let entries = ["on_tick", "on_job_completed"];
    let mut checks = Vec::with_capacity(entries.len());
    for entry in entries {
        let mut best: Option<(u64, &str)> = None;
        for (name, json) in baselines {
            let b = extract_p50(json, "after", entry)
                .ok_or_else(|| format!("baseline {name} lacks after.{entry}.p50_ns"))?;
            if best.is_none_or(|(v, _)| b < v) {
                best = Some((b, name));
            }
        }
        let (b, name) = best.expect("baselines is non-empty");
        let c = extract_p50(current_json, "after", entry)
            .ok_or_else(|| format!("current JSON lacks after.{entry}.p50_ns"))?;
        let limit = b.saturating_mul(100 + max_regression_pct) / 100;
        checks.push(GateCheck {
            what: format!("after.{entry} (best: {name})"),
            baseline_p50_ns: b,
            current_p50_ns: c,
            regressed: c > limit,
        });
    }
    Ok(checks)
}

/// Same-host ratio gate between two p50 medians of ONE json: the
/// numerator (`num_section.num_entry`) may exceed the denominator
/// (`den_section.den_entry`) by at most `max_over_pct` percent. Both
/// sides come from the same process on the same machine, so the bound
/// is valid on any hardware — this is how the remove-heavy
/// (remove-then-pop ≤ 2× pop) and burst (batched ≤ sequential + slack)
/// invariants are enforced in CI.
///
/// # Errors
///
/// A message naming the missing entry.
pub fn gate_ratio(
    json: &str,
    num: (&str, &str),
    den: (&str, &str),
    max_over_pct: u64,
) -> Result<GateCheck, String> {
    let n = extract_p50(json, num.0, num.1)
        .ok_or_else(|| format!("JSON lacks {}.{}.p50_ns", num.0, num.1))?;
    let d = extract_p50(json, den.0, den.1)
        .ok_or_else(|| format!("JSON lacks {}.{}.p50_ns", den.0, den.1))?;
    let limit = d.saturating_mul(100 + max_over_pct) / 100;
    Ok(GateCheck {
        what: format!("{}.{} vs {}.{}", num.0, num.1, den.0, den.1),
        baseline_p50_ns: d,
        current_p50_ns: n,
        regressed: n > limit,
    })
}

/// Same-host **minimum-speedup** gate between two p50 medians of one
/// JSON: the `slow` median must be at least `min_speedup_pct` percent
/// of the `fast` median — 200 enforces "slow ≥ 2× fast". This is the
/// form the batch-steal amortisation takes (eight single hand-offs must
/// cost at least twice one batched exchange); [`gate_ratio`] cannot
/// express it, since its bound is a maximum over the denominator, not a
/// required multiple.
///
/// # Errors
///
/// A message naming the missing entry.
pub fn gate_min_speedup(
    json: &str,
    slow: (&str, &str),
    fast: (&str, &str),
    min_speedup_pct: u64,
) -> Result<GateCheck, String> {
    let s = extract_p50(json, slow.0, slow.1)
        .ok_or_else(|| format!("JSON lacks {}.{}.p50_ns", slow.0, slow.1))?;
    let f = extract_p50(json, fast.0, fast.1)
        .ok_or_else(|| format!("JSON lacks {}.{}.p50_ns", fast.0, fast.1))?;
    let floor = f.saturating_mul(min_speedup_pct) / 100;
    Ok(GateCheck {
        what: format!(
            "{}.{} >= {min_speedup_pct}% of {}.{}",
            slow.0, slow.1, fast.0, fast.1
        ),
        baseline_p50_ns: floor,
        current_p50_ns: s,
        regressed: s < floor,
    })
}

/// Same-host sanity gate: within one `BENCH_PR3.json`, the mailbox-fed
/// sharded path may cost at most `max_overhead_pct` percent over the
/// direct path for each entry point. Both sides are measured in the
/// same process on the same host, so — unlike the cross-file check —
/// this bound is immune to runner-vs-reference-host speed differences;
/// it catches a lock, allocation or O(n) scan slipping into the
/// mailbox feed itself.
///
/// # Errors
///
/// A message naming the first entry missing from the JSON.
pub fn gate_mailbox_overhead(
    current_json: &str,
    max_overhead_pct: u64,
) -> Result<Vec<GateCheck>, String> {
    let entries = ["on_tick", "on_job_completed"];
    let mut checks = Vec::with_capacity(entries.len());
    for entry in entries {
        let direct = extract_p50(current_json, "after", entry)
            .ok_or_else(|| format!("current JSON lacks after.{entry}.p50_ns"))?;
        let fed = extract_p50(current_json, "mailbox_feed", entry)
            .ok_or_else(|| format!("current JSON lacks mailbox_feed.{entry}.p50_ns"))?;
        let limit = direct.saturating_mul(100 + max_overhead_pct) / 100;
        checks.push(GateCheck {
            what: format!("mailbox_feed.{entry}"),
            baseline_p50_ns: direct,
            current_p50_ns: fed,
            regressed: fed > limit,
        });
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "bench": "hotpath",
  "after": {"on_tick": {"p50_ns": 140, "p99_ns": 646}, "on_job_completed": {"p50_ns": 190, "p99_ns": 294}},
  "dispatches": 22000
}"#;

    #[test]
    fn extracts_nested_p50() {
        assert_eq!(extract_p50(BASE, "after", "on_tick"), Some(140));
        assert_eq!(extract_p50(BASE, "after", "on_job_completed"), Some(190));
        assert_eq!(extract_p50(BASE, "after", "missing"), None);
        assert_eq!(extract_p50(BASE, "before", "on_tick"), None);
    }

    #[test]
    fn missing_entry_does_not_read_the_next_section() {
        // "after" lacks on_tick here; the lookup must NOT fall through
        // to mailbox_feed.on_tick.
        let json = r#"{
  "after": {"on_job_completed": {"p50_ns": 190}},
  "mailbox_feed": {"on_tick": {"p50_ns": 141}, "on_job_completed": {"p50_ns": 213}}
}"#;
        assert_eq!(extract_p50(json, "after", "on_tick"), None);
        assert_eq!(extract_p50(json, "after", "on_job_completed"), Some(190));
        assert_eq!(extract_p50(json, "mailbox_feed", "on_tick"), Some(141));
    }

    #[test]
    fn extraction_skips_earlier_sections() {
        let json = r#"{
  "pr2_baseline": {"on_tick": {"p50_ns": 999}},
  "after": {"on_tick": {"p50_ns": 100}}
}"#;
        assert_eq!(extract_p50(json, "after", "on_tick"), Some(100));
        assert_eq!(extract_p50(json, "pr2_baseline", "on_tick"), Some(999));
    }

    #[test]
    fn gate_passes_within_threshold() {
        let current = BASE.replace("\"p50_ns\": 140", "\"p50_ns\": 170");
        let checks = gate_p50_vs_best(&[("BASE", BASE)], &current, 25).unwrap();
        assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
    }

    #[test]
    fn gate_fails_past_threshold() {
        let current = BASE.replace("\"p50_ns\": 190", "\"p50_ns\": 260");
        let checks = gate_p50_vs_best(&[("BASE", BASE)], &current, 25).unwrap();
        let bad: Vec<_> = checks.iter().filter(|c| c.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].what, "after.on_job_completed (best: BASE)");
        assert!(bad[0].to_string().contains("REGRESSED"));
    }

    #[test]
    fn gate_errors_on_format_drift() {
        assert!(gate_p50_vs_best(&[("BASE", BASE)], "{}", 25).is_err());
        assert!(gate_p50_vs_best(&[("bad", "{}")], BASE, 25).is_err());
    }

    const PR3: &str = r#"{
  "bench": "hotpath",
  "after": {"on_tick": {"p50_ns": 160}, "on_job_completed": {"p50_ns": 190}},
  "mailbox_feed": {"on_tick": {"p50_ns": 140}, "on_job_completed": {"p50_ns": 210}}
}"#;

    #[test]
    fn best_baseline_gate_takes_the_minimum() {
        // PR2 has the faster on_tick, PR3 the faster on_job_completed:
        // the gate must compare against each entry's best.
        let pr2 = r#"{"after": {"on_tick": {"p50_ns": 100}, "on_job_completed": {"p50_ns": 300}}}"#;
        let pr3 = r#"{"after": {"on_tick": {"p50_ns": 200}, "on_job_completed": {"p50_ns": 150}}}"#;
        let current =
            r#"{"after": {"on_tick": {"p50_ns": 110}, "on_job_completed": {"p50_ns": 160}}}"#;
        let checks = gate_p50_vs_best(&[("PR2", pr2), ("PR3", pr3)], current, 25).unwrap();
        assert_eq!(checks[0].baseline_p50_ns, 100);
        assert!(checks[0].what.contains("PR2"));
        assert_eq!(checks[1].baseline_p50_ns, 150);
        assert!(checks[1].what.contains("PR3"));
        assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
        // Regressing past the best (but not the worst) baseline fails.
        let slow =
            r#"{"after": {"on_tick": {"p50_ns": 180}, "on_job_completed": {"p50_ns": 160}}}"#;
        let checks = gate_p50_vs_best(&[("PR2", pr2), ("PR3", pr3)], slow, 25).unwrap();
        assert!(checks[0].regressed, "{checks:?}");
        assert!(gate_p50_vs_best(&[], current, 25).is_err());
        assert!(gate_p50_vs_best(&[("PR2", "{}")], current, 25).is_err());
    }

    #[test]
    fn ratio_gate_bounds_numerator_over_denominator() {
        let json = r#"{
  "remove_heavy": {"pop": {"p50_ns": 100}, "remove_then_pop": {"p50_ns": 180}, "n": 1024},
  "burst": {"sequential": {"p50_ns": 900}, "batched": {"p50_ns": 700}, "workers": 8}
}"#;
        let rh = gate_ratio(
            json,
            ("remove_heavy", "remove_then_pop"),
            ("remove_heavy", "pop"),
            100,
        )
        .unwrap();
        assert!(!rh.regressed, "{rh:?}");
        let b = gate_ratio(json, ("burst", "batched"), ("burst", "sequential"), 25).unwrap();
        assert!(!b.regressed, "{b:?}");
        // Past the bound -> regressed.
        let slow = json.replace("\"p50_ns\": 180", "\"p50_ns\": 260");
        let rh = gate_ratio(
            &slow,
            ("remove_heavy", "remove_then_pop"),
            ("remove_heavy", "pop"),
            100,
        )
        .unwrap();
        assert!(rh.regressed, "{rh:?}");
        assert!(gate_ratio(json, ("missing", "x"), ("burst", "batched"), 10).is_err());
    }

    #[test]
    fn min_speedup_gate_requires_the_multiple() {
        let json = r#"{
  "steal_batch": {"single": {"p50_ns": 2600}, "batch": {"p50_ns": 1000}, "n": 63, "k": 8},
  "queue_scan": {"soa": {"p50_ns": 90}, "inline_ref": {"p50_ns": 100}, "n": 8192}
}"#;
        // single = 2.6x batch: a 2x floor passes, a 3x floor fails.
        let ok = gate_min_speedup(
            json,
            ("steal_batch", "single"),
            ("steal_batch", "batch"),
            200,
        )
        .unwrap();
        assert!(!ok.regressed, "{ok:?}");
        assert_eq!(ok.baseline_p50_ns, 2000);
        assert_eq!(ok.current_p50_ns, 2600);
        let bad = gate_min_speedup(
            json,
            ("steal_batch", "single"),
            ("steal_batch", "batch"),
            300,
        )
        .unwrap();
        assert!(bad.regressed, "{bad:?}");
        assert!(bad.to_string().contains("REGRESSED"));
        // Missing entries error loudly.
        assert!(gate_min_speedup(json, ("missing", "x"), ("steal_batch", "batch"), 200).is_err());
        assert!(gate_min_speedup(json, ("steal_batch", "single"), ("missing", "x"), 200).is_err());
    }

    #[test]
    fn mailbox_overhead_gate_passes_within_bound() {
        let checks = gate_mailbox_overhead(PR3, 100).unwrap();
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
    }

    #[test]
    fn mailbox_overhead_gate_fails_past_bound() {
        let slow = PR3.replace("\"p50_ns\": 210", "\"p50_ns\": 500");
        let checks = gate_mailbox_overhead(&slow, 100).unwrap();
        let bad: Vec<_> = checks.iter().filter(|c| c.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].what, "mailbox_feed.on_job_completed");
        assert!(gate_mailbox_overhead("{}", 100).is_err());
    }
}
