//! # yasmin-bench
//!
//! The experiment harness regenerating every table and figure of the
//! YASMIN paper's evaluation:
//!
//! * [`fig2`] — Figure 2 (a/b): scheduling overhead vs Mollison &
//!   Anderson, by task count and by utilisation;
//! * [`table2`] — Table 2: cyclictest latency on PREEMPT_RT and LitmusRT;
//! * [`fig4`] — Figure 4: the drone SAR scheduling exploration.
//!
//! Each module exposes `run` + `render`; the binaries
//! (`exp_fig2`, `exp_table2`, `exp_fig4`) print the paper-format tables
//! and write CSVs under `results/`. Criterion micro-benchmarks live in
//! `benches/`.

#![warn(missing_docs)]

pub mod compare;
pub mod fig2;
pub mod fig4;
pub mod hotpath;
pub mod table2;

use std::io::Write;

/// Writes `content` to `results/<name>` (best-effort; the experiment
/// still succeeds when the directory is read-only).
pub fn write_result(name: &str, content: &str) {
    let dir = std::path::Path::new("results");
    let _ = std::fs::create_dir_all(dir);
    if let Ok(mut f) = std::fs::File::create(dir.join(name)) {
        let _ = f.write_all(content.as_bytes());
    }
}
