//! Dispatch hot-path latency experiment (the PR-2 perf baseline).
//!
//! Drives a steady-state tick/complete loop against the *real*
//! [`OnlineEngine`] — the same interaction pattern the Figure 2 overhead
//! experiment times — and reports per-call latency percentiles for the
//! two hot entry points:
//!
//! * `on_tick`: periodic releases + a dispatch round;
//! * `on_job_completed`: worker hand-back + successor dispatch.
//!
//! The binary `exp_hotpath` renders the result as machine-readable JSON
//! (`results/BENCH_PR2.json`) so successive PRs have a recorded
//! trajectory to compare against.

use std::sync::Arc;
use std::time::Instant as WallInstant;
use yasmin_core::config::{Config, MappingScheme};
use yasmin_core::ids::{JobId, TaskId, WorkerId};
use yasmin_core::priority::{Priority, PriorityPolicy};
use yasmin_core::stats::Samples;
use yasmin_core::time::{Duration, Instant};
use yasmin_sched::{Action, ActionSink, EngineShard, Job, OnlineEngine, ReadyQueue, ShardCmd};
use yasmin_sync::mailbox::{mailbox, MailboxReceiver, MailboxSender};
use yasmin_taskgen::taskset::{build_independent, build_partitioned, IndependentSetParams};

/// Parameters of the steady-state loop.
#[derive(Debug, Clone, Copy)]
pub struct HotpathParams {
    /// Number of independent periodic tasks.
    pub tasks: usize,
    /// Worker (and queue-feeding) count.
    pub workers: usize,
    /// Total utilisation of the generated set.
    pub total_utilisation: f64,
    /// Taskset seed.
    pub seed: u64,
    /// Iterations measured (after warm-up).
    pub iters: u32,
    /// Warm-up iterations (excluded from the samples).
    pub warmup: u32,
}

impl Default for HotpathParams {
    fn default() -> Self {
        HotpathParams {
            tasks: 64,
            workers: 2,
            total_utilisation: 1.5,
            seed: 42,
            iters: 10_000,
            warmup: 1_000,
        }
    }
}

/// Latency percentiles of one entry point, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Median.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Worst observed.
    pub max_ns: u64,
    /// Sample count.
    pub count: usize,
}

impl LatencyStats {
    fn from_samples(s: &mut Samples) -> LatencyStats {
        LatencyStats {
            p50_ns: s.percentile(50).unwrap_or(0),
            p99_ns: s.percentile(99).unwrap_or(0),
            mean_ns: s.mean().unwrap_or(0.0),
            max_ns: s.max().unwrap_or(0),
            count: s.count(),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {:.1}, \"max_ns\": {}, \"count\": {}}}",
            self.p50_ns, self.p99_ns, self.mean_ns, self.max_ns, self.count
        )
    }
}

/// The measured report.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Parameters the loop ran with.
    pub params: HotpathParams,
    /// `on_tick` latency.
    pub tick: LatencyStats,
    /// `on_job_completed` latency.
    pub completion: LatencyStats,
    /// Dispatch actions emitted over the measured window.
    pub dispatches: u64,
}

fn engine_for(p: &HotpathParams) -> OnlineEngine {
    let ts = build_independent(&IndependentSetParams {
        n: p.tasks,
        total_utilisation: p.total_utilisation,
        seed: p.seed,
        ..IndependentSetParams::default()
    })
    .expect("valid taskset");
    let config = Config::builder()
        .workers(p.workers)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    OnlineEngine::new(Arc::new(ts), config).expect("valid engine")
}

/// Replays the engine's actions onto a per-worker `running` model —
/// the minimal driver bookkeeping every steady-state measurement loop
/// (and the zero-alloc harness) needs to know which job to complete
/// next.
pub fn track_actions(running: &mut [Option<JobId>], actions: &[Action]) {
    for a in actions {
        match *a {
            Action::Dispatch { worker, job, .. } => running[worker.index()] = Some(job.id),
            Action::Preempt { worker, .. } => running[worker.index()] = None,
            Action::Boost { .. } => {}
        }
    }
}

/// Runs the steady-state loop and collects per-call latencies.
///
/// Drives the `*_into` sink API — the zero-allocation path a production
/// driver uses; the legacy `Vec`-returning wrappers delegate to it.
#[must_use]
pub fn run(p: &HotpathParams) -> HotpathReport {
    let mut engine = engine_for(p);
    let mut running: Vec<Option<JobId>> = vec![None; p.workers];
    let mut sink = ActionSink::with_capacity(256);

    engine
        .start_into(Instant::ZERO, &mut sink)
        .expect("fresh engine starts");
    track_actions(&mut running, sink.as_slice());
    let tick = engine.tick_period();
    let mut now = Instant::ZERO;
    let mut tick_ns = Samples::with_capacity(p.iters as usize);
    let mut completion_ns = Samples::with_capacity(p.iters as usize);
    let dispatched_before_measure = engine.stats().dispatched;

    for i in 0..(p.warmup + p.iters) {
        let measuring = i >= p.warmup;
        // Complete everything running midway through the tick window, so
        // the next tick's releases find idle workers (steady state).
        let mid = now + tick.scale(1, 2);
        for w in 0..p.workers {
            if let Some(job) = running[w].take() {
                let worker = yasmin_core::ids::WorkerId::new(w as u16);
                sink.clear();
                let t0 = WallInstant::now();
                engine
                    .on_job_completed_into(worker, job, mid, &mut sink)
                    .expect("completion protocol upheld");
                let dt = t0.elapsed();
                if measuring {
                    completion_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
                }
                track_actions(&mut running, sink.as_slice());
            }
        }
        now += tick;
        sink.clear();
        let t0 = WallInstant::now();
        engine.on_tick_into(now, &mut sink);
        let dt = t0.elapsed();
        if measuring {
            tick_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
        track_actions(&mut running, sink.as_slice());
    }

    HotpathReport {
        params: *p,
        tick: LatencyStats::from_samples(&mut tick_ns),
        completion: LatencyStats::from_samples(&mut completion_ns),
        dispatches: engine.stats().dispatched - dispatched_before_measure,
    }
}

/// Runs the steady-state loop against the **sharded** engine, feeding
/// every interaction through the lock-free command mailbox: each
/// completion/tick is pushed as a [`ShardCmd`] into the shard's mailbox
/// lane, drained by the owner and applied via the zero-alloc sink path.
/// The samples therefore measure the *mailbox-feed dispatch latency* —
/// ring push + drain + engine call — the per-command cost a per-core
/// scheduler thread pays in the sharded runtime.
///
/// # Panics
///
/// Panics on engine/taskset construction failure (parameter bug).
#[must_use]
pub fn run_sharded(p: &HotpathParams) -> HotpathReport {
    let ts = Arc::new(
        build_partitioned(
            &IndependentSetParams {
                n: p.tasks,
                total_utilisation: p.total_utilisation,
                seed: p.seed,
                ..IndependentSetParams::default()
            },
            p.workers,
        )
        .expect("valid taskset"),
    );
    let config = Config::builder()
        .workers(p.workers)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    let mut shards = EngineShard::build_all(&ts, &config).expect("valid shards");
    let mut feeds: Vec<_> = (0..p.workers)
        .map(|_| mailbox::<ShardCmd>(1, 256))
        .collect();
    let mut running: Vec<Option<JobId>> = vec![None; p.workers];
    let mut sink = ActionSink::with_capacity(256);

    let mut dispatched_before_measure = 0;
    for shard in &mut shards {
        shard
            .start_into(Instant::ZERO, &mut sink)
            .expect("fresh shard starts");
        dispatched_before_measure += shard.stats().dispatched;
    }
    track_actions(&mut running, sink.as_slice());
    let tick = shards[0].tick_period();
    let mut now = Instant::ZERO;
    let mut tick_ns = Samples::with_capacity(p.iters as usize);
    let mut completion_ns = Samples::with_capacity(p.iters as usize);

    for i in 0..(p.warmup + p.iters) {
        let measuring = i >= p.warmup;
        let mid = now + tick.scale(1, 2);
        for (w, shard) in shards.iter_mut().enumerate() {
            if let Some(job) = running[w].take() {
                let worker = yasmin_core::ids::WorkerId::new(w as u16);
                let cmd = ShardCmd::JobCompleted {
                    worker,
                    job,
                    at: mid,
                };
                feed_one(
                    shard,
                    &mut feeds[w],
                    cmd,
                    &mut sink,
                    &mut completion_ns,
                    measuring,
                );
                track_actions(&mut running, sink.as_slice());
            }
        }
        now += tick;
        for (w, shard) in shards.iter_mut().enumerate() {
            let cmd = ShardCmd::Tick { at: now };
            feed_one(
                shard,
                &mut feeds[w],
                cmd,
                &mut sink,
                &mut tick_ns,
                measuring,
            );
            track_actions(&mut running, sink.as_slice());
        }
    }

    let dispatches: u64 = shards.iter().map(|s| s.stats().dispatched).sum();
    HotpathReport {
        params: *p,
        tick: LatencyStats::from_samples(&mut tick_ns),
        completion: LatencyStats::from_samples(&mut completion_ns),
        dispatches: dispatches - dispatched_before_measure,
    }
}

/// One mailbox-feed round: push `cmd` into the shard's lane, drain the
/// mailbox as the owner, apply via the sink — timed end to end.
fn feed_one(
    shard: &mut EngineShard,
    feed: &mut (Vec<MailboxSender<ShardCmd>>, MailboxReceiver<ShardCmd>),
    cmd: ShardCmd,
    sink: &mut ActionSink,
    samples: &mut Samples,
    measuring: bool,
) {
    let (txs, rx) = feed;
    sink.clear();
    let t0 = WallInstant::now();
    txs[0].send(cmd).expect("mailbox lane sized for the loop");
    while let Some(cmd) = rx.try_recv() {
        shard
            .process_into(cmd, sink)
            .expect("driver protocol upheld");
    }
    let dt = t0.elapsed();
    if measuring {
        samples.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
    }
}

/// The remove-heavy queue measurement: `remove`-then-`pop` against
/// `pop` alone on a full [`ReadyQueue`] — the asymptotic check behind
/// the PR 4 index heap (the former tombstone queue scanned O(n) per
/// removal, so `remove_then_pop` blew past any constant multiple of
/// `pop` at n = 1024).
#[derive(Debug, Clone)]
pub struct RemoveHeavyReport {
    /// Live queue size held throughout the measurement.
    pub n: usize,
    /// Latency of one `pop` (the job is pushed back untimed).
    pub pop: LatencyStats,
    /// Latency of one mid-queue `remove` followed by one `pop` (both
    /// jobs pushed back untimed).
    pub remove_then_pop: LatencyStats,
}

fn queue_job(id: u64, prio: u64) -> Job {
    Job {
        id: JobId::new(id),
        task: TaskId::new(id as u32),
        seq: 0,
        release: Instant::ZERO,
        graph_release: Instant::ZERO,
        abs_deadline: Instant::ZERO + Duration::from_millis(1),
        priority: Priority::new(prio),
        preempted: false,
    }
}

/// Runs the remove-heavy queue loops at a steady live size of `n`.
///
/// The acceptance bound the perf gate enforces: `remove_then_pop` p50
/// within 2× of `pop` p50 — i.e. a removal costs no more than a pop,
/// with no size-dependent scan on any path.
#[must_use]
pub fn run_remove_heavy(n: usize, iters: u32, warmup: u32) -> RemoveHeavyReport {
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }
    let mut rng = Lcg(0x243F_6A88_85A3_08D3);
    fn fill(q: &mut ReadyQueue, n: usize, rng: &mut Lcg) {
        for id in 0..n as u64 {
            q.push(queue_job(id, rng.next() % 1024))
                .expect("sized for n");
        }
    }

    let mut pop_ns = Samples::with_capacity(iters as usize);
    let mut q = ReadyQueue::with_capacity(n);
    fill(&mut q, n, &mut rng);
    for i in 0..(warmup + iters) {
        let t0 = WallInstant::now();
        let j = q.pop().expect("queue stays full");
        let dt = t0.elapsed();
        q.push(j).expect("push back below capacity");
        if i >= warmup {
            pop_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    let mut remove_ns = Samples::with_capacity(iters as usize);
    let mut q = ReadyQueue::with_capacity(n);
    fill(&mut q, n, &mut rng);
    for i in 0..(warmup + iters) {
        // Ids 0..n stay live across iterations (everything is pushed
        // back), so any id in range is a valid mid-queue victim.
        let victim = JobId::new(rng.next() % n as u64);
        let t0 = WallInstant::now();
        let removed = q.remove(victim).expect("victim is live");
        let popped = q.pop().expect("queue non-empty");
        let dt = t0.elapsed();
        q.push(removed).expect("push back below capacity");
        q.push(popped).expect("push back below capacity");
        if i >= warmup {
            remove_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    RemoveHeavyReport {
        n,
        pop: LatencyStats::from_samples(&mut pop_ns),
        remove_then_pop: LatencyStats::from_samples(&mut remove_ns),
    }
}

/// The bursty-completion measurement: per cycle, every busy worker's
/// completion retired either **sequentially** (one
/// `on_job_completed_into` — and thus one dispatch round — per worker)
/// or **batched** (one `on_jobs_completed_into` for the whole burst,
/// one dispatch round total). One sample = the whole per-cycle
/// completion phase, so the two series are directly comparable.
#[derive(Debug, Clone)]
pub struct BurstReport {
    /// Workers completing per cycle.
    pub workers: usize,
    /// Per-burst latency of the sequential per-completion path.
    pub sequential: LatencyStats,
    /// Per-burst latency of the batch API.
    pub batched: LatencyStats,
}

fn burst_engine(p: &HotpathParams, workers: usize) -> OnlineEngine {
    let ts = build_independent(&IndependentSetParams {
        n: p.tasks,
        // Enough demand to keep every worker busy each cycle.
        total_utilisation: workers as f64 * 0.75,
        seed: p.seed,
        ..IndependentSetParams::default()
    })
    .expect("valid taskset");
    let config = Config::builder()
        .workers(workers)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    OnlineEngine::new(Arc::new(ts), config).expect("valid engine")
}

/// Runs the bursty-completion loops with `workers` workers completing
/// each cycle.
#[must_use]
pub fn run_burst(p: &HotpathParams, workers: usize) -> BurstReport {
    let run_variant = |batched: bool| -> LatencyStats {
        let mut engine = burst_engine(p, workers);
        let mut running: Vec<Option<JobId>> = vec![None; workers];
        let mut batch: Vec<(WorkerId, JobId)> = Vec::with_capacity(workers);
        let mut sink = ActionSink::with_capacity(256);
        engine
            .start_into(Instant::ZERO, &mut sink)
            .expect("fresh engine starts");
        track_actions(&mut running, sink.as_slice());
        let tick = engine.tick_period();
        let mut now = Instant::ZERO;
        let mut samples = Samples::with_capacity(p.iters as usize);
        for i in 0..(p.warmup + p.iters) {
            let mid = now + tick.scale(1, 2);
            batch.clear();
            for (w, slot) in running.iter_mut().enumerate() {
                if let Some(job) = slot.take() {
                    batch.push((WorkerId::new(w as u16), job));
                }
            }
            sink.clear();
            let t0 = WallInstant::now();
            if batched {
                engine
                    .on_jobs_completed_into(&batch, mid, &mut sink)
                    .expect("completion protocol upheld");
            } else {
                for &(w, job) in &batch {
                    engine
                        .on_job_completed_into(w, job, mid, &mut sink)
                        .expect("completion protocol upheld");
                }
            }
            let dt = t0.elapsed();
            if i >= p.warmup {
                samples.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
            }
            track_actions(&mut running, sink.as_slice());
            now += tick;
            sink.clear();
            engine.on_tick_into(now, &mut sink);
            track_actions(&mut running, sink.as_slice());
        }
        LatencyStats::from_samples(&mut samples)
    };

    BurstReport {
        workers,
        sequential: run_variant(false),
        batched: run_variant(true),
    }
}

/// The steal-path measurement (PR 5): the full work-stealing hand-off
/// — O(1) `try_steal` probe, O(log n) `release_stolen` detach, thief
/// `adopt_stolen` with its dispatch round — against a plain local
/// dispatch (completion pops the most urgent job onto the worker), on
/// a victim queue held at a steady size. Both sides run in the same
/// process, so the ratio is host-independent: the perf gate bounds the
/// steal cycle at 2× the local pop path.
#[derive(Debug, Clone)]
pub struct StealReport {
    /// Steady live size of the victim's ready queue.
    pub n: usize,
    /// Latency of a local completion→pop→dispatch on the victim.
    pub local_pop: LatencyStats,
    /// Latency of the full steal cycle (probe + detach + adopt).
    pub steal_cycle: LatencyStats,
}

/// Runs the steal-path loops with the victim queue held at `n_tasks`
/// (minus the job parked on the victim's worker).
///
/// # Panics
///
/// Panics on engine/taskset construction failure (parameter bug).
#[must_use]
pub fn run_steal(n_tasks: usize, iters: u32, warmup: u32) -> StealReport {
    use yasmin_core::task::TaskSpec;
    use yasmin_core::time::Instant as SimInstant;
    let mut b = yasmin_core::graph::TaskSetBuilder::new();
    let mut tasks = Vec::with_capacity(n_tasks);
    for i in 0..n_tasks {
        let t = b
            .task_decl(TaskSpec::aperiodic(format!("a{i}")).on_worker(WorkerId::new(0)))
            .unwrap();
        b.version_decl(
            t,
            yasmin_core::version::VersionSpec::new("v", Duration::from_millis(1)),
        )
        .unwrap();
        tasks.push(t);
    }
    let ts = std::sync::Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .tick(Duration::from_millis(1_000))
        .max_pending_jobs(n_tasks + 8)
        .build()
        .unwrap();
    let mut shards = EngineShard::build_all(&ts, &config).expect("valid shards");
    let mut thief = shards.pop().unwrap();
    let mut victim = shards.pop().unwrap();
    let mut sink = ActionSink::with_capacity(64);
    victim.start_into(SimInstant::ZERO, &mut sink).unwrap();
    thief.start_into(SimInstant::ZERO, &mut sink).unwrap();
    // Fill the victim: the first activation parks on its worker, the
    // rest hold the queue at its steady size.
    for &t in &tasks {
        victim
            .activate_into(t, SimInstant::ZERO, &mut sink)
            .unwrap();
    }
    let w0 = WorkerId::new(0);
    let w1 = WorkerId::new(1);
    let mut now = SimInstant::ZERO;
    let step = Duration::from_micros(1);
    let mut local_ns = Samples::with_capacity(iters as usize);
    let mut steal_ns = Samples::with_capacity(iters as usize);

    for i in 0..(warmup + iters) {
        let measuring = i >= warmup;
        now += step;
        // Timed steal cycle: probe, detach, adopt (thief dispatches).
        sink.clear();
        let t0 = WallInstant::now();
        let hint = victim.try_steal().expect("victim queue is loaded");
        let job = victim.release_stolen(hint).expect("hint is fresh");
        thief
            .adopt_stolen(job, now, &mut sink)
            .expect("thief is idle");
        let dt = t0.elapsed();
        if measuring {
            steal_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
        // Untimed: retire the stolen job and refill the victim queue.
        sink.clear();
        thief
            .on_job_completed_into(w1, job.id, now, &mut sink)
            .expect("completion protocol upheld");
        sink.clear();
        victim.activate_into(job.task, now, &mut sink).unwrap();
        // Timed local comparator: completion pops the most urgent job
        // onto the victim's own worker.
        let running = victim.running().expect("victim worker busy").job;
        sink.clear();
        let t0 = WallInstant::now();
        victim
            .on_job_completed_into(w0, running.id, now, &mut sink)
            .expect("completion protocol upheld");
        let dt = t0.elapsed();
        if measuring {
            local_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
        sink.clear();
        victim.activate_into(running.task, now, &mut sink).unwrap();
    }
    assert!(victim.stats().donated >= u64::from(iters));
    StealReport {
        n: n_tasks.saturating_sub(1),
        local_pop: LatencyStats::from_samples(&mut local_ns),
        steal_cycle: LatencyStats::from_samples(&mut steal_ns),
    }
}

/// The batch-steal measurement (PR 10): moving `k` jobs from a loaded
/// victim to an idle thief as `k` single-steal protocol rounds against
/// **one** batched exchange — with the victim's scheduler on a real
/// second thread, as in the sharded runtime. Every exchange therefore
/// pays the genuine cross-thread cost the protocol pays in production:
/// a request hop on a mailbox lane, the victim thread's scan + detach,
/// a grant hop carrying the jobs back, and the thief's adoption round.
/// The single-steal series serialises k of those round trips (the
/// runtime holds one outstanding request per thief); the batch pays
/// one. One sample = the whole k-job hand-off; the perf gate requires
/// the single-steal series to cost at least 2× the batched one (i.e.
/// batch throughput ≥ 2× single-steal throughput at k = 8).
#[derive(Debug, Clone)]
pub struct StealBatchReport {
    /// Steady live size of the victim's ready queue.
    pub n: usize,
    /// Jobs moved per sample.
    pub k: usize,
    /// Latency of `k` single steal rounds (request hop + probe + detach
    /// + grant hop + adopt, per job, serialised).
    pub single: LatencyStats,
    /// Latency of one k-job batched round (request hop + ordered scan +
    /// detach pass + one grant hop + one adoption round).
    pub batch: LatencyStats,
}

fn steal_pair(n_tasks: usize) -> (EngineShard, EngineShard, Vec<TaskId>) {
    use yasmin_core::task::TaskSpec;
    use yasmin_core::time::Instant as SimInstant;
    let mut b = yasmin_core::graph::TaskSetBuilder::new();
    let mut tasks = Vec::with_capacity(n_tasks);
    for i in 0..n_tasks {
        let t = b
            .task_decl(TaskSpec::aperiodic(format!("a{i}")).on_worker(WorkerId::new(0)))
            .unwrap();
        b.version_decl(
            t,
            yasmin_core::version::VersionSpec::new("v", Duration::from_millis(1)),
        )
        .unwrap();
        tasks.push(t);
    }
    let ts = std::sync::Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .tick(Duration::from_millis(1_000))
        .max_pending_jobs(n_tasks + 8)
        .build()
        .unwrap();
    let mut shards = EngineShard::build_all(&ts, &config).expect("valid shards");
    let thief = shards.pop().unwrap();
    let mut victim = shards.pop().unwrap();
    let mut sink = ActionSink::with_capacity(64);
    victim.start_into(SimInstant::ZERO, &mut sink).unwrap();
    // Fill the victim: the first activation parks on its worker, the
    // rest hold the queue at its steady size.
    for &t in &tasks {
        victim
            .activate_into(t, SimInstant::ZERO, &mut sink)
            .unwrap();
    }
    let mut thief = thief;
    thief.start_into(SimInstant::ZERO, &mut sink).unwrap();
    (victim, thief, tasks)
}

/// Victim-thread request codes carried on the `u8` lane: `1..=0xF0` is
/// a steal request for that many jobs, [`REQ_REFILL`] asks the victim
/// to re-activate every task it donated (ack'd with a discarded
/// [`ShardCmd::Tick`]), [`REQ_STOP`] shuts the thread down.
const REQ_REFILL: u8 = 0xFF;
const REQ_STOP: u8 = 0xFE;

/// Runs the batch-steal loops with the victim queue held near `n_tasks`
/// and `k` jobs moved per sample, the victim scheduler served from its
/// own thread.
///
/// # Panics
///
/// Panics on engine/taskset construction failure (parameter bug) or a
/// victim thread that stalls past ten seconds (a protocol bug, not
/// host noise).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_steal_batch(n_tasks: usize, k: usize, iters: u32, warmup: u32) -> StealBatchReport {
    use yasmin_core::time::Instant as SimInstant;
    assert!(
        (2..=0xF0).contains(&k),
        "k must fit the request encoding and exercise batching"
    );
    let w1 = WorkerId::new(1);
    let step = Duration::from_micros(1);
    let stall = std::time::Duration::from_secs(10);

    let run_variant = |batched: bool| -> LatencyStats {
        let (victim, mut thief, _) = steal_pair(n_tasks);
        let (mut req_lanes, req_rx) = mailbox::<u8>(1, 16);
        let mut req_tx = req_lanes.pop().expect("one lane requested");
        let (mut grant_lanes, mut grant_rx) = mailbox::<ShardCmd>(1, 16);
        let grant_tx = grant_lanes.pop().expect("one lane requested");

        // The victim's shard loop: serve steal requests off the lane,
        // restore donated tasks on refill, exit on stop. Runs on its
        // own thread so every request/grant pair is a genuine
        // cross-thread round trip, as in the sharded runtime.
        let victim_thread = std::thread::spawn(move || {
            let mut victim = victim;
            let mut req_rx = req_rx;
            let mut grant_tx = grant_tx;
            let mut sink = ActionSink::with_capacity(64);
            let mut hints: Vec<yasmin_sched::StealHint> = Vec::with_capacity(k);
            let mut donated: Vec<TaskId> = Vec::with_capacity(k + 1);
            let mut now = SimInstant::ZERO;
            let mut idle = WallInstant::now();
            loop {
                let Some(req) = req_rx.try_recv() else {
                    assert!(idle.elapsed() < stall, "thief went quiet; victim bailing");
                    // Yield, not spin: on a loaded (or single-core) host
                    // a hard spin burns the peer's timeslice and turns
                    // every round trip into a full scheduler quantum.
                    std::thread::yield_now();
                    continue;
                };
                idle = WallInstant::now();
                now += step;
                match req {
                    REQ_STOP => break,
                    REQ_REFILL => {
                        for t in donated.drain(..) {
                            sink.clear();
                            victim.activate_into(t, now, &mut sink).unwrap();
                        }
                        grant_tx
                            .send(ShardCmd::Tick { at: now })
                            .expect("grant lane sized for the loop");
                    }
                    1 => {
                        let hint = victim.try_steal().expect("victim queue is loaded");
                        let job = victim.release_stolen(hint).expect("hint is fresh");
                        donated.push(job.task);
                        grant_tx
                            .send(ShardCmd::Stolen { job, at: now })
                            .expect("grant lane sized for the loop");
                    }
                    want => {
                        let got = victim.try_steal_batch(want as usize, &mut hints);
                        debug_assert_eq!(got, want as usize, "victim queue is loaded");
                        let mut jobs = yasmin_sched::JobBatch::new();
                        victim.release_stolen_batch(&hints, &mut jobs);
                        for j in jobs.as_slice() {
                            donated.push(j.task);
                        }
                        grant_tx
                            .send(ShardCmd::StolenBatch { jobs, at: now })
                            .expect("grant lane sized for the loop");
                    }
                }
            }
            victim
        });

        // Spin-wait for the next grant; the victim always answers.
        let recv_grant = |grant_rx: &mut MailboxReceiver<ShardCmd>| -> ShardCmd {
            let t0 = WallInstant::now();
            loop {
                if let Some(cmd) = grant_rx.try_recv() {
                    return cmd;
                }
                assert!(t0.elapsed() < stall, "victim thread stalled");
                std::thread::yield_now();
            }
        };

        let mut sink = ActionSink::with_capacity(64);
        let mut now = SimInstant::ZERO;
        let mut samples = Samples::with_capacity(iters as usize);
        for i in 0..(warmup + iters) {
            now += step;
            let t0 = WallInstant::now();
            if batched {
                req_tx
                    .send(u8::try_from(k).expect("k fits the encoding"))
                    .expect("request lane sized for the loop");
                let cmd = recv_grant(&mut grant_rx);
                sink.clear();
                thief
                    .process_into(cmd, &mut sink)
                    .expect("thief adopts the batch");
            } else {
                // The runtime keeps one outstanding request per thief,
                // so k single steals are k serialised round trips.
                for _ in 0..k {
                    req_tx.send(1).expect("request lane sized for the loop");
                    let cmd = recv_grant(&mut grant_rx);
                    sink.clear();
                    thief
                        .process_into(cmd, &mut sink)
                        .expect("thief adopts the grant");
                }
            }
            let dt = t0.elapsed();
            if i >= warmup {
                samples.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
            }
            // Untimed: retire the thief's haul, hand the tasks back.
            while let Some(r) = thief.running() {
                let job = r.job.id;
                sink.clear();
                thief
                    .on_job_completed_into(w1, job, now, &mut sink)
                    .expect("completion protocol upheld");
            }
            req_tx
                .send(REQ_REFILL)
                .expect("request lane sized for the loop");
            let _ack = recv_grant(&mut grant_rx);
        }
        req_tx
            .send(REQ_STOP)
            .expect("request lane sized for the loop");
        let victim = victim_thread.join().expect("victim thread exits cleanly");
        let rounds = u64::from(iters + warmup);
        if batched {
            assert!(thief.stats().stolen_batch >= rounds);
        } else {
            assert!(victim.stats().donated >= rounds * k as u64);
        }
        LatencyStats::from_samples(&mut samples)
    };

    let single = run_variant(false);
    let batch = run_variant(true);
    StealBatchReport {
        n: n_tasks.saturating_sub(1),
        k,
        single,
        batch,
    }
}

/// Frozen copy of the **PR 4 ready-queue layout** — the 4-ary
/// index-tracked heap with the full [`Job`] payload inline in every
/// heap entry — kept as the comparator the perf gate measures the PR 10
/// struct-of-arrays split against. Only the operations the scan bench
/// times (push/pop with full index maintenance on every sift move) are
/// reproduced; the live queue must never regress behind this layout.
mod inline_ref {
    use super::{Job, JobId};

    const D: usize = 4;
    const EMPTY: u32 = u32::MAX;

    #[derive(Clone, Copy)]
    struct Slot {
        id: JobId,
        pos: u32,
    }

    /// The inline-payload (array-of-structs) heap: each entry carries
    /// the full job next to its index back-pointer, so every sift level
    /// drags whole payloads through the cache.
    pub struct InlineQueue {
        heap: Vec<(Job, u32)>,
        index: Vec<Slot>,
        mask: usize,
    }

    impl InlineQueue {
        pub fn with_capacity(capacity: usize) -> Self {
            let slots = (capacity.max(1) * 2).next_power_of_two();
            InlineQueue {
                heap: Vec::with_capacity(capacity),
                index: vec![
                    Slot {
                        id: JobId::new(0),
                        pos: EMPTY,
                    };
                    slots
                ],
                mask: slots - 1,
            }
        }

        fn home(&self, id: JobId) -> usize {
            let h = id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h >> 32) as usize & self.mask
        }

        fn index_insert(&mut self, id: JobId, pos: u32) -> u32 {
            let mut i = self.home(id);
            while self.index[i].pos != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.index[i] = Slot { id, pos };
            i as u32
        }

        fn index_delete(&mut self, mut i: usize) {
            loop {
                self.index[i].pos = EMPTY;
                let mut j = i;
                loop {
                    j = (j + 1) & self.mask;
                    if self.index[j].pos == EMPTY {
                        return;
                    }
                    let h = self.home(self.index[j].id);
                    let stays = (j.wrapping_sub(h) & self.mask) < (j.wrapping_sub(i) & self.mask);
                    if !stays {
                        self.index[i] = self.index[j];
                        self.heap[self.index[i].pos as usize].1 = i as u32;
                        i = j;
                        break;
                    }
                }
            }
        }

        fn sift_up(&mut self, mut pos: usize) {
            let ent = self.heap[pos];
            let key = ent.0.queue_key();
            while pos > 0 {
                let parent = (pos - 1) / D;
                let pe = self.heap[parent];
                if pe.0.queue_key() <= key {
                    break;
                }
                self.heap[pos] = pe;
                self.index[pe.1 as usize].pos = pos as u32;
                pos = parent;
            }
            self.heap[pos] = ent;
            self.index[ent.1 as usize].pos = pos as u32;
        }

        fn sift_down(&mut self, mut pos: usize) {
            let ent = self.heap[pos];
            let key = ent.0.queue_key();
            let n = self.heap.len();
            loop {
                let first = pos * D + 1;
                if first >= n {
                    break;
                }
                let mut best = first;
                let mut best_key = self.heap[first].0.queue_key();
                for c in (first + 1)..(first + D).min(n) {
                    let k = self.heap[c].0.queue_key();
                    if k < best_key {
                        best = c;
                        best_key = k;
                    }
                }
                if key <= best_key {
                    break;
                }
                let ce = self.heap[best];
                self.heap[pos] = ce;
                self.index[ce.1 as usize].pos = pos as u32;
                pos = best;
            }
            self.heap[pos] = ent;
            self.index[ent.1 as usize].pos = pos as u32;
        }

        pub fn push(&mut self, job: Job) {
            let pos = self.heap.len();
            let islot = self.index_insert(job.id, pos as u32);
            self.heap.push((job, islot));
            self.sift_up(pos);
        }

        pub fn pop(&mut self) -> Option<Job> {
            if self.heap.is_empty() {
                return None;
            }
            let (job, islot) = self.heap[0];
            self.index_delete(islot as usize);
            let last = self.heap.pop().expect("non-empty");
            if !self.heap.is_empty() {
                self.heap[0] = last;
                self.index[last.1 as usize].pos = 0;
                self.sift_down(0);
            }
            Some(job)
        }

        /// The frontier walk of `ReadyQueue::scan_in_order`, verbatim,
        /// except that every key comparison reads through the full
        /// inline entry instead of the packed key array — the traffic
        /// the struct-of-arrays split removes from the batch-steal
        /// probe.
        pub fn scan_in_order(&self, frontier: &mut Vec<u32>, mut visit: impl FnMut(&Job) -> bool) {
            frontier.clear();
            if self.heap.is_empty() {
                return;
            }
            frontier.push(0);
            while !frontier.is_empty() {
                let mut mi = 0;
                for i in 1..frontier.len() {
                    if self.heap[frontier[i] as usize].0.queue_key()
                        < self.heap[frontier[mi] as usize].0.queue_key()
                    {
                        mi = i;
                    }
                }
                let pos = frontier.swap_remove(mi) as usize;
                if !visit(&self.heap[pos].0) {
                    return;
                }
                let first = pos * D + 1;
                for c in first..(first + D).min(self.heap.len()) {
                    frontier.push(c as u32);
                }
            }
        }

        pub fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

/// The queue key-scan measurement (PR 10): a steady-state churn cycle
/// — pop the most-urgent job, push it back under a fresh random
/// priority, then run the key-only ordered frontier scan the
/// batch-steal probe runs ([`ReadyQueue::scan_in_order`] over the top
/// `2 × MAX_STEAL_BATCH` jobs) — at high occupancy, on the live
/// struct-of-arrays [`ReadyQueue`] against the frozen inline-payload
/// [`inline_ref`] layout it replaced. The random re-priority makes
/// every cycle sift through a different heap path instead of
/// re-walking one cache-hot root chain; both sides consume the
/// identical priority stream and run the identical operation sequence
/// with identical index bookkeeping, so the only difference is what
/// the sift and scan loops drag through the cache — packed 24-byte
/// keys against whole `Job` payloads. Same host, same process: the
/// perf gate bounds the SoA cycle at the inline cycle plus a small
/// slack.
#[derive(Debug, Clone)]
pub struct QueueScanReport {
    /// Live queue size held throughout the measurement.
    pub n: usize,
    /// Pop + push + frontier-scan cycle on the struct-of-arrays queue.
    pub soa: LatencyStats,
    /// The same cycle on the frozen inline-payload heap.
    pub inline_ref: LatencyStats,
}

/// Runs the key-scan loops at a steady live size of `n`.
#[must_use]
pub fn run_queue_scan(n: usize, iters: u32, warmup: u32) -> QueueScanReport {
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    // Jobs the frontier scan enumerates per cycle — twice the largest
    // batch a steal exchange may ask the probe for.
    let scan_k = 2 * yasmin_sched::MAX_STEAL_BATCH;
    let mut frontier: Vec<u32> = Vec::with_capacity(scan_k * 4 + 1);

    let mut soa_ns = Samples::with_capacity(iters as usize);
    let mut q = ReadyQueue::with_capacity(n);
    let mut rng = Lcg(0x1234_5678_9ABC_DEF0);
    for id in 0..n as u64 {
        q.push(queue_job(id, rng.next() % (1 << 20)))
            .expect("sized for n");
    }
    let mut acc = 0u64;
    for i in 0..(warmup + iters) {
        let t0 = WallInstant::now();
        let j = q.pop().expect("queue stays full");
        q.push(queue_job(j.id.raw(), rng.next() % (1 << 20)))
            .expect("push back below capacity");
        let mut seen = 0usize;
        q.scan_in_order(&mut frontier, |job| {
            acc ^= job.id.raw();
            seen += 1;
            seen < scan_k
        });
        let dt = t0.elapsed();
        if i >= warmup {
            soa_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
    }
    assert_eq!(q.len(), n);
    std::hint::black_box(acc);

    let mut inline_ns = Samples::with_capacity(iters as usize);
    let mut q = inline_ref::InlineQueue::with_capacity(n);
    let mut rng = Lcg(0x1234_5678_9ABC_DEF0);
    for id in 0..n as u64 {
        q.push(queue_job(id, rng.next() % (1 << 20)));
    }
    let mut acc = 0u64;
    for i in 0..(warmup + iters) {
        let t0 = WallInstant::now();
        let j = q.pop().expect("queue stays full");
        q.push(queue_job(j.id.raw(), rng.next() % (1 << 20)));
        let mut seen = 0usize;
        q.scan_in_order(&mut frontier, |job| {
            acc ^= job.id.raw();
            seen += 1;
            seen < scan_k
        });
        let dt = t0.elapsed();
        if i >= warmup {
            inline_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
    }
    assert_eq!(q.len(), n);
    std::hint::black_box(acc);

    QueueScanReport {
        n,
        soa: LatencyStats::from_samples(&mut soa_ns),
        inline_ref: LatencyStats::from_samples(&mut inline_ns),
    }
}

/// The real-thread hand-off measurement (PR 10): a burst of short jobs
/// lands on worker 0's shard of a running [`ShardedRuntime`] while
/// worker 1 idles; the wall-clock drain time with work stealing on is
/// recorded against the same burst with stealing off (victim drains
/// alone). Real scheduler threads, real mailbox lanes, real batch
/// grants — absolute numbers are host-dependent, so this section is
/// recorded for the trajectory rather than gated.
#[derive(Debug, Clone)]
pub struct HandoffReport {
    /// Jobs in the burst.
    pub jobs: usize,
    /// Spin time each job body burns, microseconds.
    pub spin_us: u64,
    /// Wall-clock drain of the burst with stealing off, ns.
    pub local_wall_ns: u64,
    /// Wall-clock drain of the burst with stealing on, ns.
    pub steal_wall_ns: u64,
    /// Jobs migrated in the stealing run.
    pub stolen: u64,
    /// Batch grants those migrations rode.
    pub stolen_batch: u64,
}

/// Runs the hand-off burst on real threads, stealing off then on
/// (best of `tries` runs each).
///
/// # Panics
///
/// Panics on runtime construction failure or a burst that fails to
/// drain within two seconds (a scheduler bug, not host noise).
#[must_use]
pub fn run_handoff(jobs: usize, spin_us: u64, tries: u32) -> HandoffReport {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use yasmin_core::task::TaskSpec;
    use yasmin_rt::sharded::ShardedRuntimeBuilder;

    let run_once = |stealing: bool| -> (u64, u64, u64) {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let light = b
            .task_decl(
                TaskSpec::periodic("light", Duration::from_millis(5)).on_worker(WorkerId::new(1)),
            )
            .unwrap();
        let vl = b
            .version_decl(
                light,
                yasmin_core::version::VersionSpec::new("v", Duration::from_micros(50)),
            )
            .unwrap();
        let mut burst = Vec::with_capacity(jobs);
        for i in 0..jobs {
            let t = b
                .task_decl(TaskSpec::aperiodic(format!("h{i}")).on_worker(WorkerId::new(0)))
                .unwrap();
            let v = b
                .version_decl(
                    t,
                    yasmin_core::version::VersionSpec::new("v", Duration::from_millis(2)),
                )
                .unwrap();
            burst.push((t, v));
        }
        let ts = std::sync::Arc::new(b.build().unwrap());
        let config = Config::builder()
            .workers(2)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(true)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .preemption(false)
            .max_pending_jobs(jobs + 8)
            .build()
            .unwrap();
        let done = std::sync::Arc::new(AtomicUsize::new(0));
        let mut builder = ShardedRuntimeBuilder::new(ts, config)
            .work_stealing(stealing)
            .body(light, vl, |_| {});
        let spin = std::time::Duration::from_micros(spin_us);
        for &(t, v) in &burst {
            let d = std::sync::Arc::clone(&done);
            builder = builder.body(t, v, move |_| {
                let t0 = WallInstant::now();
                while t0.elapsed() < spin {
                    std::hint::spin_loop();
                }
                d.fetch_add(1, Ordering::Release);
            });
        }
        let rt = builder.build().expect("valid sharded runtime");
        // Let the scheduler threads settle before the burst lands.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let t0 = WallInstant::now();
        for &(t, _) in &burst {
            rt.activate(t).expect("activation accepted");
        }
        while done.load(Ordering::Acquire) < jobs {
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(2),
                "hand-off burst failed to drain"
            );
            // Yield the core to the scheduler/worker threads; a hard
            // spin here starves them on small or loaded hosts.
            std::thread::yield_now();
        }
        let wall = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        rt.stop();
        let report = rt.cleanup();
        (
            wall,
            report.engine_stats.stolen,
            report.engine_stats.stolen_batch,
        )
    };

    let best = |stealing: bool| -> (u64, u64, u64) {
        let mut best = run_once(stealing);
        for _ in 1..tries {
            let r = run_once(stealing);
            if r.0 < best.0 {
                best = r;
            }
        }
        best
    };
    let (local_wall_ns, _, _) = best(false);
    let (steal_wall_ns, stolen, stolen_batch) = best(true);
    HandoffReport {
        jobs,
        spin_us,
        local_wall_ns,
        steal_wall_ns,
        stolen,
        stolen_batch,
    }
}

/// The cross-shard activation measurement (PR 5): a completion whose
/// DAG successor lives on the same shard (fires locally in the same
/// engine call) against one whose successor lives on a foreign shard —
/// completion, outbox drain, and the destination shard's
/// `CrossActivate` round, end to end. Same process, host-independent
/// ratio.
#[derive(Debug, Clone)]
pub struct CrossActReport {
    /// Completion + local successor firing + dispatch, one shard.
    pub local_fire: LatencyStats,
    /// Completion + outbox drain + routed `CrossActivate` + dispatch.
    pub routed: LatencyStats,
}

fn pipeline_set(dst_worker: u16) -> std::sync::Arc<yasmin_core::graph::TaskSet> {
    use yasmin_core::task::TaskSpec;
    let mut b = yasmin_core::graph::TaskSetBuilder::new();
    let src = b
        .task_decl(TaskSpec::periodic("src", Duration::from_millis(10)).on_worker(WorkerId::new(0)))
        .unwrap();
    let dst = b
        .task_decl(TaskSpec::graph_node("dst").on_worker(WorkerId::new(dst_worker)))
        .unwrap();
    b.version_decl(
        src,
        yasmin_core::version::VersionSpec::new("s", Duration::from_millis(1)),
    )
    .unwrap();
    b.version_decl(
        dst,
        yasmin_core::version::VersionSpec::new("d", Duration::from_millis(1)),
    )
    .unwrap();
    let c = b.channel_decl("c", 1, 8);
    b.channel_connect(src, dst, c).unwrap();
    std::sync::Arc::new(b.build().unwrap())
}

/// Runs the cross-shard-activation loops.
///
/// # Panics
///
/// Panics on engine/taskset construction failure (parameter bug).
#[must_use]
pub fn run_cross_activation(iters: u32, warmup: u32) -> CrossActReport {
    use yasmin_core::time::Instant as SimInstant;
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .max_pending_jobs(64)
        .build()
        .unwrap();
    let w0 = WorkerId::new(0);
    let w1 = WorkerId::new(1);
    let tick = Duration::from_millis(10);
    let mut sink = ActionSink::with_capacity(64);

    // Local variant: both DAG nodes on worker 0's shard.
    let ts = pipeline_set(0);
    let mut shards = EngineShard::build_all(&ts, &config).expect("valid shards");
    let mut local = shards.remove(0);
    local.start_into(SimInstant::ZERO, &mut sink).unwrap();
    let mut now = SimInstant::ZERO;
    let mut local_ns = Samples::with_capacity(iters as usize);
    for i in 0..(warmup + iters) {
        let src_job = local.running().expect("src runs").job.id;
        let mid = now + tick.scale(1, 4);
        sink.clear();
        let t0 = WallInstant::now();
        local
            .on_job_completed_into(w0, src_job, mid, &mut sink)
            .expect("completion protocol upheld");
        let dt = t0.elapsed();
        if i >= warmup {
            local_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
        // Untimed: retire the successor, advance to the next period.
        let dst_job = local.running().expect("dst dispatched").job.id;
        sink.clear();
        local
            .on_job_completed_into(w0, dst_job, now + tick.scale(1, 2), &mut sink)
            .expect("completion protocol upheld");
        now += tick;
        sink.clear();
        local.on_tick_into(now, &mut sink);
    }

    // Routed variant: the successor lives on worker 1's shard.
    let ts = pipeline_set(1);
    let mut shards = EngineShard::build_all(&ts, &config).expect("valid shards");
    let mut dst_shard = shards.remove(1);
    let mut src_shard = shards.remove(0);
    src_shard.start_into(SimInstant::ZERO, &mut sink).unwrap();
    dst_shard.start_into(SimInstant::ZERO, &mut sink).unwrap();
    let mut outbox: Vec<yasmin_sched::RemoteActivation> = Vec::with_capacity(4);
    let mut now = SimInstant::ZERO;
    let mut routed_ns = Samples::with_capacity(iters as usize);
    for i in 0..(warmup + iters) {
        let src_job = src_shard.running().expect("src runs").job.id;
        let mid = now + tick.scale(1, 4);
        sink.clear();
        let t0 = WallInstant::now();
        src_shard
            .on_job_completed_into(w0, src_job, mid, &mut sink)
            .expect("completion protocol upheld");
        src_shard.drain_outbox_into(&mut outbox);
        for ra in outbox.drain(..) {
            dst_shard
                .process_into(
                    ShardCmd::CrossActivate {
                        edge: ra.edge,
                        graph_release: ra.graph_release,
                        at: mid,
                    },
                    &mut sink,
                )
                .expect("token routed to the owning shard");
        }
        let dt = t0.elapsed();
        if i >= warmup {
            routed_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
        let dst_job = dst_shard.running().expect("dst dispatched").job.id;
        sink.clear();
        dst_shard
            .on_job_completed_into(w1, dst_job, now + tick.scale(1, 2), &mut sink)
            .expect("completion protocol upheld");
        now += tick;
        sink.clear();
        src_shard.on_tick_into(now, &mut sink);
        dst_shard.on_tick_into(now, &mut sink);
    }

    CrossActReport {
        local_fire: LatencyStats::from_samples(&mut local_ns),
        routed: LatencyStats::from_samples(&mut routed_ns),
    }
}

/// The typed message-plane measurement (PR 8): endpoint and
/// scheduler-side costs of `yasmin_sched::msg`, all in one process so
/// the ratios are host-independent.
#[derive(Debug, Clone)]
pub struct MsgReport {
    /// Normal-lane `send` → `recv` round trip, endpoints only.
    pub send_recv: LatencyStats,
    /// Full PIP cycle: `send_high` + `on_high_posted_into` (boost of
    /// the pending receiver job) + `recv_high` + `on_high_drained_into`
    /// (restore).
    pub boost_cycle: LatencyStats,
    /// `send_high` + notify hook + command-lane hop + the owning
    /// shard's `MsgHigh` round, receiver on the sender's home shard.
    pub local_send: LatencyStats,
    /// Same, plus the peer-lane hop to a foreign owner — the
    /// cross-shard routing path of the sharded runtime.
    pub routed_send: LatencyStats,
}

/// Runs the message-plane loops.
///
/// # Panics
///
/// Panics on engine/taskset/channel construction failure (parameter
/// bug).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_msg(iters: u32, warmup: u32) -> MsgReport {
    use std::sync::Mutex;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::time::Instant as SimInstant;
    use yasmin_core::version::VersionSpec;
    use yasmin_sched::msg::{ChannelBuilder, MsgEvent};

    // A notify hook that feeds a mailbox lane, as both runtimes wire it.
    let feed_hook = |mut lanes: Vec<MailboxSender<MsgEvent>>| {
        let feed = Mutex::new(lanes.pop().expect("one lane requested"));
        std::sync::Arc::new(move |ev: MsgEvent| {
            feed.lock()
                .expect("notify hook never panics")
                .send(ev)
                .expect("event lane sized for the loop");
        })
    };

    // Four tasks on a 2-worker partitioned set: each shard holds a
    // `runner` occupying its worker and a receiver parked in the queue,
    // so every high post finds a pending job to boost.
    let mut b = yasmin_core::graph::TaskSetBuilder::new();
    let mut decl = |name: &str, worker: u16| {
        let t = b
            .task_decl(TaskSpec::aperiodic(name).on_worker(WorkerId::new(worker)))
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", Duration::from_millis(1)))
            .unwrap();
        t
    };
    let runner0 = decl("runner0", 0);
    let dst_local = decl("dst_local", 0);
    let runner1 = decl("runner1", 1);
    let dst_routed = decl("dst_routed", 1);
    let ts = std::sync::Arc::new(b.build().unwrap());
    let config = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .tick(Duration::from_millis(1_000))
        .max_pending_jobs(16)
        .build()
        .unwrap();
    let mut shards = EngineShard::build_all(&ts, &config).expect("valid shards");
    let mut far = shards.pop().unwrap();
    let mut home = shards.pop().unwrap();
    let mut sink = ActionSink::with_capacity(64);
    home.start_into(SimInstant::ZERO, &mut sink).unwrap();
    far.start_into(SimInstant::ZERO, &mut sink).unwrap();
    for (shard, runner, dst) in [
        (&mut home, runner0, dst_local),
        (&mut far, runner1, dst_routed),
    ] {
        shard
            .activate_into(runner, SimInstant::ZERO, &mut sink)
            .unwrap();
        shard
            .activate_into(dst, SimInstant::ZERO, &mut sink)
            .unwrap();
    }

    // --- normal lane, endpoints only ----------------------------------
    let (plain_tx, plain_rx) = ChannelBuilder::standalone("plain", dst_local)
        .capacity(8)
        .build::<u64>()
        .expect("valid channel");
    let mut send_recv_ns = Samples::with_capacity(iters as usize);
    for i in 0..(warmup + iters) {
        let t0 = WallInstant::now();
        plain_tx.send(u64::from(i)).expect("lane has room");
        let got = plain_rx.recv().expect("value just sent");
        let dt = t0.elapsed();
        assert_eq!(got, u64::from(i));
        if i >= warmup {
            send_recv_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    // --- full boost cycle on the owning shard --------------------------
    let (hot_tx, hot_rx) = ChannelBuilder::standalone("hot", dst_local)
        .capacity(8)
        .high_lane(8, Priority::HIGHEST)
        .build::<u64>()
        .expect("valid channel");
    let (lanes, mut hot_events) = mailbox::<MsgEvent>(1, 16);
    assert!(hot_tx.notify_handle().set_notify(feed_hook(lanes)));
    let mut now = SimInstant::ZERO;
    let step = Duration::from_micros(1);
    let mut boost_ns = Samples::with_capacity(iters as usize);
    let pump = |events: &mut MailboxReceiver<MsgEvent>,
                shard: &mut EngineShard,
                at: SimInstant,
                sink: &mut ActionSink| {
        while let Some(ev) = events.try_recv() {
            sink.clear();
            match ev {
                MsgEvent::HighPosted { dst, ceiling } => shard
                    .process_into(ShardCmd::MsgHigh { dst, ceiling, at }, sink)
                    .expect("receiver is live"),
                MsgEvent::HighDrained { dst } => shard
                    .process_into(ShardCmd::MsgDrained { dst, at }, sink)
                    .expect("receiver is live"),
            }
        }
    };
    for i in 0..(warmup + iters) {
        now += step;
        let t0 = WallInstant::now();
        hot_tx.send_high(u64::from(i)).expect("lane has room");
        pump(&mut hot_events, &mut home, now, &mut sink);
        let got = hot_rx.recv_high().expect("value just sent");
        pump(&mut hot_events, &mut home, now, &mut sink);
        let dt = t0.elapsed();
        assert_eq!(got, u64::from(i));
        if i >= warmup {
            boost_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
    }
    assert!(home.stats().msg_boosts >= u64::from(iters));

    // --- local vs routed post --------------------------------------
    // Local: the sender's home shard owns the receiver, so the event
    // popped off the sender lane is applied directly. Routed: the
    // receiver lives on the far shard — the home shard forwards the
    // event over a peer lane first, exactly one extra hop.
    let (far_tx, far_rx) = ChannelBuilder::standalone("far", dst_routed)
        .capacity(8)
        .high_lane(8, Priority::HIGHEST)
        .build::<u64>()
        .expect("valid channel");
    let (lanes, mut far_events) = mailbox::<MsgEvent>(1, 16);
    assert!(far_tx.notify_handle().set_notify(feed_hook(lanes)));
    let (mut peer_lanes, mut peer_rx) = mailbox::<ShardCmd>(1, 16);
    let mut peer_tx = peer_lanes.pop().expect("one lane requested");

    let mut local_ns = Samples::with_capacity(iters as usize);
    let mut routed_ns = Samples::with_capacity(iters as usize);
    for i in 0..(warmup + iters) {
        now += step;
        // Timed local post: hook → sender lane → owner's MsgHigh round.
        let t0 = WallInstant::now();
        hot_tx.send_high(u64::from(i)).expect("lane has room");
        while let Some(ev) = hot_events.try_recv() {
            if let MsgEvent::HighPosted { dst, ceiling } = ev {
                sink.clear();
                home.process_into(
                    ShardCmd::MsgHigh {
                        dst,
                        ceiling,
                        at: now,
                    },
                    &mut sink,
                )
                .expect("home shard owns dst_local");
            }
        }
        let dt = t0.elapsed();
        if i >= warmup {
            local_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
        // Untimed: drain to rebalance the lane and release the boost.
        hot_rx.recv_high().expect("value just sent");
        pump(&mut hot_events, &mut home, now, &mut sink);

        // Timed routed post: one extra peer-lane hop to the far owner.
        let t0 = WallInstant::now();
        far_tx.send_high(u64::from(i)).expect("lane has room");
        while let Some(ev) = far_events.try_recv() {
            if let MsgEvent::HighPosted { dst, ceiling } = ev {
                peer_tx
                    .send(ShardCmd::MsgHigh {
                        dst,
                        ceiling,
                        at: now,
                    })
                    .expect("peer lane sized for the loop");
            }
        }
        while let Some(cmd) = peer_rx.try_recv() {
            sink.clear();
            far.process_into(cmd, &mut sink)
                .expect("far shard owns dst_routed");
        }
        let dt = t0.elapsed();
        if i >= warmup {
            routed_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
        }
        far_rx.recv_high().expect("value just sent");
        pump(&mut far_events, &mut far, now, &mut sink);
    }
    assert!(far.stats().msg_boosts >= u64::from(iters));

    MsgReport {
        send_recv: LatencyStats::from_samples(&mut send_recv_ns),
        boost_cycle: LatencyStats::from_samples(&mut boost_ns),
        local_send: LatencyStats::from_samples(&mut local_ns),
        routed_send: LatencyStats::from_samples(&mut routed_ns),
    }
}

/// The enforcement-overhead measurement (PR 9): the steady-state
/// tick/complete loop of [`run`] with WCET-overrun enforcement and the
/// deadline-miss trip wire **off** against the identical loop with both
/// **armed** (`Config::enforce_wcet` + `Config::miss_trip`). The armed
/// side pays the per-tick overrun scan over busy workers and the
/// miss-window bookkeeping on every late retirement; the gate bounds
/// `tick_on` within +15% of `tick_off` (same host, same process).
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Parameters the loops ran with.
    pub params: HotpathParams,
    /// `on_tick` with enforcement off (the [`run`] baseline loop).
    pub tick_off: LatencyStats,
    /// `on_tick` with `enforce_wcet` + `miss_trip` armed.
    pub tick_on: LatencyStats,
    /// `on_job_completed` with enforcement off.
    pub completion_off: LatencyStats,
    /// `on_job_completed` with enforcement armed.
    pub completion_on: LatencyStats,
    /// Overruns the armed loop detected (zero when every completion
    /// lands inside its WCET window; the scan runs either way).
    pub overruns: u64,
}

fn fault_engine(p: &HotpathParams, enforced: bool) -> OnlineEngine {
    let ts = build_independent(&IndependentSetParams {
        n: p.tasks,
        total_utilisation: p.total_utilisation,
        seed: p.seed,
        ..IndependentSetParams::default()
    })
    .expect("valid taskset");
    let mut b = Config::builder()
        .workers(p.workers)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192);
    if enforced {
        // A budget the loop never exhausts: the window bookkeeping runs
        // on every miss, but the trip wire stays untripped so the two
        // loops dispatch identically and the comparison isolates the
        // detection cost.
        b = b
            .enforce_wcet(true)
            .miss_trip(Duration::from_millis(100), u32::MAX);
    }
    OnlineEngine::new(Arc::new(ts), b.build().expect("valid config")).expect("valid engine")
}

/// Runs the enforcement-overhead loops (off, then armed).
///
/// # Panics
///
/// Panics on engine/taskset construction failure (parameter bug).
#[must_use]
pub fn run_faults(p: &HotpathParams) -> FaultReport {
    let measure = |enforced: bool| -> (LatencyStats, LatencyStats, u64) {
        let mut engine = fault_engine(p, enforced);
        let mut running: Vec<Option<JobId>> = vec![None; p.workers];
        let mut sink = ActionSink::with_capacity(256);
        engine
            .start_into(Instant::ZERO, &mut sink)
            .expect("fresh engine starts");
        track_actions(&mut running, sink.as_slice());
        let tick = engine.tick_period();
        let mut now = Instant::ZERO;
        let mut tick_ns = Samples::with_capacity(p.iters as usize);
        let mut completion_ns = Samples::with_capacity(p.iters as usize);
        for i in 0..(p.warmup + p.iters) {
            let measuring = i >= p.warmup;
            let mid = now + tick.scale(1, 2);
            for w in 0..p.workers {
                if let Some(job) = running[w].take() {
                    let worker = WorkerId::new(w as u16);
                    sink.clear();
                    let t0 = WallInstant::now();
                    engine
                        .on_job_completed_into(worker, job, mid, &mut sink)
                        .expect("completion protocol upheld");
                    let dt = t0.elapsed();
                    if measuring {
                        completion_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
                    }
                    track_actions(&mut running, sink.as_slice());
                }
            }
            now += tick;
            sink.clear();
            let t0 = WallInstant::now();
            engine.on_tick_into(now, &mut sink);
            let dt = t0.elapsed();
            if measuring {
                tick_ns.record(u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX));
            }
            track_actions(&mut running, sink.as_slice());
        }
        (
            LatencyStats::from_samples(&mut tick_ns),
            LatencyStats::from_samples(&mut completion_ns),
            engine.stats().overruns,
        )
    };
    let (tick_off, completion_off, _) = measure(false);
    let (tick_on, completion_on, overruns) = measure(true);
    FaultReport {
        params: *p,
        tick_off,
        tick_on,
        completion_off,
        completion_on,
        overruns,
    }
}

/// Renders the enforcement-overhead report as `results/BENCH_PR9.json`
/// (PR 9). The CI perf gate bounds `fault.tick_on` against
/// `fault.tick_off` (same host, same process): the armed overrun scan
/// plus miss-window bookkeeping must stay within +15% of the unarmed
/// tick.
#[must_use]
pub fn render_json_pr9(f: &FaultReport) -> String {
    // Not `"bench": "fault"` — the gate's scanner would hit that value
    // string before the `"fault"` section key (the PR8 `"msg"` record
    // only dodges this because nothing braced sits between the two).
    let mut out = String::from("{\n  \"bench\": \"fault-tolerance\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"tasks\": {}, \"workers\": {}, \"total_utilisation\": {}, \"seed\": {}, \"iters\": {}}},\n",
        f.params.tasks,
        f.params.workers,
        f.params.total_utilisation,
        f.params.seed,
        f.params.iters
    ));
    out.push_str(
        "  \"note\": \"WCET-overrun enforcement overhead, both sides same host, same \
         process; 'tick_off'/'completion_off' run the steady-state loop with \
         enforcement disabled, 'tick_on'/'completion_on' run the identical loop with \
         Config::enforce_wcet and the miss trip wire armed (budget never exhausted, so \
         dispatch behaviour is identical and the delta is pure detection cost)\",\n",
    );
    out.push_str(&format!(
        "  \"fault\": {{\"tick_off\": {}, \"tick_on\": {}, \"completion_off\": {}, \
         \"completion_on\": {}}},\n",
        f.tick_off.json(),
        f.tick_on.json(),
        f.completion_off.json(),
        f.completion_on.json()
    ));
    out.push_str(&format!("  \"overruns\": {}\n}}\n", f.overruns));
    out
}

/// The dispatch-path latency recorded at the seed state (PR 1, before
/// the zero-allocation refactor) on the reference host, with the
/// default parameters. `exp_hotpath` embeds it as the `before` section
/// of `results/BENCH_PR2.json` so the improvement stays visible in the
/// committed trajectory.
#[must_use]
pub fn recorded_baseline() -> Option<HotpathReport> {
    // Median of five seed-state runs interleaved with post-optimisation
    // runs (2026-07-27, same host, same loop, legacy Vec-returning API —
    // the only API the seed engine had).
    Some(HotpathReport {
        params: HotpathParams::default(),
        tick: LatencyStats {
            p50_ns: 164,
            p99_ns: 718,
            mean_ns: 198.5,
            max_ns: 38_653,
            count: 10_000,
        },
        completion: LatencyStats {
            p50_ns: 206,
            p99_ns: 328,
            mean_ns: 221.6,
            max_ns: 59_080,
            count: 20_000,
        },
        dispatches: 22_000,
    })
}

/// The direct-path latency recorded by PR 2 (`results/BENCH_PR2.json`,
/// "after" section) on the reference host — the baseline the PR 3 CI
/// perf gate regresses against.
#[must_use]
pub fn recorded_pr2() -> Option<HotpathReport> {
    Some(HotpathReport {
        params: HotpathParams::default(),
        tick: LatencyStats {
            p50_ns: 140,
            p99_ns: 646,
            mean_ns: 160.9,
            max_ns: 18_688,
            count: 10_000,
        },
        completion: LatencyStats {
            p50_ns: 190,
            p99_ns: 294,
            mean_ns: 201.1,
            max_ns: 44_803,
            count: 20_000,
        },
        dispatches: 22_000,
    })
}

/// The direct-path latency recorded by PR 3 (`results/BENCH_PR3.json`,
/// "after" section) on the reference host — together with
/// [`recorded_pr2`] it forms the *best recorded baseline* the PR 4 CI
/// perf gate regresses against (per entry point, the better of the
/// two).
#[must_use]
pub fn recorded_pr3() -> Option<HotpathReport> {
    Some(HotpathReport {
        params: HotpathParams::default(),
        tick: LatencyStats {
            p50_ns: 160,
            p99_ns: 675,
            mean_ns: 164.9,
            max_ns: 11_017,
            count: 10_000,
        },
        completion: LatencyStats {
            p50_ns: 188,
            p99_ns: 251,
            mean_ns: 196.6,
            max_ns: 28_014,
            count: 20_000,
        },
        dispatches: 22_000,
    })
}

/// The direct-path latency recorded by PR 4 (`results/BENCH_PR4.json`,
/// "after" section) on the reference host — with [`recorded_pr2`] and
/// [`recorded_pr3`] it forms the *best recorded baseline* the PR 5 CI
/// perf gate regresses against (per entry point, the best of the
/// three).
#[must_use]
pub fn recorded_pr4() -> Option<HotpathReport> {
    Some(HotpathReport {
        params: HotpathParams::default(),
        tick: LatencyStats {
            p50_ns: 171,
            p99_ns: 652,
            mean_ns: 187.2,
            max_ns: 17_767,
            count: 10_000,
        },
        completion: LatencyStats {
            p50_ns: 235,
            p99_ns: 349,
            mean_ns: 247.2,
            max_ns: 28_968,
            count: 20_000,
        },
        dispatches: 22_000,
    })
}

/// Renders the PR 5 record: everything the PR 4 record carried, plus
/// the **steal** section (local completion-pop dispatch vs the full
/// steal cycle) and the **cross-activation** section (same-shard DAG
/// firing vs outbox-routed `CrossActivate`), alongside the recorded
/// PR 2/3/4 baselines. The CI perf gate compares the "after" p50
/// medians against the best recorded baseline per entry point and
/// bounds the same-host ratios (mailbox overhead, remove-vs-pop,
/// batched-vs-sequential, steal ≤ 2× local pop, routed ≤ 3× local
/// fire).
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn render_json_pr5(
    direct: &HotpathReport,
    sharded: &HotpathReport,
    remove_heavy: &RemoveHeavyReport,
    burst: &BurstReport,
    steal: &StealReport,
    crossact: &CrossActReport,
    pr2: Option<&HotpathReport>,
    pr3: Option<&HotpathReport>,
    pr4: Option<&HotpathReport>,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"hotpath\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"tasks\": {}, \"workers\": {}, \"total_utilisation\": {}, \"seed\": {}, \"iters\": {}}},\n",
        direct.params.tasks,
        direct.params.workers,
        direct.params.total_utilisation,
        direct.params.seed,
        direct.params.iters
    ));
    out.push_str(
        "  \"note\": \"'pr2_baseline'/'pr3_baseline'/'pr4_baseline' are the recorded \
         reference-host direct-path latencies; 'after' is the same loop on this host \
         (best of three runs by p50 sum); 'mailbox_feed' times the sharded path end to \
         end; 'remove_heavy' compares remove-then-pop against pop alone on a full \
         queue; 'burst' compares batched against sequential completion retirement; \
         'steal' compares the full work-stealing cycle (probe + detach + adopt) \
         against a local completion-pop dispatch on the same loaded shard; \
         'cross_activation' compares a same-shard DAG successor firing against the \
         outbox-routed cross-shard path (all ratios same host, same process)\",\n",
    );
    if let Some(b) = pr2 {
        out.push_str(&format!(
            "  \"pr2_baseline\": {{\"on_tick\": {}, \"on_job_completed\": {}}},\n",
            b.tick.json(),
            b.completion.json()
        ));
    }
    if let Some(b) = pr3 {
        out.push_str(&format!(
            "  \"pr3_baseline\": {{\"on_tick\": {}, \"on_job_completed\": {}}},\n",
            b.tick.json(),
            b.completion.json()
        ));
    }
    if let Some(b) = pr4 {
        out.push_str(&format!(
            "  \"pr4_baseline\": {{\"on_tick\": {}, \"on_job_completed\": {}}},\n",
            b.tick.json(),
            b.completion.json()
        ));
    }
    out.push_str(&format!(
        "  \"after\": {{\"on_tick\": {}, \"on_job_completed\": {}}},\n",
        direct.tick.json(),
        direct.completion.json()
    ));
    out.push_str(&format!(
        "  \"mailbox_feed\": {{\"on_tick\": {}, \"on_job_completed\": {}, \"dispatches\": {}}},\n",
        sharded.tick.json(),
        sharded.completion.json(),
        sharded.dispatches
    ));
    out.push_str(&format!(
        "  \"remove_heavy\": {{\"pop\": {}, \"remove_then_pop\": {}, \"n\": {}}},\n",
        remove_heavy.pop.json(),
        remove_heavy.remove_then_pop.json(),
        remove_heavy.n
    ));
    out.push_str(&format!(
        "  \"burst\": {{\"sequential\": {}, \"batched\": {}, \"workers\": {}}},\n",
        burst.sequential.json(),
        burst.batched.json(),
        burst.workers
    ));
    out.push_str(&format!(
        "  \"steal\": {{\"local_pop\": {}, \"steal_cycle\": {}, \"n\": {}}},\n",
        steal.local_pop.json(),
        steal.steal_cycle.json(),
        steal.n
    ));
    out.push_str(&format!(
        "  \"cross_activation\": {{\"local_fire\": {}, \"routed\": {}}},\n",
        crossact.local_fire.json(),
        crossact.routed.json()
    ));
    out.push_str(&format!("  \"dispatches\": {}\n}}\n", direct.dispatches));
    out
}

/// Renders the message-plane report as `results/BENCH_PR8.json` (PR 8).
/// The CI perf gate bounds `msg.routed_send` against `msg.local_send`
/// (same host, same process): the cross-shard hop must stay within 3×
/// of the home-shard post.
#[must_use]
pub fn render_json_pr8(msg: &MsgReport) -> String {
    let mut out = String::from("{\n  \"bench\": \"msg\",\n");
    out.push_str(
        "  \"note\": \"typed message plane (yasmin_sched::msg), all sections same host, \
         same process; 'send_recv' is the normal-lane endpoint round trip; \
         'boost_cycle' is send_high + the owning shard's boost round + recv_high + \
         the restore round; 'local_send' is send_high + notify hook + sender-lane \
         pop + the owning shard's MsgHigh round with the receiver on the sender's \
         home shard; 'routed_send' adds the peer-lane hop to a foreign owner\",\n",
    );
    out.push_str(&format!(
        "  \"msg\": {{\"send_recv\": {}, \"boost_cycle\": {}, \"local_send\": {}, \
         \"routed_send\": {}}}\n}}\n",
        msg.send_recv.json(),
        msg.boost_cycle.json(),
        msg.local_send.json(),
        msg.routed_send.json()
    ));
    out
}

/// Renders the PR 10 record — one file carrying every section the CI
/// perf gate reads: the PR 5 sections (`after`, `mailbox_feed`,
/// `remove_heavy`, `burst`, `steal`, `cross_activation`), the PR 8
/// message-plane and PR 9 enforcement sections (previously separate
/// files, now regenerated together so every same-host ratio comes from
/// one process on one host), and the three PR 10 sections:
/// `steal_batch` (k single hand-offs vs one batched exchange),
/// `queue_scan` (SoA key sift vs the frozen inline-payload layout) and
/// `handoff` (real-thread drain of an imbalanced burst, recorded but
/// not gated). The cross-file gate compares `after` against the
/// committed `BENCH_PR2/3/4/5.json` baselines.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn render_json_pr10(
    direct: &HotpathReport,
    sharded: &HotpathReport,
    remove_heavy: &RemoveHeavyReport,
    burst: &BurstReport,
    steal: &StealReport,
    crossact: &CrossActReport,
    msg: &MsgReport,
    faults: &FaultReport,
    steal_batch: &StealBatchReport,
    queue_scan: &QueueScanReport,
    handoff: &HandoffReport,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"hotpath\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"tasks\": {}, \"workers\": {}, \"total_utilisation\": {}, \"seed\": {}, \"iters\": {}}},\n",
        direct.params.tasks,
        direct.params.workers,
        direct.params.total_utilisation,
        direct.params.seed,
        direct.params.iters
    ));
    out.push_str(
        "  \"note\": \"'after' is the direct dispatch path on this host (best of three \
         runs by p50 sum; the cross-file gate compares it against the committed \
         BENCH_PR2/PR3/PR4/PR5 records); every other section is a same-host, \
         same-process ratio. 'steal_batch' compares k=8 single-steal protocol rounds \
         (request hop + probe + detach + grant hop + adoption, per job) against one \
         batched exchange moving the same 8 jobs; 'queue_scan' compares a pop+push \
         sift cycle at n=8192 on the struct-of-arrays ReadyQueue against the frozen \
         inline-payload PR 4 layout; 'handoff' drains a short-job burst on real \
         ShardedRuntime threads with stealing off vs on (recorded, not gated)\",\n",
    );
    out.push_str(&format!(
        "  \"after\": {{\"on_tick\": {}, \"on_job_completed\": {}}},\n",
        direct.tick.json(),
        direct.completion.json()
    ));
    out.push_str(&format!(
        "  \"mailbox_feed\": {{\"on_tick\": {}, \"on_job_completed\": {}, \"dispatches\": {}}},\n",
        sharded.tick.json(),
        sharded.completion.json(),
        sharded.dispatches
    ));
    out.push_str(&format!(
        "  \"remove_heavy\": {{\"pop\": {}, \"remove_then_pop\": {}, \"n\": {}}},\n",
        remove_heavy.pop.json(),
        remove_heavy.remove_then_pop.json(),
        remove_heavy.n
    ));
    out.push_str(&format!(
        "  \"burst\": {{\"sequential\": {}, \"batched\": {}, \"workers\": {}}},\n",
        burst.sequential.json(),
        burst.batched.json(),
        burst.workers
    ));
    out.push_str(&format!(
        "  \"steal\": {{\"local_pop\": {}, \"steal_cycle\": {}, \"n\": {}}},\n",
        steal.local_pop.json(),
        steal.steal_cycle.json(),
        steal.n
    ));
    out.push_str(&format!(
        "  \"cross_activation\": {{\"local_fire\": {}, \"routed\": {}}},\n",
        crossact.local_fire.json(),
        crossact.routed.json()
    ));
    out.push_str(&format!(
        "  \"msg\": {{\"send_recv\": {}, \"boost_cycle\": {}, \"local_send\": {}, \
         \"routed_send\": {}}},\n",
        msg.send_recv.json(),
        msg.boost_cycle.json(),
        msg.local_send.json(),
        msg.routed_send.json()
    ));
    out.push_str(&format!(
        "  \"fault\": {{\"tick_off\": {}, \"tick_on\": {}, \"completion_off\": {}, \
         \"completion_on\": {}}},\n",
        faults.tick_off.json(),
        faults.tick_on.json(),
        faults.completion_off.json(),
        faults.completion_on.json()
    ));
    out.push_str(&format!(
        "  \"steal_batch\": {{\"single\": {}, \"batch\": {}, \"n\": {}, \"k\": {}}},\n",
        steal_batch.single.json(),
        steal_batch.batch.json(),
        steal_batch.n,
        steal_batch.k
    ));
    out.push_str(&format!(
        "  \"queue_scan\": {{\"soa\": {}, \"inline_ref\": {}, \"n\": {}}},\n",
        queue_scan.soa.json(),
        queue_scan.inline_ref.json(),
        queue_scan.n
    ));
    out.push_str(&format!(
        "  \"handoff\": {{\"jobs\": {}, \"spin_us\": {}, \"local_wall_ns\": {}, \
         \"steal_wall_ns\": {}, \"stolen\": {}, \"stolen_batch\": {}}},\n",
        handoff.jobs,
        handoff.spin_us,
        handoff.local_wall_ns,
        handoff.steal_wall_ns,
        handoff.stolen,
        handoff.stolen_batch
    ));
    out.push_str(&format!("  \"dispatches\": {}\n}}\n", direct.dispatches));
    out
}

/// Renders the report (plus an optional recorded baseline) as JSON.
#[must_use]
pub fn render_json(report: &HotpathReport, baseline: Option<&HotpathReport>) -> String {
    let mut out = String::from("{\n  \"bench\": \"hotpath\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"tasks\": {}, \"workers\": {}, \"total_utilisation\": {}, \"seed\": {}, \"iters\": {}}},\n",
        report.params.tasks,
        report.params.workers,
        report.params.total_utilisation,
        report.params.seed,
        report.params.iters
    ));
    if let Some(b) = baseline {
        // The baseline is pinned to the reference host; flag that in the
        // record so a JSON regenerated on different hardware is not
        // misread as an apples-to-apples regression.
        out.push_str(
            "  \"note\": \"'before' is the recorded reference-host baseline (PR 2 seed \
             state); 'after' reflects the host this file was regenerated on\",\n",
        );
        out.push_str(&format!(
            "  \"before\": {{\"on_tick\": {}, \"on_job_completed\": {}}},\n",
            b.tick.json(),
            b.completion.json()
        ));
    }
    out.push_str(&format!(
        "  \"after\": {{\"on_tick\": {}, \"on_job_completed\": {}}},\n",
        report.tick.json(),
        report.completion.json()
    ));
    out.push_str(&format!("  \"dispatches\": {}\n}}\n", report.dispatches));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_loop_runs_and_reports() {
        let p = HotpathParams {
            tasks: 8,
            iters: 50,
            warmup: 10,
            ..HotpathParams::default()
        };
        let r = run(&p);
        assert_eq!(r.tick.count, 50);
        assert!(r.completion.count > 0);
        assert!(r.dispatches > 0);
        let json = render_json(&r, None);
        assert!(json.contains("\"after\""));
        assert!(!json.contains("\"before\""));
    }

    #[test]
    fn sharded_mailbox_loop_runs_and_reports() {
        let p = HotpathParams {
            tasks: 8,
            iters: 50,
            warmup: 10,
            ..HotpathParams::default()
        };
        let sharded = run_sharded(&p);
        // One tick command per shard per iteration.
        assert_eq!(sharded.tick.count, 50 * p.workers);
        assert!(sharded.completion.count > 0);
        assert!(sharded.dispatches > 0);
    }

    #[test]
    fn remove_heavy_loop_runs_and_reports() {
        let r = run_remove_heavy(64, 200, 50);
        assert_eq!(r.n, 64);
        assert_eq!(r.pop.count, 200);
        assert_eq!(r.remove_then_pop.count, 200);
        assert!(r.pop.p50_ns > 0 || r.pop.max_ns > 0);
    }

    #[test]
    fn burst_loop_runs_and_reports() {
        let p = HotpathParams {
            tasks: 16,
            iters: 50,
            warmup: 10,
            ..HotpathParams::default()
        };
        let r = run_burst(&p, 4);
        assert_eq!(r.workers, 4);
        assert_eq!(r.batched.count, 50);
        assert_eq!(r.sequential.count, 50);
    }

    #[test]
    fn steal_loop_runs_and_reports() {
        let r = run_steal(16, 50, 10);
        assert_eq!(r.n, 15);
        assert_eq!(r.local_pop.count, 50);
        assert_eq!(r.steal_cycle.count, 50);
    }

    #[test]
    fn cross_activation_loop_runs_and_reports() {
        let r = run_cross_activation(50, 10);
        assert_eq!(r.local_fire.count, 50);
        assert_eq!(r.routed.count, 50);
    }

    #[test]
    fn fault_loop_runs_and_reports() {
        let p = HotpathParams {
            tasks: 8,
            iters: 50,
            warmup: 10,
            ..HotpathParams::default()
        };
        let r = run_faults(&p);
        assert_eq!(r.tick_off.count, 50);
        assert_eq!(r.tick_on.count, 50);
        assert!(r.completion_on.count > 0);
        let json = render_json_pr9(&r);
        assert!(crate::compare::extract_p50(&json, "fault", "tick_on").is_some());
        assert!(crate::compare::extract_p50(&json, "fault", "tick_off").is_some());
        assert!(crate::compare::gate_ratio(
            &json,
            ("fault", "tick_on"),
            ("fault", "tick_off"),
            10_000
        )
        .is_ok());
    }

    #[test]
    fn steal_batch_loop_runs_and_reports() {
        let r = run_steal_batch(16, 4, 30, 5);
        assert_eq!(r.n, 15);
        assert_eq!(r.k, 4);
        assert_eq!(r.single.count, 30);
        assert_eq!(r.batch.count, 30);
    }

    #[test]
    fn queue_scan_loop_runs_and_reports() {
        let r = run_queue_scan(256, 100, 20);
        assert_eq!(r.n, 256);
        assert_eq!(r.soa.count, 100);
        assert_eq!(r.inline_ref.count, 100);
    }

    #[test]
    fn inline_ref_heap_orders_like_the_live_queue() {
        // The frozen comparator must implement the same ordering
        // contract, or the scan bench compares different work.
        let mut soa = ReadyQueue::with_capacity(64);
        let mut aos = inline_ref::InlineQueue::with_capacity(64);
        let mut state = 0xDEAD_BEEFu64;
        for id in 0..64u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = queue_job(id, state >> 40);
            soa.push(j).unwrap();
            aos.push(j);
        }
        for _ in 0..64 {
            assert_eq!(soa.pop(), aos.pop());
        }
        assert!(aos.pop().is_none());
    }

    #[test]
    fn handoff_burst_drains_on_real_threads() {
        let r = run_handoff(6, 50, 1);
        assert_eq!(r.jobs, 6);
        assert!(r.local_wall_ns > 0);
        assert!(r.steal_wall_ns > 0);
        assert!(r.stolen >= 1, "the idle shard must steal ({r:?})");
        assert!(r.stolen_batch >= 1);
    }

    #[test]
    fn pr10_json_has_every_section() {
        let p = HotpathParams {
            tasks: 8,
            iters: 20,
            warmup: 5,
            ..HotpathParams::default()
        };
        let direct = run(&p);
        let sharded = run_sharded(&p);
        let rh = run_remove_heavy(32, 50, 10);
        let burst = run_burst(&p, 2);
        let steal = run_steal(16, 20, 5);
        let crossact = run_cross_activation(20, 5);
        let msg = run_msg(20, 5);
        let faults = run_faults(&p);
        let sb = run_steal_batch(16, 4, 20, 5);
        let qs = run_queue_scan(128, 50, 10);
        let handoff = HandoffReport {
            jobs: 6,
            spin_us: 50,
            local_wall_ns: 1,
            steal_wall_ns: 1,
            stolen: 1,
            stolen_batch: 1,
        };
        let json = render_json_pr10(
            &direct, &sharded, &rh, &burst, &steal, &crossact, &msg, &faults, &sb, &qs, &handoff,
        );
        for section in [
            "\"after\"",
            "\"mailbox_feed\"",
            "\"remove_heavy\"",
            "\"burst\"",
            "\"steal\"",
            "\"cross_activation\"",
            "\"msg\"",
            "\"fault\"",
            "\"steal_batch\"",
            "\"queue_scan\"",
            "\"handoff\"",
        ] {
            assert!(json.contains(section), "missing {section}: {json}");
        }
        assert!(crate::compare::extract_p50(&json, "steal_batch", "single").is_some());
        assert!(crate::compare::extract_p50(&json, "steal_batch", "batch").is_some());
        assert!(crate::compare::extract_p50(&json, "queue_scan", "soa").is_some());
        assert!(crate::compare::extract_p50(&json, "queue_scan", "inline_ref").is_some());
        assert!(crate::compare::extract_p50(&json, "fault", "tick_on").is_some());
        assert!(crate::compare::extract_p50(&json, "msg", "routed_send").is_some());
    }

    #[test]
    fn pr5_json_has_every_section() {
        let p = HotpathParams {
            tasks: 8,
            iters: 20,
            warmup: 5,
            ..HotpathParams::default()
        };
        let direct = run(&p);
        let sharded = run_sharded(&p);
        let rh = run_remove_heavy(32, 50, 10);
        let burst = run_burst(&p, 2);
        let steal = run_steal(16, 20, 5);
        let crossact = run_cross_activation(20, 5);
        let json = render_json_pr5(
            &direct,
            &sharded,
            &rh,
            &burst,
            &steal,
            &crossact,
            recorded_pr2().as_ref(),
            recorded_pr3().as_ref(),
            recorded_pr4().as_ref(),
        );
        for section in [
            "\"pr2_baseline\"",
            "\"pr3_baseline\"",
            "\"pr4_baseline\"",
            "\"after\"",
            "\"mailbox_feed\"",
            "\"remove_heavy\"",
            "\"burst\"",
            "\"steal\"",
            "\"cross_activation\"",
        ] {
            assert!(json.contains(section), "missing {section}: {json}");
        }
        assert!(crate::compare::extract_p50(&json, "steal", "steal_cycle").is_some());
        assert!(crate::compare::extract_p50(&json, "cross_activation", "routed").is_some());
    }
}
