//! Regenerates **Figure 2**: scheduling overhead of YASMIN vs the
//! Mollison & Anderson userspace G-EDF library, by task count (2a) and by
//! utilisation (2b).
//!
//! Usage: `cargo run -p yasmin-bench --release --bin exp_fig2 [--quick]`

use yasmin_bench::fig2::{by_task_count, by_utilisation, render, run_cells, Fig2Params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        Fig2Params::quick()
    } else {
        Fig2Params::default()
    };
    eprintln!(
        "fig2: sweeping {} task counts x {} core counts x {} utilisations x {} seeds…",
        params.task_counts.len(),
        params.cores.len(),
        params.utilisations.len(),
        params.seeds
    );
    let cells = run_cells(&params);

    let rows_a = by_task_count(&cells);
    let rows_b = by_utilisation(&cells);

    println!("## Figure 2a — scheduling overhead by number of tasks\n");
    let table_a = render(&rows_a, "tasks");
    println!("{table_a}");
    println!("## Figure 2b — scheduling overhead by total utilisation (x100)\n");
    let table_b = render(&rows_b, "U*100");
    println!("{table_b}");
    println!(
        "Paper shape check: YASMIN shows lower average overhead and flatter\n\
         scaling in the task count than the baseline; its observed maximum is\n\
         high relative to its own average (as the paper concedes)."
    );

    yasmin_bench::write_result("fig2a.md", &table_a);
    yasmin_bench::write_result("fig2b.md", &table_b);

    let mut csv =
        String::from("figure,cores,key,yasmin_avg_us,yasmin_max_us,ma_avg_us,ma_max_us\n");
    for r in &rows_a {
        csv.push_str(&format!(
            "2a,{},{},{:.3},{:.3},{:.3},{:.3}\n",
            r.cores, r.key, r.yasmin_avg_us, r.yasmin_max_us, r.ma_avg_us, r.ma_max_us
        ));
    }
    for r in &rows_b {
        csv.push_str(&format!(
            "2b,{},{},{:.3},{:.3},{:.3},{:.3}\n",
            r.cores, r.key, r.yasmin_avg_us, r.yasmin_max_us, r.ma_avg_us, r.ma_max_us
        ));
    }
    yasmin_bench::write_result("fig2.csv", &csv);
}
