//! Dispatch hot-path latency experiment: regenerates every section the
//! CI perf gate reads, in one process, into `results/BENCH_PR10.json`.
//!
//! Sections: the steady-state tick/complete loop against the
//! single-owner engine (`after` — comparable 1:1 with the committed
//! PR 2/3/4/5 records) and against the sharded engine fed through the
//! lock-free command mailbox (`mailbox_feed`); the **remove-heavy**
//! queue loop and the **bursty-completion** loop (PR 4); the **steal**
//! loop and the **cross-activation** loop (PR 5); the message-plane
//! loop (PR 8) and the enforcement-overhead loop (PR 9), both folded
//! into this file so every same-host ratio the gate checks comes from
//! one process on one host; and the three PR 10 loops — **steal_batch**
//! (eight single-steal protocol rounds against one batched exchange
//! moving the same eight jobs), **queue_scan** (a pop+push sift cycle
//! at n = 8192 on the struct-of-arrays `ReadyQueue` against the frozen
//! inline-payload PR 4 layout) and **handoff** (a short-job burst
//! drained on real `ShardedRuntime` threads, stealing off vs on).
//!
//! The committed `BENCH_PR5.json` / `BENCH_PR8.json` / `BENCH_PR9.json`
//! are historical records now: this binary no longer rewrites them, and
//! the gate reads its same-host ratios from `BENCH_PR10.json` alone.
//!
//! Each engine loop runs three times and the run with the lowest p50
//! sum is kept: the per-run medians are stable, but host noise (other
//! tenants, frequency drift) shifts whole runs, and the minimum is the
//! standard robust estimator for "what the code costs when the host is
//! quiet".

use yasmin_bench::hotpath::{self, HotpathParams, HotpathReport};

fn best_of(n: u32, mut run: impl FnMut() -> HotpathReport) -> HotpathReport {
    let score = |r: &HotpathReport| r.tick.p50_ns + r.completion.p50_ns;
    let mut best = run();
    for _ in 1..n {
        let r = run();
        if score(&r) < score(&best) {
            best = r;
        }
    }
    best
}

const REMOVE_HEAVY_N: usize = 1024;
const BURST_WORKERS: usize = 8;
const STEAL_N: usize = 256;
const STEAL_BATCH_N: usize = 64;
const STEAL_BATCH_K: usize = 8;
const QUEUE_SCAN_N: usize = 8192;
const HANDOFF_JOBS: usize = 32;
const HANDOFF_SPIN_US: u64 = 200;

fn main() {
    let p = HotpathParams::default();
    eprintln!(
        "hotpath: {} tasks, {} workers, {} iters (+{} warm-up), best of 3 runs",
        p.tasks, p.workers, p.iters, p.warmup
    );
    let direct = best_of(3, || hotpath::run(&p));
    eprintln!("hotpath: direct path done, running mailbox-fed sharded path");
    let sharded = best_of(3, || hotpath::run_sharded(&p));
    eprintln!("hotpath: sharded path done, running remove-heavy queue loop (n = {REMOVE_HEAVY_N})");
    let remove_heavy = hotpath::run_remove_heavy(REMOVE_HEAVY_N, p.iters, p.warmup);
    eprintln!(
        "hotpath: remove-heavy done, running bursty-completion loop ({BURST_WORKERS} workers)"
    );
    let burst = hotpath::run_burst(&p, BURST_WORKERS);
    eprintln!("hotpath: burst done, running steal loop (victim queue ~{STEAL_N})");
    let steal = hotpath::run_steal(STEAL_N, p.iters, p.warmup);
    eprintln!("hotpath: steal done, running cross-activation loop");
    let crossact = hotpath::run_cross_activation(p.iters, p.warmup);
    eprintln!("hotpath: cross-activation done, running message-plane loop");
    let msg = hotpath::run_msg(p.iters, p.warmup);
    eprintln!("hotpath: message plane done, running enforcement-overhead loop");
    let faults = {
        let score = |r: &yasmin_bench::hotpath::FaultReport| r.tick_off.p50_ns + r.tick_on.p50_ns;
        let mut best = hotpath::run_faults(&p);
        for _ in 1..3 {
            let r = hotpath::run_faults(&p);
            if score(&r) < score(&best) {
                best = r;
            }
        }
        best
    };
    eprintln!(
        "hotpath: enforcement done, running batch-steal loop \
         (victim queue ~{STEAL_BATCH_N}, k = {STEAL_BATCH_K})"
    );
    let steal_batch = hotpath::run_steal_batch(STEAL_BATCH_N, STEAL_BATCH_K, p.iters, p.warmup);
    eprintln!("hotpath: batch steal done, running queue key-scan loop (n = {QUEUE_SCAN_N})");
    let queue_scan = hotpath::run_queue_scan(QUEUE_SCAN_N, p.iters, p.warmup);
    eprintln!(
        "hotpath: key scan done, running real-thread hand-off burst \
         ({HANDOFF_JOBS} jobs x {HANDOFF_SPIN_US}us)"
    );
    let handoff = hotpath::run_handoff(HANDOFF_JOBS, HANDOFF_SPIN_US, 3);
    let json = hotpath::render_json_pr10(
        &direct,
        &sharded,
        &remove_heavy,
        &burst,
        &steal,
        &crossact,
        &msg,
        &faults,
        &steal_batch,
        &queue_scan,
        &handoff,
    );
    println!("{json}");
    yasmin_bench::write_result("BENCH_PR10.json", &json);
    eprintln!("wrote results/BENCH_PR10.json");
}
