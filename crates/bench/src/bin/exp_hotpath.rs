//! Dispatch hot-path latency experiment: runs the steady-state
//! tick/complete loop of [`yasmin_bench::hotpath`] against the
//! single-owner engine (comparable 1:1 with the PR 2/3/4 records) and
//! against the sharded engine fed through the lock-free command
//! mailbox, the two PR 4 sections — a **remove-heavy** queue loop and a
//! **bursty-completion** loop — plus the two PR 5 sections: the
//! **steal** loop (the full work-stealing cycle — probe, O(log n)
//! detach, thief adoption — against a local completion-pop dispatch on
//! the same loaded shard) and the **cross-activation** loop (same-shard
//! DAG successor firing against the outbox-routed `CrossActivate`
//! path). Writes `results/BENCH_PR5.json` with all of them, alongside
//! the recorded PR 2, PR 3 and PR 4 baselines.
//!
//! Each engine loop runs three times and the run with the lowest p50
//! sum is kept: the per-run medians are stable, but host noise (other
//! tenants, frequency drift) shifts whole runs, and the minimum is the
//! standard robust estimator for "what the code costs when the host is
//! quiet".
//!
//! The CI perf gate (`perf_gate`) compares this file's `after` medians
//! against the **best** recorded baseline per entry point
//! (`BENCH_PR2.json` / `BENCH_PR3.json` / `BENCH_PR4.json`) and bounds
//! the same-host ratios: mailbox-feed overhead, remove-vs-pop,
//! batched-vs-sequential, steal-vs-local-pop, routed-vs-local-fire,
//! plus the message-plane routed-send-vs-local-send ratio recorded in
//! `BENCH_PR8.json`.

use yasmin_bench::hotpath::{self, HotpathParams, HotpathReport};

fn best_of(n: u32, mut run: impl FnMut() -> HotpathReport) -> HotpathReport {
    let score = |r: &HotpathReport| r.tick.p50_ns + r.completion.p50_ns;
    let mut best = run();
    for _ in 1..n {
        let r = run();
        if score(&r) < score(&best) {
            best = r;
        }
    }
    best
}

const REMOVE_HEAVY_N: usize = 1024;
const BURST_WORKERS: usize = 8;
const STEAL_N: usize = 256;

fn main() {
    let p = HotpathParams::default();
    eprintln!(
        "hotpath: {} tasks, {} workers, {} iters (+{} warm-up), best of 3 runs",
        p.tasks, p.workers, p.iters, p.warmup
    );
    let direct = best_of(3, || hotpath::run(&p));
    eprintln!("hotpath: direct path done, running mailbox-fed sharded path");
    let sharded = best_of(3, || hotpath::run_sharded(&p));
    eprintln!("hotpath: sharded path done, running remove-heavy queue loop (n = {REMOVE_HEAVY_N})");
    let remove_heavy = hotpath::run_remove_heavy(REMOVE_HEAVY_N, p.iters, p.warmup);
    eprintln!(
        "hotpath: remove-heavy done, running bursty-completion loop ({BURST_WORKERS} workers)"
    );
    let burst = hotpath::run_burst(&p, BURST_WORKERS);
    eprintln!("hotpath: burst done, running steal loop (victim queue ~{STEAL_N})");
    let steal = hotpath::run_steal(STEAL_N, p.iters, p.warmup);
    eprintln!("hotpath: steal done, running cross-activation loop");
    let crossact = hotpath::run_cross_activation(p.iters, p.warmup);
    eprintln!("hotpath: cross-activation done, running message-plane loop");
    let msg = hotpath::run_msg(p.iters, p.warmup);
    eprintln!("hotpath: message plane done, running enforcement-overhead loop");
    let faults = {
        let score = |r: &yasmin_bench::hotpath::FaultReport| r.tick_off.p50_ns + r.tick_on.p50_ns;
        let mut best = hotpath::run_faults(&p);
        for _ in 1..3 {
            let r = hotpath::run_faults(&p);
            if score(&r) < score(&best) {
                best = r;
            }
        }
        best
    };
    let json = hotpath::render_json_pr5(
        &direct,
        &sharded,
        &remove_heavy,
        &burst,
        &steal,
        &crossact,
        hotpath::recorded_pr2().as_ref(),
        hotpath::recorded_pr3().as_ref(),
        hotpath::recorded_pr4().as_ref(),
    );
    println!("{json}");
    yasmin_bench::write_result("BENCH_PR5.json", &json);
    eprintln!("wrote results/BENCH_PR5.json");
    let json = hotpath::render_json_pr8(&msg);
    println!("{json}");
    yasmin_bench::write_result("BENCH_PR8.json", &json);
    eprintln!("wrote results/BENCH_PR8.json");
    let json = hotpath::render_json_pr9(&faults);
    println!("{json}");
    yasmin_bench::write_result("BENCH_PR9.json", &json);
    eprintln!("wrote results/BENCH_PR9.json");
}
