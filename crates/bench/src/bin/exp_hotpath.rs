//! Dispatch hot-path latency experiment: runs the steady-state
//! tick/complete loop of [`yasmin_bench::hotpath`] and writes
//! `results/BENCH_PR2.json` with before/after p50/p99 per entry point.
//!
//! The "before" section is the latency recorded on the pre-optimisation
//! engine (PR 1 seed state, same host class); regenerate the "after"
//! section with `cargo run --release -p yasmin-bench --bin exp_hotpath`.

use yasmin_bench::hotpath::{self, HotpathParams};

fn main() {
    let p = HotpathParams::default();
    eprintln!(
        "hotpath: {} tasks, {} workers, {} iters (+{} warm-up)",
        p.tasks, p.workers, p.iters, p.warmup
    );
    let report = hotpath::run(&p);
    let json = hotpath::render_json(&report, hotpath::recorded_baseline().as_ref());
    println!("{json}");
    yasmin_bench::write_result("BENCH_PR2.json", &json);
    eprintln!("wrote results/BENCH_PR2.json");
}
