//! Dispatch hot-path latency experiment: runs the steady-state
//! tick/complete loop of [`yasmin_bench::hotpath`] twice — against the
//! single-owner engine (comparable 1:1 with the PR 2 record) and
//! against the sharded engine fed through the lock-free command mailbox
//! — and writes `results/BENCH_PR3.json` with both, alongside the
//! recorded PR 2 baseline.
//!
//! Each loop runs three times and the run with the lowest p50 sum is
//! kept: the per-run medians are stable, but host noise (other tenants,
//! frequency drift) shifts whole runs, and the minimum is the standard
//! robust estimator for "what the code costs when the host is quiet".
//!
//! The CI perf gate (`perf_gate`) compares this file's `after` medians
//! against `results/BENCH_PR2.json` and fails on >25% regression.

use yasmin_bench::hotpath::{self, HotpathParams, HotpathReport};

fn best_of(n: u32, mut run: impl FnMut() -> HotpathReport) -> HotpathReport {
    let score = |r: &HotpathReport| r.tick.p50_ns + r.completion.p50_ns;
    let mut best = run();
    for _ in 1..n {
        let r = run();
        if score(&r) < score(&best) {
            best = r;
        }
    }
    best
}

fn main() {
    let p = HotpathParams::default();
    eprintln!(
        "hotpath: {} tasks, {} workers, {} iters (+{} warm-up), best of 3 runs",
        p.tasks, p.workers, p.iters, p.warmup
    );
    let direct = best_of(3, || hotpath::run(&p));
    eprintln!("hotpath: direct path done, running mailbox-fed sharded path");
    let sharded = best_of(3, || hotpath::run_sharded(&p));
    let json = hotpath::render_json_pr3(&direct, &sharded, hotpath::recorded_pr2().as_ref());
    println!("{json}");
    yasmin_bench::write_result("BENCH_PR3.json", &json);
    eprintln!("wrote results/BENCH_PR3.json");
}
