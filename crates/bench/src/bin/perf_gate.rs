//! The CI perf-regression gate (PR 3, re-pointed by PR 4, PR 5 and
//! PR 10).
//!
//! Checks on p50 medians of the dispatch hot path:
//!
//! 1. **Cross-file**: `results/BENCH_PR10.json` against the **best**
//!    recorded baseline per entry point across `results/BENCH_PR2.json`,
//!    `results/BENCH_PR3.json`, `results/BENCH_PR4.json` and
//!    `results/BENCH_PR5.json` — fails past +25% (override with
//!    `PERF_GATE_MAX_REGRESSION_PCT`). A PR can therefore not regress
//!    against the fastest ancestor while beating the slowest. Meaningful
//!    when the files were measured on the same host: in CI this check
//!    runs on the *committed* records (all from the reference host),
//!    locally after regenerating `BENCH_PR10.json` in place.
//! 2. **Same-host**, within one `BENCH_PR10.json` (both sides measured
//!    in the same process, so valid on any hardware):
//!    * the mailbox-fed sharded path within +100% of the direct path;
//!    * `remove_heavy.remove_then_pop` within 2× of `remove_heavy.pop`
//!      — the index-heap asymptotics bound: a removal at n = 1024 costs
//!      no more than a pop, i.e. no O(n) scan hides on the path;
//!    * `burst.batched` within +25% of `burst.sequential` — the batch
//!      completion API must never cost more than per-completion calls
//!      (it runs one dispatch round instead of one per completion);
//!    * `steal.steal_cycle` within 2× of `steal.local_pop` — the full
//!      work-stealing hand-off (O(1) probe + O(log n) detach + thief
//!      adoption) costs no more than twice a local dispatch, i.e. no
//!      scan or lock hides on the migration path;
//!    * `cross_activation.routed` within 3× of
//!      `cross_activation.local_fire` — completion + outbox drain + the
//!      destination's `CrossActivate` round is two engine rounds plus
//!      routing, bounded against the single local round;
//!    * `msg.routed_send` within 3× of `msg.local_send` — a high-lane
//!      post whose receiver lives on a foreign shard pays one peer-lane
//!      hop on top of the home-shard post, and nothing else;
//!    * `fault.tick_on` within +15% of `fault.tick_off` — arming
//!      WCET-overrun enforcement and the miss trip wire adds only the
//!      busy-worker scan to the tick, never a task-count-dependent pass;
//!    * `steal_batch.single` at least **200% of** `steal_batch.batch` —
//!      the batched exchange must move its eight jobs at least twice as
//!      fast as eight single-steal protocol rounds (the request/grant
//!      round trips and dispatch rounds amortise, or the batch plumbing
//!      is pure overhead);
//!    * `queue_scan.soa` within +15% of `queue_scan.inline_ref` — the
//!      struct-of-arrays key sift at n = 8192 must not regress behind
//!      the frozen inline-payload PR 4 layout it replaced (it should
//!      win; the slack absorbs timer noise at ~100 ns medians).
//!
//! Modes: no argument runs both checks; `--cross-file-only` /
//! `--same-host-only` select one (what the two CI steps use).
//!
//! Usage: `cargo run --release -p yasmin-bench --bin perf_gate`
//! (run `exp_hotpath` first if `results/BENCH_PR10.json` is missing).

use yasmin_bench::compare::{
    gate_mailbox_overhead, gate_min_speedup, gate_p50_vs_best, gate_ratio, GateCheck,
};

const DEFAULT_MAX_REGRESSION_PCT: u64 = 25;
const MAX_MAILBOX_OVERHEAD_PCT: u64 = 100;
/// remove-then-pop ≤ 2× pop: +100% over the denominator.
const MAX_REMOVE_OVER_POP_PCT: u64 = 100;
const MAX_BATCH_OVER_SEQUENTIAL_PCT: u64 = 25;
/// steal cycle ≤ 2× local pop: +100% over the denominator.
const MAX_STEAL_OVER_LOCAL_PCT: u64 = 100;
/// routed cross-shard activation ≤ 3× local firing.
const MAX_ROUTED_OVER_LOCAL_PCT: u64 = 200;
/// routed high-lane post ≤ 3× home-shard post.
const MAX_ROUTED_SEND_OVER_LOCAL_PCT: u64 = 200;
/// armed WCET-overrun enforcement tick ≤ 1.15× unarmed tick.
const MAX_ENFORCEMENT_OVER_OFF_PCT: u64 = 15;
/// eight single steals ≥ 2× one batched exchange.
const MIN_SINGLE_OVER_BATCH_PCT: u64 = 200;
/// SoA pop+push sift ≤ 1.15× the frozen inline-payload layout.
const MAX_SOA_OVER_INLINE_PCT: u64 = 15;

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf_gate: cannot read {path}: {e}");
            eprintln!(
                "perf_gate: run `cargo run --release -p yasmin-bench --bin exp_hotpath` first"
            );
            std::process::exit(2);
        }
    }
}

fn report(title: &str, checks: &Result<Vec<GateCheck>, String>) -> bool {
    match checks {
        Ok(checks) => {
            println!("{title}");
            let mut failed = false;
            for c in checks {
                println!("  {c}");
                failed |= c.regressed;
            }
            failed
        }
        Err(msg) => {
            eprintln!("perf_gate: {msg}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let (cross_file, same_host) = match mode.as_str() {
        "" => (true, true),
        "--cross-file-only" => (true, false),
        "--same-host-only" => (false, true),
        other => {
            eprintln!("perf_gate: unknown argument {other}");
            std::process::exit(2);
        }
    };
    let pct = std::env::var("PERF_GATE_MAX_REGRESSION_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION_PCT);
    let current = read("results/BENCH_PR10.json");
    let mut failed = false;
    if cross_file {
        let pr2 = read("results/BENCH_PR2.json");
        let pr3 = read("results/BENCH_PR3.json");
        let pr4 = read("results/BENCH_PR4.json");
        let pr5 = read("results/BENCH_PR5.json");
        failed |= report(
            &format!(
                "perf_gate: p50 medians, BENCH_PR10 vs best of BENCH_PR2/PR3/PR4/PR5 \
                 (limit +{pct}%)"
            ),
            &gate_p50_vs_best(
                &[("PR2", &pr2), ("PR3", &pr3), ("PR4", &pr4), ("PR5", &pr5)],
                &current,
                pct,
            ),
        );
    }
    if same_host {
        failed |= report(
            &format!(
                "perf_gate: mailbox-feed vs direct, same host (limit +{MAX_MAILBOX_OVERHEAD_PCT}%)"
            ),
            &gate_mailbox_overhead(&current, MAX_MAILBOX_OVERHEAD_PCT),
        );
        failed |= report(
            &format!(
                "perf_gate: remove-then-pop vs pop at n=1024, same host \
                 (limit +{MAX_REMOVE_OVER_POP_PCT}%)"
            ),
            &gate_ratio(
                &current,
                ("remove_heavy", "remove_then_pop"),
                ("remove_heavy", "pop"),
                MAX_REMOVE_OVER_POP_PCT,
            )
            .map(|c| vec![c]),
        );
        failed |= report(
            &format!(
                "perf_gate: batched vs sequential completion bursts, same host \
                 (limit +{MAX_BATCH_OVER_SEQUENTIAL_PCT}%)"
            ),
            &gate_ratio(
                &current,
                ("burst", "batched"),
                ("burst", "sequential"),
                MAX_BATCH_OVER_SEQUENTIAL_PCT,
            )
            .map(|c| vec![c]),
        );
        failed |= report(
            &format!(
                "perf_gate: steal cycle vs local pop dispatch, same host \
                 (limit +{MAX_STEAL_OVER_LOCAL_PCT}%)"
            ),
            &gate_ratio(
                &current,
                ("steal", "steal_cycle"),
                ("steal", "local_pop"),
                MAX_STEAL_OVER_LOCAL_PCT,
            )
            .map(|c| vec![c]),
        );
        failed |= report(
            &format!(
                "perf_gate: routed cross-shard activation vs local DAG firing, same \
                 host (limit +{MAX_ROUTED_OVER_LOCAL_PCT}%)"
            ),
            &gate_ratio(
                &current,
                ("cross_activation", "routed"),
                ("cross_activation", "local_fire"),
                MAX_ROUTED_OVER_LOCAL_PCT,
            )
            .map(|c| vec![c]),
        );
        failed |= report(
            &format!(
                "perf_gate: routed vs home-shard high-lane post, same host \
                 (limit +{MAX_ROUTED_SEND_OVER_LOCAL_PCT}%)"
            ),
            &gate_ratio(
                &current,
                ("msg", "routed_send"),
                ("msg", "local_send"),
                MAX_ROUTED_SEND_OVER_LOCAL_PCT,
            )
            .map(|c| vec![c]),
        );
        failed |= report(
            &format!(
                "perf_gate: armed enforcement tick vs unarmed tick, same host \
                 (limit +{MAX_ENFORCEMENT_OVER_OFF_PCT}%)"
            ),
            &gate_ratio(
                &current,
                ("fault", "tick_on"),
                ("fault", "tick_off"),
                MAX_ENFORCEMENT_OVER_OFF_PCT,
            )
            .map(|c| vec![c]),
        );
        failed |= report(
            &format!(
                "perf_gate: 8 single steals vs one batched exchange, same host \
                 (floor {MIN_SINGLE_OVER_BATCH_PCT}%)"
            ),
            &gate_min_speedup(
                &current,
                ("steal_batch", "single"),
                ("steal_batch", "batch"),
                MIN_SINGLE_OVER_BATCH_PCT,
            )
            .map(|c| vec![c]),
        );
        failed |= report(
            &format!(
                "perf_gate: SoA key sift vs frozen inline-payload layout at n=8192, \
                 same host (limit +{MAX_SOA_OVER_INLINE_PCT}%)"
            ),
            &gate_ratio(
                &current,
                ("queue_scan", "soa"),
                ("queue_scan", "inline_ref"),
                MAX_SOA_OVER_INLINE_PCT,
            )
            .map(|c| vec![c]),
        );
    }
    if failed {
        eprintln!("perf_gate: FAIL — dispatch-path p50 regressed past the gate");
        std::process::exit(1);
    }
    println!("perf_gate: PASS");
}
