//! The CI perf-regression gate (PR 3).
//!
//! Two checks, both on p50 medians of the dispatch hot path:
//!
//! 1. **Cross-file**: `results/BENCH_PR3.json` against the recorded
//!    `results/BENCH_PR2.json` baseline — fails past +25% (override
//!    with `PERF_GATE_MAX_REGRESSION_PCT`). Meaningful when both files
//!    were measured on the same host: in CI this check runs on the
//!    *committed* pair (both recorded on the reference host), locally
//!    after regenerating `BENCH_PR3.json` in place.
//! 2. **Same-host**: within one `BENCH_PR3.json`, the mailbox-fed
//!    sharded path must stay within +100% of the direct path. Both
//!    sides come from the same process on the same machine, so this
//!    bound is valid on any hardware — CI re-measures on the runner and
//!    gates the fresh file with this check only.
//!
//! Modes: no argument runs both checks; `--cross-file-only` /
//! `--same-host-only` select one (what the two CI steps use).
//!
//! Usage: `cargo run --release -p yasmin-bench --bin perf_gate`
//! (run `exp_hotpath` first if `results/BENCH_PR3.json` is missing).

use yasmin_bench::compare::{gate_mailbox_overhead, gate_p50, GateCheck};

const DEFAULT_MAX_REGRESSION_PCT: u64 = 25;
const MAX_MAILBOX_OVERHEAD_PCT: u64 = 100;

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perf_gate: cannot read {path}: {e}");
            eprintln!(
                "perf_gate: run `cargo run --release -p yasmin-bench --bin exp_hotpath` first"
            );
            std::process::exit(2);
        }
    }
}

fn report(title: &str, checks: &Result<Vec<GateCheck>, String>) -> bool {
    match checks {
        Ok(checks) => {
            println!("{title}");
            let mut failed = false;
            for c in checks {
                println!("  {c}");
                failed |= c.regressed;
            }
            failed
        }
        Err(msg) => {
            eprintln!("perf_gate: {msg}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let (cross_file, same_host) = match mode.as_str() {
        "" => (true, true),
        "--cross-file-only" => (true, false),
        "--same-host-only" => (false, true),
        other => {
            eprintln!("perf_gate: unknown argument {other}");
            std::process::exit(2);
        }
    };
    let pct = std::env::var("PERF_GATE_MAX_REGRESSION_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_MAX_REGRESSION_PCT);
    let current = read("results/BENCH_PR3.json");
    let mut failed = false;
    if cross_file {
        let baseline = read("results/BENCH_PR2.json");
        failed |= report(
            &format!("perf_gate: p50 medians, BENCH_PR3 vs BENCH_PR2 (limit +{pct}%)"),
            &gate_p50(&baseline, &current, pct),
        );
    }
    if same_host {
        failed |= report(
            &format!(
                "perf_gate: mailbox-feed vs direct, same host (limit +{MAX_MAILBOX_OVERHEAD_PCT}%)"
            ),
            &gate_mailbox_overhead(&current, MAX_MAILBOX_OVERHEAD_PCT),
        );
    }
    if failed {
        eprintln!("perf_gate: FAIL — dispatch-path p50 regressed past the gate");
        std::process::exit(1);
    }
    println!("perf_gate: PASS");
}
