//! Regenerates **Table 2**: cyclictest latency comparison between YASMIN,
//! Linux+PREEMPT_RT and LitmusRT under stress-ng load.
//!
//! Usage: `cargo run -p yasmin-bench --release --bin exp_table2 [--quick]`

use yasmin_bench::table2::{render, run, Table2Params};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        Table2Params::quick()
    } else {
        Table2Params::default()
    };
    eprintln!(
        "table2: cyclictest -t {} -i {} -l {} under full stress; measuring engine overhead…",
        params.cyclictest.threads,
        params.cyclictest.interval.as_micros(),
        params.cyclictest.loops
    );
    let rows = run(&params);
    println!("## Table 2 — latency comparison (µs, <min, max, avg>)\n");
    let table = render(&rows);
    println!("{table}");
    println!(
        "Paper reference: PREEMPT_RT YASMIN <90,1481,500> RTapps <176,1550,463>;\n\
         LitmusRT YASMIN <67,318,170> RTapps <33,222,74> GSN-EDF <35,247,84>\n\
         P-RES <988,1206,1027>."
    );
    yasmin_bench::write_result("table2.md", &table);

    let mut csv = String::from("os,version,min_us,max_us,avg_us\n");
    for r in &rows {
        let (min, max, avg) = r.latency.as_micros_triple();
        csv.push_str(&format!(
            "{},{},{min:.1},{max:.1},{avg:.1}\n",
            r.os, r.version
        ));
    }
    yasmin_bench::write_result("table2.csv", &csv);
}
