//! Regenerates **Figure 4**: scheduling exploration for the drone
//! Search & Rescue use-case — frame processing time and deadline misses
//! for {G-EDF, G-DM, P-EDF, P-DM} × {CPU-only, GPU-only, both}.
//!
//! Usage: `cargo run -p yasmin-bench --release --bin exp_fig4 [--quick] [--graph]`

use yasmin_bench::fig4::{render, run, Fig4Params};
use yasmin_taskgen::drone::{self, VersionRestriction};

fn print_graph() {
    let w = drone::build(VersionRestriction::Both).expect("workload builds");
    println!("## Figure 3b — SAR application task graph\n");
    for t in w.taskset.tasks() {
        let spec = t.spec();
        let period = if spec.period().is_zero() {
            "data-driven".to_string()
        } else {
            format!("T={}", spec.period())
        };
        println!("* {} ({period})", spec.name());
        for v in t.versions() {
            let accel = v.accel().map_or(String::new(), |a| format!(" [accel {a}]"));
            println!("    - {}: C={}{accel}", v.name(), v.wcet());
        }
    }
    println!("\nEdges:");
    for e in w.taskset.edges() {
        let src = w.taskset.task(e.src).unwrap().spec().name().to_string();
        let dst = w.taskset.task(e.dst).unwrap().spec().name().to_string();
        println!("* {src} -> {dst}");
    }
    println!();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "--graph") {
        print_graph();
    }
    let params = if quick {
        Fig4Params::quick()
    } else {
        Fig4Params::default()
    };
    eprintln!(
        "fig4: {}s mission, {}% secure frames, {} workers + scheduler core…",
        params.mission.as_secs_f64(),
        params.secure_pct,
        params.workers
    );
    let rows = run(&params);
    println!("## Figure 4 — drone scheduling exploration\n");
    let table = render(&rows);
    println!("{table}");
    println!(
        "Paper shape: GPU-including configurations shorten frame processing;\n\
         CPU-only and GPU-only miss deadlines in the same proportion (the\n\
         secure/AES frames); only the multi-version 'both' configurations\n\
         eliminate the misses; partitioned variants trail global slightly."
    );
    yasmin_bench::write_result("fig4.md", &table);

    let mut csv =
        String::from("config,frames,avg_frame_ms,max_frame_ms,frame_misses,fc_misses,miss_ratio\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{},{:.2},{:.2},{},{},{:.4}\n",
            r.label,
            r.frames,
            r.avg_frame_ms,
            r.max_frame_ms,
            r.frame_misses,
            r.fc_misses,
            r.miss_ratio
        ));
    }
    yasmin_bench::write_result("fig4.csv", &csv);
}
