//! Experiment E1/E2 — Figure 2: scheduling overhead, YASMIN vs the
//! Mollison & Anderson userspace G-EDF library.
//!
//! Protocol (§4.1): DRS-generated task sets, n ∈ [20, 120], total
//! utilisation ∈ [0.2, 2.0], 2 and 3 worker cores (YASMIN's scheduler
//! thread gets the remaining big core). The YASMIN overhead is the
//! *measured wall-clock cost of real engine calls* inside the simulator;
//! the baseline overhead is *measured on real contending threads* against
//! the modelled library. Figure 2a buckets by task count, Figure 2b by
//! utilisation.

use std::sync::Arc;
use yasmin_baselines::mollison::{measure_overhead, MollisonParams};
use yasmin_core::config::Config;
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::stats::Samples;
use yasmin_core::time::Duration;
use yasmin_sim::{SimConfig, Simulation};
use yasmin_taskgen::taskset::{generate_params, IndependentSetParams};
use yasmin_taskgen::GeneratedTask;

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct Fig2Params {
    /// Task counts (paper: 20..120).
    pub task_counts: Vec<usize>,
    /// Worker-core counts (paper: 2 and 3).
    pub cores: Vec<usize>,
    /// Total utilisations (paper: [0.2, 2.0]).
    pub utilisations: Vec<f64>,
    /// Random seeds per configuration (paper: 5).
    pub seeds: u64,
    /// Simulated horizon per YASMIN run.
    pub sim_horizon: Duration,
    /// Wall-clock trial length per baseline run.
    pub ma_trial: std::time::Duration,
}

impl Default for Fig2Params {
    fn default() -> Self {
        Fig2Params {
            task_counts: vec![20, 40, 60, 80, 100, 120],
            cores: vec![2, 3],
            utilisations: vec![0.2, 0.65, 1.1, 1.55, 2.0],
            seeds: 2,
            sim_horizon: Duration::from_secs(1),
            ma_trial: std::time::Duration::from_millis(60),
        }
    }
}

impl Fig2Params {
    /// A fast variant for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        Fig2Params {
            task_counts: vec![20, 60],
            cores: vec![2],
            utilisations: vec![0.5, 1.5],
            seeds: 1,
            sim_horizon: Duration::from_millis(300),
            ma_trial: std::time::Duration::from_millis(30),
        }
    }
}

/// One measured cell of the sweep.
#[derive(Clone, Debug)]
pub struct Fig2Cell {
    /// Worker cores.
    pub cores: usize,
    /// Task count.
    pub n: usize,
    /// Total utilisation requested.
    pub utilisation: f64,
    /// Seed used.
    pub seed: u64,
    /// YASMIN per-engine-call overhead (ns samples).
    pub yasmin_ns: Samples,
    /// Baseline per-op overhead (ns samples).
    pub mollison_ns: Samples,
}

/// Aggregated row (one bucket of Figure 2a or 2b).
#[derive(Clone, Copy, Debug)]
pub struct Fig2Row {
    /// Bucket key (task count for 2a, utilisation×100 for 2b).
    pub key: u64,
    /// Worker cores.
    pub cores: usize,
    /// YASMIN average overhead, µs.
    pub yasmin_avg_us: f64,
    /// YASMIN maximum overhead, µs.
    pub yasmin_max_us: f64,
    /// Baseline average overhead, µs.
    pub ma_avg_us: f64,
    /// Baseline maximum overhead, µs.
    pub ma_max_us: f64,
}

fn yasmin_overhead(tasks: &[GeneratedTask], cores: usize, horizon: Duration, seed: u64) -> Samples {
    // Rebuild the same parameters as a periodic task set for the engine.
    let mut b = yasmin_core::graph::TaskSetBuilder::new();
    for g in tasks {
        let t = b
            .task_decl(yasmin_core::task::TaskSpec::periodic(&g.name, g.period))
            .expect("valid spec");
        b.version_decl(t, yasmin_core::version::VersionSpec::new(&g.name, g.wcet))
            .expect("valid version");
    }
    let ts = Arc::new(b.build().expect("valid set"));
    let config = Config::builder()
        .workers(cores)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    let mut sim = SimConfig::uniform(cores, horizon);
    sim.measure_engine_time = true;
    sim.seed = seed;
    let result = Simulation::new(ts, config, sim)
        .expect("valid simulation")
        .run()
        .expect("run succeeds");
    result.sched_overhead_ns
}

/// Runs the full sweep.
#[must_use]
pub fn run_cells(p: &Fig2Params) -> Vec<Fig2Cell> {
    let mut cells = Vec::new();
    for &cores in &p.cores {
        for &n in &p.task_counts {
            for &u in &p.utilisations {
                for seed in 0..p.seeds {
                    let gen = IndependentSetParams {
                        n,
                        total_utilisation: u,
                        cap: 1.0,
                        seed: seed
                            .wrapping_add((n as u64) << 32)
                            .wrapping_add((u * 100.0) as u64),
                        ..IndependentSetParams::default()
                    };
                    let tasks = generate_params(&gen).expect("feasible DRS request");
                    let yasmin_ns = yasmin_overhead(&tasks, cores, p.sim_horizon, gen.seed);
                    let ma = measure_overhead(
                        &tasks,
                        &MollisonParams {
                            workers: cores,
                            time_scale: 50,
                            trial: p.ma_trial,
                        },
                    );
                    cells.push(Fig2Cell {
                        cores,
                        n,
                        utilisation: u,
                        seed,
                        yasmin_ns,
                        mollison_ns: ma.per_op_ns,
                    });
                }
            }
        }
    }
    cells
}

fn aggregate<K: Fn(&Fig2Cell) -> u64>(cells: &[Fig2Cell], key: K) -> Vec<Fig2Row> {
    let mut buckets: std::collections::BTreeMap<(usize, u64), (Samples, Samples)> =
        std::collections::BTreeMap::new();
    for c in cells {
        let entry = buckets
            .entry((c.cores, key(c)))
            .or_insert_with(|| (Samples::new(), Samples::new()));
        for v in c.yasmin_ns.values() {
            entry.0.record(*v);
        }
        for v in c.mollison_ns.values() {
            entry.1.record(*v);
        }
    }
    buckets
        .into_iter()
        .map(|((cores, key), (y, m))| Fig2Row {
            key,
            cores,
            yasmin_avg_us: y.mean().unwrap_or(0.0) / 1e3,
            yasmin_max_us: y.max().unwrap_or(0) as f64 / 1e3,
            ma_avg_us: m.mean().unwrap_or(0.0) / 1e3,
            ma_max_us: m.max().unwrap_or(0) as f64 / 1e3,
        })
        .collect()
}

/// Figure 2a: overhead by number of tasks.
#[must_use]
pub fn by_task_count(cells: &[Fig2Cell]) -> Vec<Fig2Row> {
    aggregate(cells, |c| c.n as u64)
}

/// Figure 2b: overhead by utilisation (key = U × 100).
#[must_use]
pub fn by_utilisation(cells: &[Fig2Cell]) -> Vec<Fig2Row> {
    aggregate(cells, |c| (c.utilisation * 100.0).round() as u64)
}

/// Renders rows as a markdown table.
#[must_use]
pub fn render(rows: &[Fig2Row], key_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "| cores | {key_name} | YASMIN avg (us) | YASMIN max (us) | M&A avg (us) | M&A max (us) |\n"
    ));
    out.push_str("|---|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} |\n",
            r.cores, r.key, r.yasmin_avg_us, r.yasmin_max_us, r.ma_avg_us, r.ma_max_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_rows() {
        let cells = run_cells(&Fig2Params::quick());
        assert_eq!(cells.len(), 2 * 2); // 2 ns × 2 us × 1 seed × 1 core cfg
        let rows_a = by_task_count(&cells);
        assert_eq!(rows_a.len(), 2);
        let rows_b = by_utilisation(&cells);
        assert_eq!(rows_b.len(), 2);
        for r in rows_a.iter().chain(&rows_b) {
            assert!(r.yasmin_avg_us > 0.0);
            assert!(r.ma_avg_us > 0.0);
            assert!(r.yasmin_max_us >= r.yasmin_avg_us);
            assert!(r.ma_max_us >= r.ma_avg_us);
        }
        let table = render(&rows_a, "tasks");
        assert!(table.contains("| 2 | 20 |"));
    }
}
