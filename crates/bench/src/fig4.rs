//! Experiment E4 — Figure 4: scheduling exploration for the drone
//! use-case.
//!
//! Twelve configurations: {G-EDF, G-DM, P-EDF, P-DM} × {CPU-only,
//! GPU-only, both}. The workload is the SAR application of Figure 3b on
//! an Apalis-TK1-class platform: three workers plus the dedicated
//! scheduler thread on the quad-core Cortex-A15. A fraction of frames
//! "detect boats", switching the system into the secure mode where the
//! `encode` task runs its AES version (§5) — the mechanism behind the
//! CPU-only/GPU-only deadline misses that the multi-version "both"
//! configurations absorb.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use yasmin_core::config::{Config, MappingScheme, VersionPolicy};
use yasmin_core::platform::PlatformSpec;
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::time::Duration;
use yasmin_core::version::ExecMode;
use yasmin_sim::{ExecModel, SimConfig, SimResult, Simulation};
use yasmin_taskgen::drone::{self, VersionRestriction, FRAME_PERIOD, SECURE_MODE};

/// Parameters of the exploration.
#[derive(Clone, Copy, Debug)]
pub struct Fig4Params {
    /// Simulated mission length.
    pub mission: Duration,
    /// Fraction (percent) of frames that detect boats and require secure
    /// (AES) encoding.
    pub secure_pct: u32,
    /// Worker threads (the 4th A15 core hosts the scheduler thread).
    pub workers: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Fig4Params {
    fn default() -> Self {
        Fig4Params {
            mission: Duration::from_secs(60),
            secure_pct: 35,
            workers: 3,
            seed: 7,
        }
    }
}

impl Fig4Params {
    /// A fast variant for tests.
    #[must_use]
    pub fn quick() -> Self {
        Fig4Params {
            mission: Duration::from_secs(10),
            ..Fig4Params::default()
        }
    }
}

/// One bar group of Figure 4.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// Configuration label, e.g. `G-EDF-both`.
    pub label: String,
    /// Frames completed.
    pub frames: usize,
    /// Average frame-processing time (ms).
    pub avg_frame_ms: f64,
    /// Maximum frame-processing time (ms).
    pub max_frame_ms: f64,
    /// Deadline misses among frame-pipeline jobs (completed late or
    /// unfinished).
    pub frame_misses: usize,
    /// Deadline misses of the flight-control handler.
    pub fc_misses: usize,
    /// Overall deadline-miss ratio (all completed jobs).
    pub miss_ratio: f64,
}

/// The secure/normal mode schedule: one decision per frame window.
fn mode_schedule(p: &Fig4Params) -> Vec<(Duration, ExecMode)> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let frames = p.mission / FRAME_PERIOD;
    (0..frames)
        .map(|k| {
            let secure = rng.random_range(0..100u32) < p.secure_pct;
            let mode = if secure {
                SECURE_MODE
            } else {
                ExecMode::NORMAL
            };
            (FRAME_PERIOD * k, mode)
        })
        .collect()
}

/// Runs one configuration and returns its row plus the raw result.
///
/// # Panics
///
/// Panics on internal configuration errors (the parameter space is
/// closed, so none are expected).
#[must_use]
pub fn run_one(
    mapping: MappingScheme,
    priority: PriorityPolicy,
    restriction: VersionRestriction,
    p: &Fig4Params,
) -> (Fig4Row, SimResult) {
    let workload = match mapping {
        MappingScheme::Global => drone::build(restriction).expect("valid workload"),
        MappingScheme::Partitioned => {
            drone::build_partitioned(restriction, p.workers).expect("valid workload")
        }
    };
    let config = Config::builder()
        .workers(p.workers)
        .mapping(mapping)
        .priority(priority)
        .version_policy(VersionPolicy::Mode)
        .max_pending_jobs(4096)
        .build()
        .expect("valid config");
    let sim = SimConfig {
        platform: PlatformSpec::apalis_tk1(),
        horizon: p.mission,
        exec: ExecModel::Wcet,
        kernel: None,
        stress: yasmin_sim::StressProfile::IDLE,
        overheads: yasmin_sim::OverheadModel::default(),
        seed: p.seed,
        measure_engine_time: false,
        mode_schedule: mode_schedule(p),
        msg_schedule: Vec::new(),
        fault_schedule: Vec::new(),
    };
    let taskset = Arc::new(workload.taskset.clone());
    let result = Simulation::new(taskset, config, sim)
        .expect("valid simulation")
        .run()
        .expect("simulation runs");

    let frame_tasks = [
        workload.tasks.fetch,
        workload.tasks.extract,
        workload.tasks.augment,
        workload.tasks.store,
        workload.tasks.detect,
        workload.tasks.estimate,
        workload.tasks.highlight,
        workload.tasks.create,
        workload.tasks.encode,
        workload.tasks.send,
    ];
    let e2e = result.end_to_end(workload.tasks.send);
    let frame_misses: usize = frame_tasks
        .iter()
        .map(|&t| result.miss_count(t))
        .sum::<usize>()
        + result.unfinished_missed;
    let fc_misses = result.miss_count(workload.tasks.fc_handler);
    let total_jobs = result.records.len();
    let total_misses = result.total_misses();
    let label = format!(
        "{}-{}-{}",
        mapping.label(),
        priority.label(),
        restriction.label()
    );
    (
        Fig4Row {
            label,
            frames: result.records_of(workload.tasks.send).count(),
            avg_frame_ms: e2e.mean().unwrap_or(0.0) / 1e6,
            max_frame_ms: e2e.max().unwrap_or(0) as f64 / 1e6,
            frame_misses,
            fc_misses,
            miss_ratio: if total_jobs == 0 {
                0.0
            } else {
                total_misses as f64 / total_jobs as f64
            },
        },
        result,
    )
}

/// Runs the full 12-configuration exploration.
#[must_use]
pub fn run(p: &Fig4Params) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for (mapping, priority) in [
        (MappingScheme::Global, PriorityPolicy::EarliestDeadlineFirst),
        (MappingScheme::Global, PriorityPolicy::DeadlineMonotonic),
        (
            MappingScheme::Partitioned,
            PriorityPolicy::EarliestDeadlineFirst,
        ),
        (
            MappingScheme::Partitioned,
            PriorityPolicy::DeadlineMonotonic,
        ),
    ] {
        for restriction in VersionRestriction::ALL {
            rows.push(run_one(mapping, priority, restriction, p).0);
        }
    }
    rows
}

/// Renders rows as a markdown table.
#[must_use]
pub fn render(rows: &[Fig4Row]) -> String {
    let mut out = String::from(
        "| config | frames | avg frame (ms) | max frame (ms) | frame misses | FC misses | miss ratio |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {} | {} | {:.3} |\n",
            r.label,
            r.frames,
            r.avg_frame_ms,
            r.max_frame_ms,
            r.frame_misses,
            r.fc_misses,
            r.miss_ratio
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exploration_shape_matches_paper() {
        let p = Fig4Params::quick();
        let rows = run(&p);
        assert_eq!(rows.len(), 12);
        let find = |label: &str| rows.iter().find(|r| r.label == label).unwrap();

        let g_edf_cpu = find("G-EDF-cpu");
        let g_edf_gpu = find("G-EDF-gpu");
        let g_edf_both = find("G-EDF-both");

        // (1) GPU-including configurations process frames faster.
        assert!(
            g_edf_gpu.avg_frame_ms < g_edf_cpu.avg_frame_ms,
            "gpu {} vs cpu {}",
            g_edf_gpu.avg_frame_ms,
            g_edf_cpu.avg_frame_ms
        );
        assert!(g_edf_both.avg_frame_ms < g_edf_cpu.avg_frame_ms);

        // (2) CPU-only and GPU-only miss deadlines (on secure frames).
        assert!(g_edf_cpu.frame_misses > 0, "{g_edf_cpu:?}");
        assert!(g_edf_gpu.frame_misses > 0, "{g_edf_gpu:?}");

        // (3) Multi-version "both" eliminates the misses.
        assert_eq!(g_edf_both.frame_misses, 0, "{g_edf_both:?}");
        assert_eq!(g_edf_both.fc_misses, 0);
    }

    #[test]
    fn all_strategies_similar_for_both() {
        let p = Fig4Params::quick();
        let rows = run(&p);
        // "In the overall, all scheduling strategies display the same
        // overhead and deadline misses" — the 'both' variants stay within
        // a small band of each other.
        let both: Vec<_> = rows.iter().filter(|r| r.label.ends_with("both")).collect();
        assert_eq!(both.len(), 4);
        let avg_min = both.iter().map(|r| r.avg_frame_ms).fold(f64::MAX, f64::min);
        let avg_max = both.iter().map(|r| r.avg_frame_ms).fold(0.0, f64::max);
        assert!(
            avg_max - avg_min < 60.0,
            "both-configs spread too wide: {avg_min}..{avg_max}"
        );
    }
}
