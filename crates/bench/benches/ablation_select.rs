//! Ablation A3 — the §3.2 version-selection policies: per-dispatch
//! ranking cost of each policy on the drone's multi-version tasks.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use yasmin_core::config::{SelectCtx, VersionPolicy};
use yasmin_core::energy::BatteryLevel;
use yasmin_sched::rank_versions;
use yasmin_taskgen::drone::{self, VersionRestriction};

fn bench_policies(c: &mut Criterion) {
    let workload = drone::build(VersionRestriction::Both).expect("workload");
    let detect = &workload.taskset.tasks()[workload.tasks.detect.index()];
    let policies: Vec<(&str, VersionPolicy)> = vec![
        ("shortest_wcet", VersionPolicy::ShortestWcet),
        ("energy", VersionPolicy::Energy),
        (
            "tradeoff_70_30",
            VersionPolicy::EnergyTimeTradeoff { time_weight: 700 },
        ),
        ("mode", VersionPolicy::Mode),
        ("permission", VersionPolicy::Permission),
        (
            "user_defined",
            VersionPolicy::UserDefined(Arc::new(|_, _, cands| {
                cands.iter().map(|(id, _)| *id).collect()
            })),
        ),
    ];
    let mut group = c.benchmark_group("select/rank_versions");
    group.sample_size(50);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let ctx = SelectCtx {
        battery: BatteryLevel::from_percent(60),
        ..SelectCtx::default()
    };
    for (label, policy) in policies {
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(rank_versions(&policy, &ctx, detect)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
