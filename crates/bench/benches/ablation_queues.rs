//! Ablation A2 — ready-queue behaviour: push/pop cost at different queue
//! depths, and a full dispatch round of the engine in global vs
//! partitioned mapping.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use yasmin_core::config::{Config, MappingScheme};
use yasmin_core::ids::{JobId, TaskId};
use yasmin_core::priority::{Priority, PriorityPolicy};
use yasmin_core::time::{Duration, Instant};
use yasmin_sched::{ActionSink, Job, OnlineEngine, ReadyQueue};
use yasmin_taskgen::taskset::{build_independent, build_partitioned, IndependentSetParams};

fn job(id: u64, prio: u64) -> Job {
    Job {
        id: JobId::new(id),
        task: TaskId::new((id % 64) as u32),
        seq: id,
        release: Instant::ZERO,
        graph_release: Instant::ZERO,
        abs_deadline: Instant::ZERO + Duration::from_millis(prio),
        priority: Priority::new(prio),
        preempted: false,
    }
}

fn bench_queue_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("queues/push_pop");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for depth in [16usize, 256, 4096] {
        group.bench_function(format!("depth{depth}"), |b| {
            let mut q = ReadyQueue::with_capacity(depth + 1);
            for i in 0..depth as u64 {
                q.push(job(i, i * 7 % 1000)).expect("fits");
            }
            let mut next = depth as u64;
            b.iter(|| {
                q.push(job(next, next * 13 % 1000)).expect("fits");
                next += 1;
                std::hint::black_box(q.pop());
            });
        });
    }
    group.finish();
}

fn bench_dispatch_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("queues/engine_tick_mapping");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let params = IndependentSetParams {
        n: 60,
        total_utilisation: 1.5,
        seed: 5,
        ..IndependentSetParams::default()
    };
    for (label, mapping) in [
        ("global", MappingScheme::Global),
        ("partitioned", MappingScheme::Partitioned),
    ] {
        let ts = match mapping {
            MappingScheme::Global => build_independent(&params).expect("set"),
            MappingScheme::Partitioned => build_partitioned(&params, 2).expect("set"),
        };
        let ts = Arc::new(ts);
        group.bench_function(label, |b| {
            let config = Config::builder()
                .workers(2)
                .mapping(mapping)
                .priority(PriorityPolicy::EarliestDeadlineFirst)
                .max_pending_jobs(8192)
                .build()
                .expect("config");
            let mut engine = OnlineEngine::new(Arc::clone(&ts), config).expect("engine");
            let mut sink = ActionSink::with_capacity(256);
            engine.start_into(Instant::ZERO, &mut sink).expect("start");
            let tick = engine.tick_period();
            let mut now = Instant::ZERO;
            b.iter(|| {
                now += tick;
                sink.clear();
                engine.on_tick_into(now, &mut sink);
                std::hint::black_box(sink.len());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_queue_ops, bench_dispatch_round);
criterion_main!(benches);
