//! Criterion benchmark behind Figure 2: the cost of one scheduling
//! interaction in YASMIN (a real engine tick) vs the Mollison & Anderson
//! baseline (a locked release-scan + queue op), at small and large task
//! counts.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use yasmin_core::config::Config;
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::time::Instant;
use yasmin_sched::{ActionSink, OnlineEngine};
use yasmin_taskgen::taskset::{build_independent, IndependentSetParams};

fn engine_for(n: usize) -> OnlineEngine {
    let ts = build_independent(&IndependentSetParams {
        n,
        total_utilisation: 1.5,
        seed: 1,
        ..IndependentSetParams::default()
    })
    .expect("valid set");
    let config = Config::builder()
        .workers(2)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    OnlineEngine::new(Arc::new(ts), config).expect("valid engine")
}

fn bench_yasmin_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2/yasmin_tick");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for n in [20usize, 120] {
        group.bench_function(format!("n{n}"), |b| {
            let mut engine = engine_for(n);
            let mut sink = ActionSink::with_capacity(256);
            engine.start_into(Instant::ZERO, &mut sink).expect("starts");
            let mut now = Instant::ZERO;
            let tick = engine.tick_period();
            b.iter(|| {
                now += tick;
                sink.clear();
                engine.on_tick_into(now, &mut sink);
                std::hint::black_box(sink.len());
            });
        });
    }
    group.finish();
}

fn bench_mollison_op(c: &mut Criterion) {
    use yasmin_baselines::mollison::{measure_overhead, MollisonParams};
    use yasmin_taskgen::taskset::generate_params;
    let mut group = c.benchmark_group("fig2/mollison_trial");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for n in [20usize, 120] {
        let tasks = generate_params(&IndependentSetParams {
            n,
            total_utilisation: 1.5,
            seed: 1,
            ..IndependentSetParams::default()
        })
        .expect("feasible");
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| {
                std::hint::black_box(measure_overhead(
                    &tasks,
                    &MollisonParams {
                        workers: 2,
                        time_scale: 50,
                        trial: std::time::Duration::from_millis(5),
                    },
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_yasmin_tick, bench_mollison_op);
criterion_main!(benches);
