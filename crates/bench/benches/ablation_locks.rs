//! Ablation A1 — the §3.5 locking design choice: POSIX-backed mutex vs
//! the lock-free MCS queue lock vs a ticket lock, uncontended and under
//! contention.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use yasmin_sync::{LockKind, McsLock, TicketLock, YasminLock};

fn bench_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("locks/uncontended");
    group.sample_size(50);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("mcs", |b| {
        let lock = McsLock::new(0u64);
        b.iter(|| {
            *lock.lock() += 1;
        });
    });
    group.bench_function("ticket", |b| {
        let lock = TicketLock::new(0u64);
        b.iter(|| {
            *lock.lock() += 1;
        });
    });
    group.bench_function("posix(parking_lot)", |b| {
        let lock = YasminLock::new(LockKind::Posix, 0u64);
        b.iter(|| {
            *lock.lock() += 1;
        });
    });
    group.finish();
}

fn contended<F: Fn() + Send + Sync + 'static>(threads: usize, per_thread: usize, op: Arc<F>) {
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let op = Arc::clone(&op);
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    op();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panic");
    }
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("locks/contended_4threads");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("mcs", |b| {
        let lock = Arc::new(McsLock::new(0u64));
        b.iter(|| {
            let l = Arc::clone(&lock);
            contended(4, 2_000, Arc::new(move || *l.lock() += 1));
        });
    });
    group.bench_function("ticket", |b| {
        let lock = Arc::new(TicketLock::new(0u64));
        b.iter(|| {
            let l = Arc::clone(&lock);
            contended(4, 2_000, Arc::new(move || *l.lock() += 1));
        });
    });
    group.bench_function("posix(parking_lot)", |b| {
        let lock = Arc::new(YasminLock::new(LockKind::Posix, 0u64));
        b.iter(|| {
            let l = Arc::clone(&lock);
            contended(4, 2_000, Arc::new(move || *l.lock() += 1));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_uncontended, bench_contended);
criterion_main!(benches);
