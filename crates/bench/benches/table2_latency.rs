//! Criterion benchmark behind Table 2: the per-sample cost of the kernel
//! latency models and of the real engine handling a cyclictest-shaped
//! tick.

use criterion::{criterion_group, criterion_main, Criterion};
use yasmin_baselines::cyclictest::{measure_engine_overhead, CyclictestConfig};
use yasmin_sim::{KernelKind, KernelModel};

fn bench_kernel_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/kernel_sample");
    group.sample_size(50);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for kind in [
        KernelKind::PreemptRt,
        KernelKind::LitmusGsnEdf,
        KernelKind::LitmusPres,
    ] {
        group.bench_function(format!("{kind:?}"), |b| {
            let mut m = KernelModel::new(kind, 7);
            b.iter(|| std::hint::black_box(m.sample_latency(1.0)));
        });
    }
    group.finish();
}

fn bench_engine_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/engine_overhead");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_function("cyclictest_shaped_100_rounds", |b| {
        let cfg = CyclictestConfig::default();
        b.iter(|| std::hint::black_box(measure_engine_overhead(&cfg, 100)));
    });
    group.finish();
}

criterion_group!(benches, bench_kernel_models, bench_engine_overhead);
criterion_main!(benches);
