//! Criterion benchmark for the zero-allocation dispatch hot path: the
//! same steady-state engine interaction measured through the legacy
//! `Vec`-returning API (one allocation per call) and through the
//! reusable-sink `*_into` API (allocation-free after warm-up). The gap
//! between the two series is the allocator's share of the scheduler
//! overhead the paper's Figure 2 reports.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use yasmin_core::config::Config;
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::time::Instant;
use yasmin_sched::{ActionSink, OnlineEngine};
use yasmin_taskgen::taskset::{build_independent, IndependentSetParams};

fn engine_for(n: usize) -> OnlineEngine {
    let ts = build_independent(&IndependentSetParams {
        n,
        total_utilisation: 1.5,
        seed: 1,
        ..IndependentSetParams::default()
    })
    .expect("valid set");
    let config = Config::builder()
        .workers(2)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .max_pending_jobs(8192)
        .build()
        .expect("valid config");
    OnlineEngine::new(Arc::new(ts), config).expect("valid engine")
}

// This series exists to measure the deprecated Vec-returning API
// against the sink API, so it calls the legacy path on purpose.
#[allow(deprecated)]
fn bench_tick_vec(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/on_tick_vec");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for n in [20usize, 120] {
        group.bench_function(format!("n{n}"), |b| {
            let mut engine = engine_for(n);
            let _ = engine.start(Instant::ZERO).expect("starts");
            let mut now = Instant::ZERO;
            let tick = engine.tick_period();
            b.iter(|| {
                now += tick;
                std::hint::black_box(engine.on_tick(now));
            });
        });
    }
    group.finish();
}

fn bench_tick_sink(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/on_tick_sink");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for n in [20usize, 120] {
        group.bench_function(format!("n{n}"), |b| {
            let mut engine = engine_for(n);
            let mut sink = ActionSink::with_capacity(256);
            engine.start_into(Instant::ZERO, &mut sink).expect("starts");
            let mut now = Instant::ZERO;
            let tick = engine.tick_period();
            b.iter(|| {
                now += tick;
                sink.clear();
                engine.on_tick_into(now, &mut sink);
                std::hint::black_box(sink.len());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tick_vec, bench_tick_sink);
criterion_main!(benches);
