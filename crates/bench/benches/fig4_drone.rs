//! Criterion benchmark behind Figure 4: one simulated mission second of
//! the drone workload per configuration class.

use criterion::{criterion_group, criterion_main, Criterion};
use yasmin_bench::fig4::{run_one, Fig4Params};
use yasmin_core::config::MappingScheme;
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::time::Duration;
use yasmin_taskgen::VersionRestriction;

fn bench_drone_configs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/drone_mission_1s");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let p = Fig4Params {
        mission: Duration::from_secs(1),
        ..Fig4Params::default()
    };
    for restriction in VersionRestriction::ALL {
        group.bench_function(format!("G-EDF-{}", restriction.label()), |b| {
            b.iter(|| {
                std::hint::black_box(run_one(
                    MappingScheme::Global,
                    PriorityPolicy::EarliestDeadlineFirst,
                    restriction,
                    &p,
                ))
            });
        });
    }
    group.bench_function("P-DM-both", |b| {
        b.iter(|| {
            std::hint::black_box(run_one(
                MappingScheme::Partitioned,
                PriorityPolicy::DeadlineMonotonic,
                VersionRestriction::Both,
                &p,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_drone_configs);
criterion_main!(benches);
