//! # yasmin-sim
//!
//! Discrete-event simulation of COTS heterogeneous platforms for the
//! YASMIN evaluation. The simulator drives the *real* scheduling engine
//! (`yasmin-sched`) with virtual time, so every experiment exercises
//! production scheduling code on a modelled platform:
//!
//! * [`engine`] — the DES driver ([`engine::Simulation`]): event queue,
//!   modelled workers with per-core speeds, preemption progress tracking,
//!   measured + modelled overheads, energy accounting;
//! * [`exec`] — execution-time models (WCET, uniform fraction);
//! * [`kernel`] — wake-up-latency models of the kernels in Table 2
//!   (vanilla Linux, PREEMPT_RT, LitmusRT GSN-EDF / P-RES);
//! * [`par`] — the multi-threaded partitioned driver: one simulation
//!   thread per engine shard, fed by producer threads through the
//!   lock-free command mailbox, with results identical to the
//!   single-threaded [`engine::Simulation`];
//! * [`stress`] — the stress-ng-like interference profile;
//! * [`trace`] — per-job records and result aggregation;
//! * [`render`] — ASCII Gantt charts and Chrome-trace export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod exec;
pub mod kernel;
pub mod par;
pub mod render;
pub mod stress;
pub mod trace;

pub use engine::{FaultEvent, OverheadModel, SimConfig, Simulation};
pub use exec::{ExecModel, ExecSampler};
pub use kernel::{KernelKind, KernelModel, KernelParams};
pub use par::{run_partitioned_parallel, ParSimOptions};
pub use render::{ascii_gantt, chrome_trace, task_report};
pub use stress::StressProfile;
pub use trace::{JobRecord, SimResult};
