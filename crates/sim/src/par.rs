//! Multi-threaded partitioned simulation driver (PR 3).
//!
//! Runs one simulation thread per engine shard — each owning the
//! independent per-worker scheduler state of
//! [`yasmin_sched::EngineShard`] — while **N producer threads** feed
//! sporadic activations through the lock-free command mailbox
//! (`yasmin_sync::mailbox`, one SPSC lane per producer per shard). This
//! exercises the exact concurrency topology of the sharded real-time
//! runtime: multiple producers racing into a mailbox drained by a single
//! shard owner.
//!
//! ## Determinism
//!
//! The result is **bit-identical to the single-threaded
//! [`crate::Simulation`]** for the same partitioned task set (modulo
//! shard-stamped job ids), no matter how the OS schedules the threads:
//!
//! * shards share no mutable state, so cross-shard thread timing cannot
//!   matter;
//! * each producer sends its commands in non-decreasing simulated time,
//!   so a lane's head is the lane's minimum;
//! * a shard processes a command only once every still-open lane has
//!   revealed its next command (the *watermark*), merging lanes and
//!   local events in simulated-time order — external commands win ties;
//! * randomised execution-time and kernel models sample in dispatch
//!   order, which is a global order the shards don't share: exact trace
//!   equality therefore holds for the deterministic models
//!   ([`crate::ExecModel::Wcet`], no kernel model). Each shard seeds its
//!   samplers from `seed ^ worker` so randomised runs are still
//!   per-shard deterministic.
//!
//! One caveat bounds the equality claim: when a **sporadic activation
//! coincides exactly** with another event of the same shard (e.g. its
//! offset lands on the tick grid), the single-threaded simulator breaks
//! the tie by event *insertion order* — a history-dependent global
//! sequence the mailbox merge cannot observe — while this driver
//! applies its own fixed rule (external command first). Both drivers
//! remain individually deterministic, but their traces may then differ
//! at the tied instant. Keep sporadic offsets off the tick/finish grid
//! (any sub-tick offset does it) when cross-checking traces; shard-local
//! ties (tick vs completion) are unaffected because each shard replays
//! the single-owner engine's own insertion order.

use crate::engine::{SimConfig, Simulation};
use crate::trace::SimResult;
use std::sync::Arc;
use yasmin_core::config::Config;
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::TaskId;
use yasmin_core::task::ActivationKind;
use yasmin_core::time::{Duration, Instant};
use yasmin_sched::{EngineShard, ShardCmd};
use yasmin_sync::mailbox::{mailbox, MailboxFull, MailboxReceiver, MailboxSender};
use yasmin_sync::wait::Backoff;

/// Options of the multi-threaded driver.
#[derive(Debug, Clone, Copy)]
pub struct ParSimOptions {
    /// Producer threads feeding activations (≥ 1). Sporadic root tasks
    /// are distributed over producers round-robin by task index.
    pub producers: usize,
    /// Floor on each mailbox lane's capacity. Lanes are sized to hold
    /// their producer's entire schedule for the shard (computed up
    /// front), so producers never block mid-schedule — a producer
    /// stalled on one shard's full lane while another shard waits on
    /// that producer's open-but-empty lane would deadlock the
    /// conservative watermark merge.
    pub lane_capacity: usize,
}

impl Default for ParSimOptions {
    fn default() -> Self {
        ParSimOptions {
            producers: 4,
            lane_capacity: 64,
        }
    }
}

/// The external command source of one shard simulation: a mailbox
/// receiver whose lanes each deliver commands in non-decreasing time.
#[derive(Debug)]
pub(crate) struct ShardFeed {
    rx: MailboxReceiver<ShardCmd>,
    exhausted: bool,
}

impl ShardFeed {
    pub(crate) fn new(rx: MailboxReceiver<ShardCmd>) -> Self {
        ShardFeed {
            rx,
            exhausted: false,
        }
    }

    /// The effective time of a command, in nanoseconds (timeless
    /// commands act immediately).
    fn time_of(cmd: &ShardCmd) -> u64 {
        cmd.at().map_or(0, Instant::as_nanos)
    }

    /// Pops the earliest pending command if it is due at or before
    /// `local` (`None` = no local event pending, pop unconditionally).
    ///
    /// Blocks (bounded spin: every producer pushes a finite schedule and
    /// closes its lane) until the earliest pending time is *known* —
    /// i.e. no lane is simultaneously open and empty. Ties across lanes
    /// break by lane index, so the pop order is a pure function of the
    /// lane contents.
    pub(crate) fn pop_if_at_or_before(&mut self, local: Option<u64>) -> Option<ShardCmd> {
        if self.exhausted {
            return None;
        }
        let mut backoff = Backoff::new();
        loop {
            let mut min: Option<(u64, usize)> = None;
            let mut must_wait = false;
            for i in 0..self.rx.lane_count() {
                match self.rx.peek_lane(i) {
                    Some(cmd) => {
                        let t = Self::time_of(cmd);
                        if min.is_none_or(|(mt, _)| t < mt) {
                            min = Some((t, i));
                        }
                    }
                    None => {
                        if self.rx.lane_open(i) {
                            must_wait = true;
                        }
                    }
                }
            }
            if must_wait {
                backoff.snooze();
                continue;
            }
            return match min {
                None => {
                    self.exhausted = true;
                    None
                }
                Some((t, lane)) => {
                    if local.is_some_and(|lt| t > lt) {
                        None // the local event comes first
                    } else {
                        Some(self.rx.pop_lane(lane).expect("peeked lane head present"))
                    }
                }
            };
        }
    }
}

/// The per-producer activation schedule: every sporadic root task is
/// released at its minimum inter-arrival from its offset — the same law
/// the single-threaded simulator applies: the offset release happens
/// whenever `offset <= horizon` (the single-threaded driver arms it
/// unconditionally and its event filter is inclusive), re-releases only
/// while strictly before the horizon — and assigned to producer
/// `task.index() % producers`. Each list is (time, task), time-ordered.
fn producer_schedules(
    taskset: &TaskSet,
    producers: usize,
    horizon: Duration,
) -> Vec<Vec<(Instant, TaskId)>> {
    let end = Instant::ZERO + horizon;
    let mut schedules = vec![Vec::new(); producers];
    for t in taskset.tasks() {
        if t.spec().kind() != ActivationKind::Sporadic || taskset.in_degree(t.id()) != 0 {
            continue;
        }
        let schedule = &mut schedules[t.id().index() % producers];
        let period = t.spec().period();
        let first = Instant::ZERO + t.spec().release_offset();
        if first <= end {
            schedule.push((first, t.id()));
        }
        let mut at = first + period;
        while at < end {
            schedule.push((at, t.id()));
            at += period;
        }
    }
    for s in &mut schedules {
        s.sort_by_key(|&(at, task)| (at, task));
    }
    schedules
}

/// Runs `schedule` into the per-shard senders, retrying full lanes with
/// backoff, then drops the senders (closing this producer's lanes).
fn producer_main(
    schedule: Vec<(Instant, TaskId)>,
    mut senders: Vec<MailboxSender<ShardCmd>>,
    owner: &[usize],
) {
    let mut backoff = Backoff::new();
    for (at, task) in schedule {
        let mut cmd = ShardCmd::Activate { task, at };
        loop {
            match senders[owner[task.index()]].send(cmd) {
                Ok(()) => {
                    backoff.reset();
                    break;
                }
                Err(MailboxFull(v)) => {
                    cmd = v;
                    backoff.snooze();
                }
            }
        }
    }
}

/// Sums per-shard results into the whole-system result. Records are
/// ordered by (completion, task, seq) — a deterministic total order,
/// since each (task, seq) completes exactly once.
fn merge_results(results: Vec<SimResult>, workers: usize) -> SimResult {
    let mut merged = SimResult {
        records: Vec::new(),
        unfinished: 0,
        unfinished_missed: 0,
        engine_stats: yasmin_sched::EngineStats::default(),
        horizon: Instant::ZERO,
        sched_overhead_ns: yasmin_core::stats::Samples::new(),
        worker_busy: vec![Duration::ZERO; workers],
        energy: yasmin_core::energy::Energy::ZERO,
    };
    for r in results {
        merged.records.extend(r.records);
        merged.unfinished += r.unfinished;
        merged.unfinished_missed += r.unfinished_missed;
        merged.engine_stats.merge(&r.engine_stats);
        merged.horizon = r.horizon;
        merged.sched_overhead_ns.merge(&r.sched_overhead_ns);
        for (w, busy) in r.worker_busy.iter().enumerate() {
            merged.worker_busy[w] += *busy;
        }
        merged.energy += r.energy;
    }
    merged
        .records
        .sort_by_key(|r| (r.completion, r.task, r.seq));
    merged
}

/// Runs a partitioned task set with **one simulation thread per worker
/// shard** and [`ParSimOptions::producers`] producer threads feeding
/// sporadic activations through per-shard command mailboxes.
///
/// `config` must opt in via `Config::sharded_dispatch(true)`; the task
/// set must satisfy the sharding contract (no cross-shard DAG edges or
/// accelerators — see [`yasmin_sched::validate_sharding`]).
///
/// # Errors
///
/// Sharding-contract violations, engine construction errors, or a shard
/// simulation failing (driver protocol violation).
///
/// # Panics
///
/// Panics if a shard or producer thread itself panicked.
pub fn run_partitioned_parallel(
    taskset: Arc<TaskSet>,
    config: Config,
    sim: SimConfig,
    opts: ParSimOptions,
) -> Result<SimResult> {
    if opts.producers == 0 {
        return Err(Error::InvalidConfig(
            "the parallel driver needs at least one producer thread".into(),
        ));
    }
    let workers = config.workers();
    let shards = EngineShard::build_all(&taskset, &config)?;
    let schedules = producer_schedules(&taskset, opts.producers, sim.horizon);
    // Task -> owning shard, for producer routing.
    let owner: Vec<usize> = taskset
        .tasks()
        .iter()
        .map(|t| {
            t.spec()
                .assigned_worker()
                .expect("validated by build_all")
                .index()
        })
        .collect();

    // A lane must be able to hold its producer's *entire* schedule for
    // that shard: with bounded lanes, a producer blocked pushing into
    // one shard's full lane while another shard spins on that
    // producer's still-open-but-empty lane is a cross-shard deadlock
    // (the watermark wait is conservative). The schedules are
    // precomputed, so exact sizing costs nothing; `opts.lane_capacity`
    // only sets the floor.
    let mut per_lane = vec![vec![0usize; opts.producers]; workers];
    for (p, schedule) in schedules.iter().enumerate() {
        for &(_, task) in schedule {
            per_lane[owner[task.index()]][p] += 1;
        }
    }

    // One mailbox per shard, one lane per producer; re-group the senders
    // by producer so each producer thread owns one sender per shard.
    let mut receivers = Vec::with_capacity(workers);
    let mut by_producer: Vec<Vec<MailboxSender<ShardCmd>>> = (0..opts.producers)
        .map(|_| Vec::with_capacity(workers))
        .collect();
    for lanes in &per_lane {
        let cap = lanes
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(opts.lane_capacity);
        let (senders, rx) = mailbox::<ShardCmd>(opts.producers, cap);
        receivers.push(rx);
        for (p, tx) in senders.into_iter().enumerate() {
            by_producer[p].push(tx);
        }
    }

    let results: Vec<Result<SimResult>> = std::thread::scope(|scope| {
        let owner = &owner;
        let mut shard_handles = Vec::with_capacity(workers);
        for (shard, rx) in shards.into_iter().zip(receivers) {
            let worker = shard.worker();
            let mut cfg = sim.clone();
            // Per-shard sampler streams: deterministic given (seed,
            // worker), independent across shards.
            cfg.seed ^= u64::from(worker.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("yasmin-sim-shard-{worker}"))
                    .spawn_scoped(scope, move || {
                        Simulation::from_engine(shard.into_inner(), cfg)?
                            .run_with_feed(Some(ShardFeed::new(rx)))
                    })
                    .expect("spawning shard simulation thread"),
            );
        }
        let mut producer_handles = Vec::with_capacity(opts.producers);
        for (schedule, senders) in schedules.into_iter().zip(by_producer) {
            producer_handles.push(
                std::thread::Builder::new()
                    .name("yasmin-sim-producer".into())
                    .spawn_scoped(scope, move || producer_main(schedule, senders, owner))
                    .expect("spawning producer thread"),
            );
        }
        for p in producer_handles {
            p.join().expect("producer thread panicked");
        }
        shard_handles
            .into_iter()
            .map(|h| h.join().expect("shard simulation thread panicked"))
            .collect()
    });
    let results: Result<Vec<SimResult>> = results.into_iter().collect();
    Ok(merge_results(results?, workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::config::MappingScheme;
    use yasmin_core::ids::WorkerId;
    use yasmin_core::priority::PriorityPolicy;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn producer_schedules_cover_the_horizon() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        for i in 0..3u16 {
            let t = b
                .task_decl(
                    TaskSpec::sporadic(format!("s{i}"), ms(10))
                        .with_release_offset(ms(1))
                        .on_worker(WorkerId::new(0)),
                )
                .unwrap();
            b.version_decl(t, VersionSpec::new("v", ms(1))).unwrap();
        }
        let ts = b.build().unwrap();
        let schedules = producer_schedules(&ts, 2, ms(50));
        let total: usize = schedules.iter().map(Vec::len).sum();
        // Each task activates at 1, 11, 21, 31, 41 -> 5 each.
        assert_eq!(total, 15);
        // Round-robin: producer 0 gets tasks 0 and 2, producer 1 task 1.
        assert_eq!(schedules[0].len(), 10);
        assert_eq!(schedules[1].len(), 5);
        for s in &schedules {
            assert!(s.windows(2).all(|w| w[0].0 <= w[1].0), "time-ordered");
        }
    }

    #[test]
    fn zero_producers_rejected() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("t", ms(10)).on_worker(WorkerId::new(0)))
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", ms(1))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let cfg = Config::builder()
            .workers(1)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(true)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap();
        let err = run_partitioned_parallel(
            ts,
            cfg,
            SimConfig::uniform(1, ms(50)),
            ParSimOptions {
                producers: 0,
                lane_capacity: 8,
            },
        );
        assert!(err.is_err());
    }
}
