//! Multi-threaded partitioned simulation driver (PR 3), extended with
//! the cross-shard protocol loop (PR 5).
//!
//! Runs one simulation thread per engine shard — each owning the
//! independent per-worker scheduler state of
//! [`yasmin_sched::EngineShard`] — while **N producer threads** feed
//! sporadic activations through the lock-free command mailbox
//! (`yasmin_sync::mailbox`, one SPSC lane per producer per shard). This
//! exercises the exact concurrency topology of the sharded real-time
//! runtime: multiple producers racing into a mailbox drained by a single
//! shard owner.
//!
//! Task sets with **cross-shard DAG edges**, and runs with
//! [`ParSimOptions::steal`], execute the same `ShardCmd` protocol under
//! the deterministic in-process *protocol loop* (see
//! [`run_partitioned_parallel`]): producer threads still race into the
//! mailboxes, while the shard engines advance in one global
//! simulated-time order so routed activations and steal hand-offs land
//! at exact event boundaries — zero-lookahead cross-shard traffic would
//! serialise a free-running conservative merge behind null messages
//! anyway, and schedule validation needs reproducible traces.
//!
//! ## Determinism
//!
//! The result is **bit-identical to the single-threaded
//! [`crate::Simulation`]** for the same partitioned task set (modulo
//! shard-stamped job ids), no matter how the OS schedules the threads:
//!
//! * shards share no mutable state, so cross-shard thread timing cannot
//!   matter;
//! * each producer sends its commands in non-decreasing simulated time,
//!   so a lane's head is the lane's minimum;
//! * a shard processes a command only once every still-open lane has
//!   revealed its next command (the *watermark*), merging lanes and
//!   local events in simulated-time order — external commands win ties;
//! * randomised execution-time and kernel models sample in dispatch
//!   order, which is a global order the shards don't share: exact trace
//!   equality therefore holds for the deterministic models
//!   ([`crate::ExecModel::Wcet`], no kernel model). Each shard seeds its
//!   samplers from `seed ^ worker` so randomised runs are still
//!   per-shard deterministic.
//!
//! Two tie classes bound the equality claim. First, when a **sporadic
//! activation coincides exactly** with another event of the same shard
//! (e.g. its offset lands on the tick grid), the single-threaded
//! simulator breaks the tie by event *insertion order* — a
//! history-dependent global sequence the mailbox merge cannot observe —
//! while this driver applies its own fixed rule (external command
//! first). Second, under the protocol loop, when a **cross-shard
//! successor's release coincides exactly** with another event of the
//! destination shard (e.g. two workers' finishes land on the same
//! instant), the single-owner engine retires the whole same-timestamp
//! batch before one dispatch round while the routed token queues behind
//! the destination's already-scheduled event. Both drivers remain
//! individually deterministic in every case, but their traces may
//! differ at a tied instant. Keep sporadic offsets — and, for
//! cross-shard sets, WCETs — off each other's grid (odd sub-tick values
//! do it) when cross-checking traces; shard-local ties (tick vs
//! completion) are unaffected because each shard replays the
//! single-owner engine's own insertion order.

use crate::engine::{FaultEvent, SimConfig, Simulation};
use crate::exec::ExecSampler;
use crate::trace::{JobRecord, SimResult};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use yasmin_core::config::Config;
use yasmin_core::energy::Energy;
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{CoreId, TaskId, VersionId, WorkerId};
use yasmin_core::task::ActivationKind;
use yasmin_core::time::{Duration, Instant};
use yasmin_sched::{
    Action, ActionSink, EngineShard, Job, JobBatch, MsgEvent, RemoteActivation, ShardCmd,
    MAX_STEAL_BATCH,
};
use yasmin_sync::mailbox::{mailbox, MailboxFull, MailboxReceiver, MailboxSender};
use yasmin_sync::wait::Backoff;

/// Options of the multi-threaded driver.
#[derive(Debug, Clone, Copy)]
pub struct ParSimOptions {
    /// Producer threads feeding activations (≥ 1). Sporadic root tasks
    /// are distributed over producers round-robin by task index.
    pub producers: usize,
    /// Floor on each mailbox lane's capacity. Lanes are sized to hold
    /// their producer's entire schedule for the shard (computed up
    /// front), so producers never block mid-schedule — a producer
    /// stalled on one shard's full lane while another shard waits on
    /// that producer's open-but-empty lane would deadlock the
    /// conservative watermark merge.
    pub lane_capacity: usize,
    /// Enables work stealing between shards: at every event boundary an
    /// idle shard (no running slice, empty queue) adopts the most
    /// urgent accelerator-free ready job of the most loaded peer.
    /// Stealing (like cross-shard DAG edges) routes the run through the
    /// deterministic protocol loop — see
    /// [`run_partitioned_parallel`].
    pub steal: bool,
    /// Cap on the batch size of one steal exchange (clamped to
    /// [`yasmin_sched::MAX_STEAL_BATCH`]). At the default `1` every
    /// exchange moves a single job over [`ShardCmd::Stolen`] —
    /// bit-identical to the pre-batching protocol. Above `1` an idle
    /// thief takes up to half the victim's ready load in one
    /// [`ShardCmd::StolenBatch`] exchange, sized deterministically from
    /// the victim's queue length at the event boundary.
    pub steal_batch: usize,
}

impl Default for ParSimOptions {
    fn default() -> Self {
        ParSimOptions {
            producers: 4,
            lane_capacity: 64,
            steal: false,
            steal_batch: 1,
        }
    }
}

/// The external command source of one shard simulation: a mailbox
/// receiver whose lanes each deliver commands in non-decreasing time.
#[derive(Debug)]
pub(crate) struct ShardFeed {
    rx: MailboxReceiver<ShardCmd>,
    exhausted: bool,
}

impl ShardFeed {
    pub(crate) fn new(rx: MailboxReceiver<ShardCmd>) -> Self {
        ShardFeed {
            rx,
            exhausted: false,
        }
    }

    /// The effective time of a command, in nanoseconds (timeless
    /// commands act immediately).
    fn time_of(cmd: &ShardCmd) -> u64 {
        cmd.at().map_or(0, Instant::as_nanos)
    }

    /// The earliest pending (time, lane), blocking (bounded spin: every
    /// producer pushes a finite schedule and closes its lane) until
    /// that minimum is *known* — i.e. no lane is simultaneously open
    /// and empty. Ties across lanes break by lane index, so the result
    /// is a pure function of the lane contents. `None` once every lane
    /// is closed and drained.
    fn watermark(&mut self) -> Option<(u64, usize)> {
        if self.exhausted {
            return None;
        }
        let mut backoff = Backoff::new();
        loop {
            let mut min: Option<(u64, usize)> = None;
            let mut must_wait = false;
            for i in 0..self.rx.lane_count() {
                match self.rx.peek_lane(i) {
                    Some(cmd) => {
                        let t = Self::time_of(cmd);
                        if min.is_none_or(|(mt, _)| t < mt) {
                            min = Some((t, i));
                        }
                    }
                    None => {
                        if self.rx.lane_open(i) {
                            must_wait = true;
                        }
                    }
                }
            }
            if must_wait {
                backoff.snooze();
                continue;
            }
            if min.is_none() {
                self.exhausted = true;
            }
            return min;
        }
    }

    /// The earliest pending command's time without consuming it
    /// (blocking as [`ShardFeed::watermark`]); `None` when exhausted.
    pub(crate) fn peek_time(&mut self) -> Option<u64> {
        self.watermark().map(|(t, _)| t)
    }

    /// Pops the earliest pending command if it is due at or before
    /// `local` (`None` = no local event pending, pop unconditionally);
    /// blocks as [`ShardFeed::watermark`].
    pub(crate) fn pop_if_at_or_before(&mut self, local: Option<u64>) -> Option<ShardCmd> {
        let (t, lane) = self.watermark()?;
        if local.is_some_and(|lt| t > lt) {
            return None; // the local event comes first
        }
        Some(self.rx.pop_lane(lane).expect("peeked lane head present"))
    }
}

/// The per-producer activation schedule: every sporadic root task is
/// released at its minimum inter-arrival from its offset — the same law
/// the single-threaded simulator applies: the offset release happens
/// whenever `offset <= horizon` (the single-threaded driver arms it
/// unconditionally and its event filter is inclusive), re-releases only
/// while strictly before the horizon — and assigned to producer
/// `task.index() % producers`. Each list is (time, task), time-ordered.
fn producer_schedules(
    taskset: &TaskSet,
    producers: usize,
    horizon: Duration,
) -> Vec<Vec<(Instant, TaskId)>> {
    let end = Instant::ZERO + horizon;
    let mut schedules = vec![Vec::new(); producers];
    for t in taskset.tasks() {
        if t.spec().kind() != ActivationKind::Sporadic || taskset.in_degree(t.id()) != 0 {
            continue;
        }
        let schedule = &mut schedules[t.id().index() % producers];
        let period = t.spec().period();
        let first = Instant::ZERO + t.spec().release_offset();
        if first <= end {
            schedule.push((first, t.id()));
        }
        let mut at = first + period;
        while at < end {
            schedule.push((at, t.id()));
            at += period;
        }
    }
    for s in &mut schedules {
        s.sort_by_key(|&(at, task)| (at, task));
    }
    schedules
}

/// Runs `schedule` into the per-shard senders, retrying full lanes with
/// backoff, then drops the senders (closing this producer's lanes).
fn producer_main(
    schedule: Vec<(Instant, TaskId)>,
    mut senders: Vec<MailboxSender<ShardCmd>>,
    owner: &[usize],
) {
    let mut backoff = Backoff::new();
    for (at, task) in schedule {
        let mut cmd = ShardCmd::Activate { task, at };
        loop {
            match senders[owner[task.index()]].send(cmd) {
                Ok(()) => {
                    backoff.reset();
                    break;
                }
                Err(MailboxFull(v)) => {
                    cmd = v;
                    backoff.snooze();
                }
            }
        }
    }
}

/// Sums per-shard results into the whole-system result. Records are
/// ordered by (completion, task, seq) — a deterministic total order,
/// since each (task, seq) completes exactly once.
fn merge_results(results: Vec<SimResult>, workers: usize) -> SimResult {
    let mut merged = SimResult {
        records: Vec::new(),
        unfinished: 0,
        unfinished_missed: 0,
        engine_stats: yasmin_sched::EngineStats::default(),
        horizon: Instant::ZERO,
        sched_overhead_ns: yasmin_core::stats::Samples::new(),
        worker_busy: vec![Duration::ZERO; workers],
        energy: yasmin_core::energy::Energy::ZERO,
    };
    for r in results {
        merged.records.extend(r.records);
        merged.unfinished += r.unfinished;
        merged.unfinished_missed += r.unfinished_missed;
        merged.engine_stats.merge(&r.engine_stats);
        merged.horizon = r.horizon;
        merged.sched_overhead_ns.merge(&r.sched_overhead_ns);
        for (w, busy) in r.worker_busy.iter().enumerate() {
            merged.worker_busy[w] += *busy;
        }
        merged.energy += r.energy;
    }
    merged
        .records
        .sort_by_key(|r| (r.completion, r.task, r.seq));
    merged
}

/// Per-producer activation schedules plus the per-shard mailboxes they
/// feed, senders regrouped by producer. Shared by both drivers.
struct ProducerFeeds {
    schedules: Vec<Vec<(Instant, TaskId)>>,
    owner: Vec<usize>,
    receivers: Vec<MailboxReceiver<ShardCmd>>,
    by_producer: Vec<Vec<MailboxSender<ShardCmd>>>,
}

fn build_producer_feeds(
    taskset: &TaskSet,
    opts: &ParSimOptions,
    horizon: Duration,
    workers: usize,
) -> ProducerFeeds {
    let schedules = producer_schedules(taskset, opts.producers, horizon);
    // Task -> owning shard, for producer routing.
    let owner: Vec<usize> = taskset
        .tasks()
        .iter()
        .map(|t| {
            t.spec()
                .assigned_worker()
                .expect("validated by build_all")
                .index()
        })
        .collect();

    // A lane must be able to hold its producer's *entire* schedule for
    // that shard: with bounded lanes, a producer blocked pushing into
    // one shard's full lane while another shard spins on that
    // producer's still-open-but-empty lane is a cross-shard deadlock
    // (the watermark wait is conservative). The schedules are
    // precomputed, so exact sizing costs nothing; `opts.lane_capacity`
    // only sets the floor.
    let mut per_lane = vec![vec![0usize; opts.producers]; workers];
    for (p, schedule) in schedules.iter().enumerate() {
        for &(_, task) in schedule {
            per_lane[owner[task.index()]][p] += 1;
        }
    }

    // One mailbox per shard, one lane per producer; re-group the senders
    // by producer so each producer thread owns one sender per shard.
    let mut receivers = Vec::with_capacity(workers);
    let mut by_producer: Vec<Vec<MailboxSender<ShardCmd>>> = (0..opts.producers)
        .map(|_| Vec::with_capacity(workers))
        .collect();
    for lanes in &per_lane {
        let cap = lanes
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(opts.lane_capacity);
        let (senders, rx) = mailbox::<ShardCmd>(opts.producers, cap);
        receivers.push(rx);
        for (p, tx) in senders.into_iter().enumerate() {
            by_producer[p].push(tx);
        }
    }
    ProducerFeeds {
        schedules,
        owner,
        receivers,
        by_producer,
    }
}

/// The receiving task of a message-plane event (its owner routes it).
fn msg_dst(ev: &yasmin_sched::MsgEvent) -> TaskId {
    match *ev {
        yasmin_sched::MsgEvent::HighPosted { dst, .. }
        | yasmin_sched::MsgEvent::HighDrained { dst } => dst,
    }
}

/// `true` when some DAG edge's endpoints live on different workers.
fn has_cross_shard_edges(taskset: &TaskSet) -> bool {
    taskset.edges().iter().any(|e| {
        let w = |t: TaskId| taskset.tasks()[t.index()].spec().assigned_worker();
        w(e.src) != w(e.dst)
    })
}

/// Runs a partitioned task set with **one simulation thread per worker
/// shard** and [`ParSimOptions::producers`] producer threads feeding
/// sporadic activations through per-shard command mailboxes.
///
/// `config` must opt in via `Config::sharded_dispatch(true)`; the task
/// set must satisfy the sharding contract (accelerators within one
/// worker — see [`yasmin_sched::validate_sharding`]).
///
/// Task sets whose DAG edges **cross shards**, and runs with
/// [`ParSimOptions::steal`] enabled, are executed by the deterministic
/// *protocol loop* instead of one free-running thread per shard: the
/// producer threads still race their activations into the mailbox
/// lanes, but the shard engines advance in one global simulated-time
/// order, exchanging [`ShardCmd::CrossActivate`] tokens and steal
/// hand-offs at exact event boundaries. Cross-shard activation routing
/// has **zero lookahead** (a token sent at time *t* can alter the
/// destination shard's behaviour at that same *t*), so a conservative
/// free-running merge would serialise behind null messages anyway —
/// the protocol loop keeps the run reproducible and bit-comparable to
/// the single-owner reference, which is what schedule validation
/// needs. The protocol loop supports non-preemptive configurations
/// without kernel models or mode schedules.
///
/// # Errors
///
/// Sharding-contract violations, engine construction errors, a shard
/// simulation failing (driver protocol violation), or an unsupported
/// protocol-loop configuration (preemption, kernel model, mode
/// schedule) for cross-shard/stealing runs.
///
/// # Panics
///
/// Panics if a shard or producer thread itself panicked.
pub fn run_partitioned_parallel(
    taskset: Arc<TaskSet>,
    config: Config,
    sim: SimConfig,
    opts: ParSimOptions,
) -> Result<SimResult> {
    if opts.producers == 0 {
        return Err(Error::InvalidConfig(
            "the parallel driver needs at least one producer thread".into(),
        ));
    }
    let workers = config.workers();
    let shards = EngineShard::build_all(&taskset, &config)?;
    if opts.steal || has_cross_shard_edges(&taskset) {
        return run_protocol(&taskset, &config, &sim, &opts, shards);
    }
    let ProducerFeeds {
        schedules,
        owner,
        receivers,
        by_producer,
    } = build_producer_feeds(&taskset, &opts, sim.horizon, workers);

    let results: Vec<Result<SimResult>> = std::thread::scope(|scope| {
        let owner = &owner;
        let mut shard_handles = Vec::with_capacity(workers);
        for (shard, rx) in shards.into_iter().zip(receivers) {
            let worker = shard.worker();
            let mut cfg = sim.clone();
            // Per-shard sampler streams: deterministic given (seed,
            // worker), independent across shards.
            cfg.seed ^= u64::from(worker.raw()).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // Message events are owned by the receiving task's shard,
            // exactly like cross-shard activation tokens.
            cfg.msg_schedule
                .retain(|(_, ev)| owner[msg_dst(ev).index()] == worker.index());
            // Fault injections land on the shard owning the target task.
            cfg.fault_schedule
                .retain(|(_, ev)| owner[ev.task().index()] == worker.index());
            shard_handles.push(
                std::thread::Builder::new()
                    .name(format!("yasmin-sim-shard-{worker}"))
                    .spawn_scoped(scope, move || {
                        Simulation::from_engine(shard.into_inner(), cfg)?
                            .run_with_feed(Some(ShardFeed::new(rx)))
                    })
                    .expect("spawning shard simulation thread"),
            );
        }
        let mut producer_handles = Vec::with_capacity(opts.producers);
        for (schedule, senders) in schedules.into_iter().zip(by_producer) {
            producer_handles.push(
                std::thread::Builder::new()
                    .name("yasmin-sim-producer".into())
                    .spawn_scoped(scope, move || producer_main(schedule, senders, owner))
                    .expect("spawning producer thread"),
            );
        }
        for p in producer_handles {
            p.join().expect("producer thread panicked");
        }
        shard_handles
            .into_iter()
            .map(|h| h.join().expect("shard simulation thread panicked"))
            .collect()
    });
    let results: Result<Vec<SimResult>> = results.into_iter().collect();
    Ok(merge_results(results?, workers))
}

/// One in-flight slice of a protocol-loop shard (non-preemptive: a
/// dispatched job runs to its modelled finish).
#[derive(Debug, Clone, Copy)]
struct ProtoSlice {
    job: Job,
    version: VersionId,
    start: Instant,
    finish: Instant,
}

/// Protocol-loop state of one shard.
struct ProtoShard {
    shard: EngineShard,
    feed: ShardFeed,
    exec: ExecSampler,
    slice: Option<ProtoSlice>,
    records: Vec<JobRecord>,
    busy: Duration,
}

/// A protocol-loop event targeting one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PEv {
    /// Scheduler tick on the shared gcd grid.
    Tick,
    /// The shard's worker finishes its running slice.
    Finish { job: yasmin_core::ids::JobId },
    /// A cross-shard DAG token routed from a peer at its completion
    /// time.
    Cross { edge: u32, graph_release: Instant },
    /// A scheduled message-plane event ([`SimConfig::msg_schedule`])
    /// delivered to the shard owning the receiving task.
    Msg { ev: MsgEvent },
    /// A scheduled fault injection ([`SimConfig::fault_schedule`])
    /// delivered to the shard owning the target task.
    Fault { ev: FaultEvent },
}

#[derive(Debug)]
struct PItem {
    time: u64,
    seq: u64,
    shard: usize,
    ev: PEv,
}

impl PartialEq for PItem {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for PItem {}
impl Ord for PItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for PItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The deterministic multi-shard protocol loop: all shard engines
/// advance in one global simulated-time order, exchanging cross-shard
/// tokens and steal hand-offs as [`ShardCmd`]s at exact event
/// boundaries, while producer threads feed sporadic activations
/// through the per-shard mailboxes exactly as in the free-running
/// driver.
struct Protocol<'a> {
    sim: &'a SimConfig,
    horizon: Instant,
    tick: Duration,
    steal: bool,
    steal_batch: usize,
    states: Vec<ProtoShard>,
    heap: BinaryHeap<Reverse<PItem>>,
    seq: u64,
    sink: ActionSink,
    outbox: Vec<RemoteActivation>,
    accel_busy: Vec<Duration>,
    /// Wall-clock samples of every engine call, recorded when
    /// `SimConfig::measure_engine_time` is set — the same measured
    /// scheduler-overhead metric the other drivers report.
    overhead_ns: yasmin_core::stats::Samples,
}

impl Protocol<'_> {
    fn push_event(&mut self, at: Instant, shard: usize, ev: PEv) {
        self.seq += 1;
        self.heap.push(Reverse(PItem {
            time: at.as_nanos(),
            seq: self.seq,
            shard,
            ev,
        }));
    }

    /// Reference work → wall time on `worker`'s core.
    fn wall_time(&self, worker: WorkerId, reference: Duration) -> Duration {
        let (num, den) = self
            .sim
            .platform
            .class_of(CoreId::new(worker.raw()))
            .speed();
        reference.scale(den, num)
    }

    /// Models the engine's dispatch: samples the execution demand and
    /// schedules the finish event.
    fn model_dispatch(&mut self, s: usize, at: Instant, job: Job, version: VersionId) {
        debug_assert!(self.states[s].slice.is_none(), "worker already busy");
        let worker = self.states[s].shard.worker();
        let wcet = self.states[s].shard.taskset().tasks()[job.task.index()].versions()
            [version.index()]
        .wcet();
        let d = self.states[s].exec.sample(wcet);
        let start = at + self.sim.overheads.dispatch;
        let finish = start + self.wall_time(worker, d);
        self.states[s].slice = Some(ProtoSlice {
            job,
            version,
            start,
            finish,
        });
        self.push_event(finish, s, PEv::Finish { job: job.id });
    }

    fn apply_actions(&mut self, s: usize, at: Instant, sink: &ActionSink) {
        for &a in sink.as_slice() {
            match a {
                Action::Dispatch { job, version, .. } => self.model_dispatch(s, at, job, version),
                Action::Boost { .. } => {}
                Action::Preempt { .. } => {
                    unreachable!("the protocol loop runs non-preemptive configurations")
                }
            }
        }
    }

    /// Routes everything the last engine round left in shard `s`'s
    /// outbox: each cross-shard token becomes a [`PEv::Cross`] event on
    /// the owning shard at time `at`.
    fn settle_outbox(&mut self, s: usize, at: Instant) {
        let mut outbox = std::mem::take(&mut self.outbox);
        self.states[s].shard.drain_outbox_into(&mut outbox);
        for ra in outbox.drain(..) {
            self.push_event(
                at,
                ra.worker.index(),
                PEv::Cross {
                    edge: ra.edge,
                    graph_release: ra.graph_release,
                },
            );
        }
        self.outbox = outbox;
    }

    /// One engine interaction of shard `s` through the command
    /// protocol, with action modelling and outbox routing.
    fn interact(&mut self, s: usize, cmd: ShardCmd) -> Result<()> {
        let at = cmd.at().unwrap_or(self.horizon);
        let mut sink = std::mem::take(&mut self.sink);
        sink.clear();
        let res = if self.sim.measure_engine_time {
            let t0 = std::time::Instant::now();
            let res = self.states[s].shard.process_into(cmd, &mut sink);
            self.overhead_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
            res
        } else {
            self.states[s].shard.process_into(cmd, &mut sink)
        };
        if res.is_ok() {
            self.apply_actions(s, at, &sink);
        }
        self.sink = sink;
        res?;
        self.settle_outbox(s, at);
        Ok(())
    }

    /// Books shard `s`'s finish at `now` and hands the completion back
    /// to the engine.
    fn finish(&mut self, s: usize, now: Instant, job: yasmin_core::ids::JobId) -> Result<()> {
        let worker = self.states[s].shard.worker();
        // Without preemption a finish can only be stale when the slice
        // was crashed by a scheduled fault; job ids are unique, so the
        // id mismatch (or an already-empty worker) identifies it.
        if self.states[s].slice.is_none_or(|sl| sl.job.id != job) {
            return Ok(());
        }
        let slice = self.states[s].slice.take().expect("checked above");
        let wall = now.saturating_since(slice.start);
        self.states[s].busy += wall;
        if let Some(a) = self.states[s].shard.taskset().tasks()[slice.job.task.index()].versions()
            [slice.version.index()]
        .accel()
        {
            self.accel_busy[a.index()] += wall;
        }
        let j = slice.job;
        self.states[s].records.push(JobRecord {
            job: j.id,
            task: j.task,
            seq: j.seq,
            release: j.release,
            graph_release: j.graph_release,
            abs_deadline: j.abs_deadline,
            first_start: slice.start,
            completion: now,
            version: slice.version,
            worker,
            preemptions: 0,
        });
        self.interact(
            s,
            ShardCmd::JobCompleted {
                worker,
                job,
                at: now,
            },
        )
    }

    /// Delivers one scheduled fault to shard `s` — the protocol-loop
    /// analogue of `Simulation::apply_fault`, with the same policy:
    /// overruns and crashes are no-ops when the task is not running,
    /// bursts tolerate non-activatable targets.
    fn fault(&mut self, s: usize, now: Instant, ev: FaultEvent) -> Result<()> {
        match ev {
            FaultEvent::Overrun { task } => {
                let mut sink = std::mem::take(&mut self.sink);
                sink.clear();
                let _ = self.states[s].shard.force_overrun(task, now, &mut sink);
                self.apply_actions(s, now, &sink);
                self.sink = sink;
                self.settle_outbox(s, now);
            }
            FaultEvent::Crash { task } => {
                // Non-preemptive: the running slice is the only
                // candidate. Its already-scheduled finish event goes
                // stale (see `finish`).
                if self.states[s]
                    .slice
                    .is_none_or(|sl| sl.job.task != task || now > sl.finish)
                {
                    return Ok(());
                }
                let slice = self.states[s].slice.take().expect("checked above");
                let worker = self.states[s].shard.worker();
                let wall = now
                    .saturating_since(slice.start)
                    .min(slice.finish.saturating_since(slice.start));
                self.states[s].busy += wall;
                if let Some(a) = self.states[s].shard.taskset().tasks()[slice.job.task.index()]
                    .versions()[slice.version.index()]
                .accel()
                {
                    self.accel_busy[a.index()] += wall;
                }
                // No completion record — a failed job never completed.
                let mut sink = std::mem::take(&mut self.sink);
                sink.clear();
                let res =
                    self.states[s]
                        .shard
                        .on_job_failed_into(worker, slice.job.id, now, &mut sink);
                if res.is_ok() {
                    self.apply_actions(s, now, &sink);
                }
                self.sink = sink;
                res?;
                self.settle_outbox(s, now);
            }
            FaultEvent::Burst { task, count } => {
                for _ in 0..count {
                    let mut sink = std::mem::take(&mut self.sink);
                    sink.clear();
                    let res = self.states[s]
                        .shard
                        .process_into(ShardCmd::Activate { task, at: now }, &mut sink);
                    if res.is_ok() {
                        self.apply_actions(s, now, &sink);
                    }
                    self.sink = sink;
                    self.settle_outbox(s, now);
                }
            }
        }
        Ok(())
    }

    /// At an event boundary, every fully idle shard (no slice, empty
    /// queue) adopts work from the most loaded *stealable* peer (one
    /// whose probe yields a hint; ties towards the lowest worker
    /// index); rounds repeat until no steal succeeds. Deterministic by
    /// construction. With `steal_batch == 1` each exchange moves the
    /// single most urgent job ([`ShardCmd::Stolen`], the pre-batching
    /// protocol verbatim); above `1` it moves up to half the victim's
    /// ready load in one [`ShardCmd::StolenBatch`] — the batch size
    /// depends only on the victim's queue length, so reruns stay
    /// bit-identical.
    fn steal_pass(&mut self, at: Instant) -> Result<()> {
        let n = self.states.len();
        let mut hints = Vec::new();
        loop {
            let mut stole = false;
            for thief in 0..n {
                if self.states[thief].slice.is_some() || self.states[thief].shard.ready_len() > 0 {
                    continue;
                }
                let victim = (0..n)
                    .filter(|&v| v != thief)
                    .filter(|&v| self.states[v].shard.try_steal().is_some())
                    .map(|v| (self.states[v].shard.ready_len(), v))
                    .max_by_key(|&(load, v)| (load, Reverse(v)));
                let Some((load, v)) = victim else { continue };
                if self.steal_batch <= 1 {
                    let Some(hint) = self.states[v].shard.try_steal() else {
                        continue;
                    };
                    let Some(job) = self.states[v].shard.release_stolen(hint) else {
                        continue;
                    };
                    self.interact(thief, ShardCmd::Stolen { job, at })?;
                } else {
                    // Half the load gap (the thief is empty, so the gap
                    // is the victim's whole ready load), capped by the
                    // option and the protocol batch limit — the same
                    // sizing rule the free-running runtime derives from
                    // its load board.
                    let k = (load / 2).clamp(1, self.steal_batch.min(MAX_STEAL_BATCH));
                    if self.states[v].shard.try_steal_batch(k, &mut hints) == 0 {
                        continue;
                    }
                    let mut jobs = JobBatch::new();
                    if self.states[v].shard.release_stolen_batch(&hints, &mut jobs) == 0 {
                        continue;
                    }
                    self.interact(thief, ShardCmd::StolenBatch { jobs, at })?;
                }
                stole = true;
            }
            if !stole {
                return Ok(());
            }
        }
    }

    fn run(&mut self) -> Result<()> {
        // Start every shard at time zero and arm the shared tick grid.
        let n = self.states.len();
        for s in 0..n {
            let mut sink = std::mem::take(&mut self.sink);
            sink.clear();
            self.states[s].shard.start_into(Instant::ZERO, &mut sink)?;
            self.apply_actions(s, Instant::ZERO, &sink);
            self.sink = sink;
            self.settle_outbox(s, Instant::ZERO);
        }
        for s in 0..n {
            self.push_event(Instant::ZERO + self.tick, s, PEv::Tick);
        }
        // Arm the scheduled message-plane events on their owning
        // shards, after the tick train like the single-owner driver
        // (ties at a tick instant resolve tick-first in both).
        for i in 0..self.sim.msg_schedule.len() {
            let (offset, ev) = self.sim.msg_schedule[i];
            let dst = msg_dst(&ev);
            let s = self.states[0].shard.taskset().tasks()[dst.index()]
                .spec()
                .assigned_worker()
                .expect("validated by build_all")
                .index();
            self.push_event(Instant::ZERO + offset, s, PEv::Msg { ev });
        }
        // Arm the fault schedule on the shard owning each target task,
        // after the message events like the single-owner driver.
        for i in 0..self.sim.fault_schedule.len() {
            let (offset, ev) = self.sim.fault_schedule[i];
            let s = self.states[0].shard.taskset().tasks()[ev.task().index()]
                .spec()
                .assigned_worker()
                .expect("validated by build_all")
                .index();
            self.push_event(Instant::ZERO + offset, s, PEv::Fault { ev });
        }
        if self.steal {
            self.steal_pass(Instant::ZERO)?;
        }

        loop {
            // One globally-earliest item per iteration: the minimum
            // over every shard's external-command watermark and the
            // event heap, re-evaluated after each application (applying
            // anything can schedule earlier finish events or cross
            // tokens). External commands win exact ties with local
            // events, like the single-threaded feed merge; command
            // ties across shards break by worker index.
            let local_t = self
                .heap
                .peek()
                .map(|Reverse(item)| item.time)
                .filter(|&t| Instant::from_nanos(t) <= self.horizon);
            let mut due_cmd: Option<(u64, usize)> = None;
            for s in 0..n {
                if let Some(t) = self.states[s].feed.peek_time() {
                    if due_cmd.is_none_or(|(bt, _)| t < bt) {
                        due_cmd = Some((t, s));
                    }
                }
            }
            if let Some((tc, s)) = due_cmd {
                if local_t.is_none_or(|lt| tc <= lt) {
                    let cmd = self.states[s]
                        .feed
                        .pop_if_at_or_before(Some(tc))
                        .expect("peeked command present");
                    let at = cmd.at().unwrap_or(Instant::ZERO);
                    if at <= self.horizon {
                        self.interact(s, cmd)?;
                        if self.steal {
                            self.steal_pass(at)?;
                        }
                    }
                    // Past-horizon commands are drained but not
                    // simulated (producers must be unblocked).
                    continue;
                }
            }
            if local_t.is_none() {
                break;
            }
            let Some(Reverse(item)) = self.heap.pop() else {
                break;
            };
            let now = Instant::from_nanos(item.time);
            let s = item.shard;
            match item.ev {
                PEv::Tick => {
                    self.interact(s, ShardCmd::Tick { at: now })?;
                    let next = now + self.tick;
                    // Horizon exclusive for new releases, like the
                    // single-threaded driver.
                    if next < self.horizon {
                        self.push_event(next, s, PEv::Tick);
                    }
                }
                PEv::Finish { job } => self.finish(s, now, job)?,
                PEv::Cross {
                    edge,
                    graph_release,
                } => self.interact(
                    s,
                    ShardCmd::CrossActivate {
                        edge,
                        graph_release,
                        at: now,
                    },
                )?,
                PEv::Msg { ev } => {
                    let cmd = match ev {
                        MsgEvent::HighPosted { dst, ceiling } => ShardCmd::MsgHigh {
                            dst,
                            ceiling,
                            at: now,
                        },
                        MsgEvent::HighDrained { dst } => ShardCmd::MsgDrained { dst, at: now },
                    };
                    self.interact(s, cmd)?;
                }
                PEv::Fault { ev } => self.fault(s, now, ev)?,
            }
            if self.steal {
                self.steal_pass(now)?;
            }
        }
        Ok(())
    }

    /// Folds the per-shard states into the whole-system [`SimResult`],
    /// with the same accounting rules as the single-threaded driver.
    fn into_result(mut self) -> SimResult {
        let horizon_dur = self.sim.horizon;
        let horizon = self.horizon;
        let mut records = Vec::new();
        let mut engine_stats = yasmin_sched::EngineStats::default();
        let mut worker_busy = Vec::with_capacity(self.states.len());
        let mut unfinished = 0usize;
        let mut unfinished_missed = 0usize;
        let mut energy = Energy::ZERO;
        let accels: Vec<_> = self
            .states
            .first()
            .map(|st| st.shard.taskset().accels().to_vec())
            .unwrap_or_default();
        for (w, st) in self.states.iter_mut().enumerate() {
            let mut busy = st.busy;
            if let Some(slice) = st.slice {
                // Account the still-running slice up to the horizon.
                busy += horizon
                    .saturating_since(slice.start)
                    .min(slice.finish.saturating_since(slice.start));
                unfinished += 1;
                if slice.job.deadline_missed_at(horizon) {
                    unfinished_missed += 1;
                }
            }
            unfinished += st.shard.ready_len();
            records.append(&mut st.records);
            engine_stats.merge(st.shard.stats());
            let class = self.sim.platform.class_of(CoreId::new(w as u16));
            energy += class.active_power().energy_over(busy);
            energy += class
                .idle_power()
                .energy_over(horizon_dur.saturating_sub(busy));
            worker_busy.push(busy);
        }
        for (a, spec) in accels.iter().enumerate() {
            energy += spec.active_power().energy_over(self.accel_busy[a]);
        }
        records.sort_by_key(|r| (r.completion, r.task, r.seq));
        SimResult {
            records,
            unfinished,
            unfinished_missed,
            engine_stats,
            horizon,
            sched_overhead_ns: self.overhead_ns,
            worker_busy,
            energy,
        }
    }
}

/// Runs the cross-shard/stealing protocol loop; see
/// [`run_partitioned_parallel`].
fn run_protocol(
    taskset: &Arc<TaskSet>,
    config: &Config,
    sim: &SimConfig,
    opts: &ParSimOptions,
    shards: Vec<EngineShard>,
) -> Result<SimResult> {
    if config.preemption() {
        return Err(Error::InvalidConfig(
            "cross-shard/stealing simulation is non-preemptive: build the Config \
             with .preemption(false)"
                .into(),
        ));
    }
    if sim.kernel.is_some() || !sim.mode_schedule.is_empty() {
        return Err(Error::InvalidConfig(
            "cross-shard/stealing simulation supports neither kernel models nor \
             mode schedules yet"
                .into(),
        ));
    }
    let workers = config.workers();
    let tick = shards[0].tick_period();
    let ProducerFeeds {
        schedules,
        owner,
        receivers,
        by_producer,
    } = build_producer_feeds(taskset, opts, sim.horizon, workers);

    std::thread::scope(|scope| {
        let owner = &owner;
        let mut producer_handles = Vec::with_capacity(opts.producers);
        for (schedule, senders) in schedules.into_iter().zip(by_producer) {
            producer_handles.push(
                std::thread::Builder::new()
                    .name("yasmin-sim-producer".into())
                    .spawn_scoped(scope, move || producer_main(schedule, senders, owner))
                    .expect("spawning producer thread"),
            );
        }
        let states = shards
            .into_iter()
            .zip(receivers)
            .map(|(shard, rx)| {
                let w = u64::from(shard.worker().raw());
                let seed = (sim.seed ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ 0xE5E5;
                ProtoShard {
                    shard,
                    feed: ShardFeed::new(rx),
                    exec: ExecSampler::new(sim.exec, seed),
                    slice: None,
                    records: Vec::new(),
                    busy: Duration::ZERO,
                }
            })
            .collect();
        let mut protocol = Protocol {
            sim,
            horizon: Instant::ZERO + sim.horizon,
            tick,
            steal: opts.steal,
            steal_batch: opts.steal_batch,
            states,
            heap: BinaryHeap::new(),
            seq: 0,
            sink: ActionSink::new(),
            outbox: Vec::new(),
            accel_busy: vec![Duration::ZERO; taskset.accels().len()],
            overhead_ns: yasmin_core::stats::Samples::new(),
        };
        let res = protocol.run();
        for p in producer_handles {
            p.join().expect("producer thread panicked");
        }
        res.map(|()| protocol.into_result())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::config::MappingScheme;
    use yasmin_core::ids::WorkerId;
    use yasmin_core::priority::PriorityPolicy;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn producer_schedules_cover_the_horizon() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        for i in 0..3u16 {
            let t = b
                .task_decl(
                    TaskSpec::sporadic(format!("s{i}"), ms(10))
                        .with_release_offset(ms(1))
                        .on_worker(WorkerId::new(0)),
                )
                .unwrap();
            b.version_decl(t, VersionSpec::new("v", ms(1))).unwrap();
        }
        let ts = b.build().unwrap();
        let schedules = producer_schedules(&ts, 2, ms(50));
        let total: usize = schedules.iter().map(Vec::len).sum();
        // Each task activates at 1, 11, 21, 31, 41 -> 5 each.
        assert_eq!(total, 15);
        // Round-robin: producer 0 gets tasks 0 and 2, producer 1 task 1.
        assert_eq!(schedules[0].len(), 10);
        assert_eq!(schedules[1].len(), 5);
        for s in &schedules {
            assert!(s.windows(2).all(|w| w[0].0 <= w[1].0), "time-ordered");
        }
    }

    #[test]
    fn zero_producers_rejected() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let t = b
            .task_decl(TaskSpec::periodic("t", ms(10)).on_worker(WorkerId::new(0)))
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", ms(1))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let cfg = Config::builder()
            .workers(1)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(true)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap();
        let err = run_partitioned_parallel(
            ts,
            cfg,
            SimConfig::uniform(1, ms(50)),
            ParSimOptions {
                producers: 0,
                lane_capacity: 8,
                ..ParSimOptions::default()
            },
        );
        assert!(err.is_err());
    }
}
