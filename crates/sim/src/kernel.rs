//! OS kernel wake-up latency models.
//!
//! Table 2 of the paper compares cyclictest latencies on
//! Linux+PREEMPT_RT 4.14-rt63 and LitmusRT 4.9.30 under stress-ng load.
//! Those kernels are not available in this reproduction environment, so
//! each becomes a *latency distribution*: a base wake-up cost, a
//! load-sensitive component, and a heavy tail. Parameters are calibrated
//! from the paper's reported `<min, max, avg>` triples (documented in
//! EXPERIMENTS.md); what the middleware *adds on top* is measured from our
//! own scheduler implementation, so the YASMIN-vs-native deltas are
//! produced, not transcribed.
//!
//! The model: `latency = base + load·stress + Exp(mean_jitter)`, with a
//! small probability of a tail spike drawn uniformly up to `tail_max`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use yasmin_core::time::Duration;

/// Which kernel the platform boots (§4.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum KernelKind {
    /// Vanilla Linux without real-time patches ("only soft-real-time
    /// applications can be enforced on a vanilla Linux", §1).
    VanillaLinux,
    /// Linux 4.14-rt63 with the PREEMPT_RT patch set.
    PreemptRt,
    /// LitmusRT 4.9.30 with the GSN-EDF plugin.
    LitmusGsnEdf,
    /// LitmusRT 4.9.30 with the P-RES (partitioned reservation) plugin —
    /// the paper measures it an order of magnitude slower.
    LitmusPres,
}

impl KernelKind {
    /// Display label matching the paper's Table 2 rows.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            KernelKind::VanillaLinux => "Linux (vanilla)",
            KernelKind::PreemptRt => "Linux+PREEMPT_RT 4.14.134-rt63",
            KernelKind::LitmusGsnEdf => "LitmusRT 4.9.30 (GSN-EDF)",
            KernelKind::LitmusPres => "LitmusRT 4.9.30 (P-RES)",
        }
    }
}

/// Calibrated latency-distribution parameters (all microseconds except
/// the probability).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelParams {
    /// Minimum wake-up cost with no load.
    pub base_us: f64,
    /// Upper bound of the uniform load-dependent component, scaled by the
    /// stress intensity (0–1); a wake-up that slips between stressor
    /// bursts pays almost nothing, hence uniform rather than additive.
    pub load_us: f64,
    /// Mean of the exponential jitter component.
    pub jitter_mean_us: f64,
    /// Probability of a tail spike per sample.
    pub tail_prob: f64,
    /// Upper bound of the uniform tail spike.
    pub tail_max_us: f64,
}

impl KernelKind {
    /// Calibrated parameters reproducing the ordering and rough
    /// magnitudes of Table 2 under full stress.
    #[must_use]
    pub const fn params(self) -> KernelParams {
        match self {
            // Paper (RTapps row): <176, 1550, 463>.
            KernelKind::PreemptRt => KernelParams {
                base_us: 175.0,
                load_us: 450.0,
                jitter_mean_us: 60.0,
                tail_prob: 0.003,
                tail_max_us: 420.0,
            },
            // Paper (RTapps row): <33, 222, 74>.
            KernelKind::LitmusGsnEdf => KernelParams {
                base_us: 33.0,
                load_us: 50.0,
                jitter_mean_us: 16.0,
                tail_prob: 0.003,
                tail_max_us: 60.0,
            },
            // Paper (litmus+P-RES row): <988, 1206, 1027> — a reservation
            // server with a high fixed polling cost and little spread.
            KernelKind::LitmusPres => KernelParams {
                base_us: 985.0,
                load_us: 40.0,
                jitter_mean_us: 20.0,
                tail_prob: 0.002,
                tail_max_us: 60.0,
            },
            // Vanilla Linux: similar base to PREEMPT_RT but a far heavier
            // tail under load (no priority inheritance in the fast path).
            KernelKind::VanillaLinux => KernelParams {
                base_us: 60.0,
                load_us: 450.0,
                jitter_mean_us: 250.0,
                tail_prob: 0.02,
                tail_max_us: 9_000.0,
            },
        }
    }
}

/// A seeded sampler of wake-up latencies for one kernel.
#[derive(Debug)]
pub struct KernelModel {
    kind: KernelKind,
    params: KernelParams,
    rng: StdRng,
}

impl KernelModel {
    /// Creates a sampler for `kind` with its calibrated parameters.
    #[must_use]
    pub fn new(kind: KernelKind, seed: u64) -> Self {
        KernelModel {
            kind,
            params: kind.params(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a sampler with custom parameters (for sensitivity
    /// studies).
    #[must_use]
    pub fn with_params(kind: KernelKind, params: KernelParams, seed: u64) -> Self {
        KernelModel {
            kind,
            params,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The modelled kernel.
    #[must_use]
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Draws one wake-up latency under `stress` intensity in `[0, 1]`.
    pub fn sample_latency(&mut self, stress: f64) -> Duration {
        let stress = stress.clamp(0.0, 1.0);
        let p = &self.params;
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let jitter = -u.ln() * p.jitter_mean_us;
        let load: f64 = self.rng.random_range(0.0..1.0) * p.load_us * stress;
        let mut us = p.base_us + load + jitter;
        if self.rng.random_range(0.0..1.0) < p.tail_prob * (0.25 + 0.75 * stress) {
            us += self.rng.random_range(0.0..p.tail_max_us);
        }
        Duration::from_nanos((us * 1_000.0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::stats::Summary;

    fn collect(kind: KernelKind, stress: f64, n: usize) -> Summary {
        let mut m = KernelModel::new(kind, 7);
        (0..n)
            .map(|_| m.sample_latency(stress).as_nanos())
            .collect()
    }

    #[test]
    fn ordering_matches_table2() {
        // Under full stress: GSN-EDF < PREEMPT_RT < P-RES on average.
        let gsn = collect(KernelKind::LitmusGsnEdf, 1.0, 20_000);
        let rt = collect(KernelKind::PreemptRt, 1.0, 20_000);
        let pres = collect(KernelKind::LitmusPres, 1.0, 20_000);
        // (summaries hold nanoseconds; ordering is unit-free)
        assert!(gsn.mean().unwrap() < rt.mean().unwrap());
        assert!(rt.mean().unwrap() < pres.mean().unwrap());
    }

    #[test]
    fn preempt_rt_magnitudes() {
        let s = collect(KernelKind::PreemptRt, 1.0, 60_000);
        let (min, max, avg) = s.as_micros_triple();
        // Paper RTapps row: <176, 1550, 463> — accept the right decade.
        assert!((100.0..300.0).contains(&min), "min {min}");
        assert!((800.0..2_500.0).contains(&max), "max {max}");
        assert!((300.0..650.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn gsn_edf_magnitudes() {
        let s = collect(KernelKind::LitmusGsnEdf, 1.0, 60_000);
        let (min, max, avg) = s.as_micros_triple();
        // Paper RTapps row: <33, 222, 74>.
        assert!((20.0..60.0).contains(&min), "min {min}");
        assert!((120.0..400.0).contains(&max), "max {max}");
        assert!((50.0..120.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn pres_magnitudes() {
        let s = collect(KernelKind::LitmusPres, 1.0, 60_000);
        let (min, max, avg) = s.as_micros_triple();
        // Paper: <988, 1206, 1027>.
        assert!((900.0..1_100.0).contains(&min), "min {min}");
        assert!((1_050.0..1_600.0).contains(&max), "max {max}");
        assert!((950.0..1_150.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn stress_increases_latency() {
        let idle = collect(KernelKind::PreemptRt, 0.0, 20_000);
        let busy = collect(KernelKind::PreemptRt, 1.0, 20_000);
        assert!(busy.mean().unwrap() > idle.mean().unwrap());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = KernelModel::new(KernelKind::PreemptRt, 3);
        let mut b = KernelModel::new(KernelKind::PreemptRt, 3);
        for _ in 0..100 {
            assert_eq!(a.sample_latency(0.5), b.sample_latency(0.5));
        }
    }

    #[test]
    fn labels() {
        assert!(KernelKind::PreemptRt.label().contains("PREEMPT_RT"));
        assert!(KernelKind::LitmusPres.label().contains("P-RES"));
    }
}
