//! The discrete-event simulation driver.
//!
//! [`Simulation`] executes a task set on a modelled platform by driving
//! the *real* scheduling engine (`yasmin_sched::OnlineEngine`) with
//! simulated time: scheduler ticks, job completions and sporadic arrivals
//! are events in a time-ordered queue; the engine's actions (dispatch,
//! preempt, boost) are applied to modelled workers whose speed comes from
//! the platform description.
//!
//! Overheads are handled two ways at once:
//!
//! * *modelled* overheads ([`OverheadModel`]) delay dispatches and charge
//!   context switches, so schedules shift the way they would on hardware;
//! * *measured* overhead: every engine call is wall-clock timed and the
//!   samples land in [`SimResult::sched_overhead_ns`] — this is the
//!   quantity the Figure 2 experiment reports for YASMIN, so the
//!   middleware's own cost is measured from the implementation rather
//!   than assumed.

use crate::exec::{ExecModel, ExecSampler};
use crate::kernel::{KernelKind, KernelModel};
use crate::par::ShardFeed;
use crate::stress::StressProfile;
use crate::trace::{JobRecord, SimResult};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use yasmin_core::config::Config;
use yasmin_core::energy::Energy;
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{CoreId, JobId, TaskId, TenantId, VersionId, WorkerId};
use yasmin_core::platform::PlatformSpec;
use yasmin_core::stats::Samples;
use yasmin_core::task::ActivationKind;
use yasmin_core::time::{Duration, Instant};
use yasmin_sched::admission::{AdmissionControl, AdmissionError};
use yasmin_sched::server::{ReservationServer, TenantBudget};
use yasmin_sched::{Action, ActionSink, Job, OnlineEngine, ShardCmd};

/// Modelled fixed costs of scheduler interactions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverheadModel {
    /// Cost added to a job's start on every dispatch.
    pub dispatch: Duration,
    /// Cost of a preemption context switch (charged to the worker).
    pub context_switch: Duration,
}

/// A deterministically scheduled fault ([`SimConfig::fault_schedule`]).
///
/// Faults are events like any other: delivered at exact instants, so a
/// fault schedule replays bit-identically across runs — and across
/// drivers (single-owner, free-running sharded, protocol loop), which
/// is what the failure-injection parity tests lock in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEvent {
    /// Force a WCET overrun on the running job of `task`: the engine
    /// applies the task's [`yasmin_core::task::OverrunPolicy`] exactly
    /// as the enforcement tick would (no-op if the task is not running).
    Overrun {
        /// The task whose running job overruns.
        task: TaskId,
    },
    /// Crash the running job of `task` — the simulated analogue of a
    /// body panic: the job retires through the failure path (counted in
    /// `EngineStats::failed`, successors policy-gated), the worker is
    /// freed (no-op if the task is not running).
    Crash {
        /// The task whose running job panics.
        task: TaskId,
    },
    /// A burst of `count` back-to-back activations of `task` at one
    /// instant — the overload source for shedding scenarios.
    Burst {
        /// The (sporadic/aperiodic) task to activate.
        task: TaskId,
        /// Number of activations delivered at the instant.
        count: u32,
    },
}

impl FaultEvent {
    /// The task the fault targets.
    #[must_use]
    pub const fn task(&self) -> TaskId {
        match *self {
            FaultEvent::Overrun { task }
            | FaultEvent::Crash { task }
            | FaultEvent::Burst { task, .. } => task,
        }
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            // A few microseconds each — representative of the paper's
            // Cortex-A15 measurements.
            dispatch: Duration::from_micros(3),
            context_switch: Duration::from_micros(8),
        }
    }
}

/// Simulator configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The modelled platform; worker *w* runs on core *w*.
    pub platform: PlatformSpec,
    /// How long to simulate.
    pub horizon: Duration,
    /// Execution-time model.
    pub exec: ExecModel,
    /// Optional kernel latency model applied to job wake-ups.
    pub kernel: Option<KernelKind>,
    /// Interference profile feeding the kernel model.
    pub stress: StressProfile,
    /// Modelled overheads.
    pub overheads: OverheadModel,
    /// Master seed.
    pub seed: u64,
    /// Wall-clock-time every engine call (measured overhead samples).
    pub measure_engine_time: bool,
    /// Timed execution-mode switches (offset from start, new mode) — e.g.
    /// the drone's secure mode "activated when boats are detected" (§5).
    pub mode_schedule: Vec<(Duration, yasmin_core::version::ExecMode)>,
    /// Timed message-plane events (offset from start, event): high-lane
    /// posts/drains delivered deterministically at event boundaries, so
    /// a simulated run reproduces the priority boosts a real channel's
    /// notify hook would raise (see `yasmin_sched::msg`).
    pub msg_schedule: Vec<(Duration, yasmin_sched::MsgEvent)>,
    /// Timed fault injections (offset from start, fault): overruns,
    /// crashes and activation bursts delivered deterministically, so
    /// fault handling is parity-testable bit-for-bit across drivers.
    pub fault_schedule: Vec<(Duration, FaultEvent)>,
}

impl SimConfig {
    /// A convenient uniform-platform configuration.
    #[must_use]
    pub fn uniform(workers: usize, horizon: Duration) -> Self {
        SimConfig {
            platform: PlatformSpec::uniform(workers),
            horizon,
            exec: ExecModel::Wcet,
            kernel: None,
            stress: StressProfile::IDLE,
            overheads: OverheadModel {
                dispatch: Duration::ZERO,
                context_switch: Duration::ZERO,
            },
            seed: 0,
            measure_engine_time: false,
            mode_schedule: Vec::new(),
            msg_schedule: Vec::new(),
            fault_schedule: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Tick,
    Finish {
        worker: WorkerId,
        job: JobId,
        gen: u64,
    },
    Sporadic {
        task: TaskId,
    },
    ModeSwitch {
        mode: yasmin_core::version::ExecMode,
    },
    /// Splice + commit a pre-validated tenant admission; `idx` indexes
    /// [`Simulation`]'s pending-admissions side table (the event itself
    /// stays `Copy` — the merged set travels by `Arc` in the table).
    Admit {
        idx: usize,
    },
    /// Quiesce an admitted tenant.
    Retire {
        tenant: TenantId,
    },
    /// A scheduled message-plane event ([`SimConfig::msg_schedule`]):
    /// a high-lane post or drain delivered to the engine at this exact
    /// event boundary.
    Msg {
        ev: yasmin_sched::MsgEvent,
    },
    /// A scheduled fault injection ([`SimConfig::fault_schedule`]).
    Fault {
        ev: FaultEvent,
    },
}

#[derive(Debug)]
struct QItem {
    time: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QItem {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QItem {}
impl Ord for QItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug, Clone, Copy)]
struct Slice {
    job: JobId,
    /// Slab handle of the job's in-flight state.
    slot: SlotRef,
    task: TaskId,
    version: VersionId,
    start: Instant,
    /// Remaining reference-time work at slice start.
    remaining_ref: Duration,
}

#[derive(Debug, Default, Clone)]
struct JobProgress {
    remaining_ref: Option<Duration>,
    first_start: Option<Instant>,
    preemptions: u32,
    accel_busy: Duration,
}

/// Generation-checked handle into the [`JobSlab`]: a stale handle (its
/// slot was freed and re-used) is detected instead of silently reading
/// another job's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SlotRef {
    idx: u32,
    gen: u32,
}

#[derive(Debug, Clone)]
struct JobSlot {
    gen: u32,
    occupied: bool,
    job: Job,
    progress: JobProgress,
}

/// A free-list slab holding every in-flight (dispatched or preempted)
/// job. Replaces the former `HashMap<JobId, …>` pair on the per-event
/// hot path: slot access is a bounds-checked array index plus a
/// generation check, and steady-state operation allocates nothing once
/// the slab has grown to the peak in-flight count.
#[derive(Debug, Default)]
struct JobSlab {
    slots: Vec<JobSlot>,
    free: Vec<u32>,
    live: usize,
}

impl JobSlab {
    fn insert(&mut self, job: Job) -> SlotRef {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(!slot.occupied);
            slot.occupied = true;
            slot.job = job;
            slot.progress = JobProgress::default();
            SlotRef { idx, gen: slot.gen }
        } else {
            let idx = u32::try_from(self.slots.len()).expect("slab bounded by pending jobs");
            self.slots.push(JobSlot {
                gen: 0,
                occupied: true,
                job,
                progress: JobProgress::default(),
            });
            SlotRef { idx, gen: 0 }
        }
    }

    fn get_mut(&mut self, r: SlotRef) -> &mut JobSlot {
        let slot = &mut self.slots[r.idx as usize];
        assert!(
            slot.occupied && slot.gen == r.gen,
            "stale slab handle: slot {} gen {} vs handle gen {}",
            r.idx,
            slot.gen,
            r.gen
        );
        slot
    }

    /// Frees the slot, returning its contents; the generation bump
    /// invalidates any outstanding handle to it.
    fn remove(&mut self, r: SlotRef) -> (Job, JobProgress) {
        let slot = self.get_mut(r);
        slot.occupied = false;
        slot.gen = slot.gen.wrapping_add(1);
        let out = (slot.job, std::mem::take(&mut slot.progress));
        self.free.push(r.idx);
        self.live -= 1;
        out
    }

    fn len(&self) -> usize {
        self.live
    }

    fn iter_jobs(&self) -> impl Iterator<Item = &Job> {
        self.slots.iter().filter(|s| s.occupied).map(|s| &s.job)
    }
}

/// The discrete-event simulator.
#[derive(Debug)]
pub struct Simulation {
    engine: OnlineEngine,
    cfg: SimConfig,
    queue: BinaryHeap<Reverse<QItem>>,
    seq: u64,
    exec: ExecSampler,
    kernel: Option<KernelModel>,
    stress_intensity: f64,
    slices: Vec<Option<Slice>>,
    gens: Vec<u64>,
    /// In-flight job state (dispatched or preempted), slab-allocated.
    slab: JobSlab,
    /// Preempted jobs waiting for re-dispatch: (id, slab handle).
    suspended: Vec<(JobId, SlotRef)>,
    /// Reusable action buffer passed to every engine interaction.
    sink: ActionSink,
    /// Same-timestamp completions gathered for one batched engine call.
    finish_batch: Vec<(WorkerId, JobId)>,
    /// Sporadic root tasks and their release offsets, precomputed.
    sporadic_roots: Vec<(TaskId, Duration)>,
    /// Minimum inter-arrival per task index (ZERO for non-sporadic).
    sporadic_period: Vec<Duration>,
    records: Vec<JobRecord>,
    overhead_ns: Samples,
    worker_busy: Vec<Duration>,
    accel_busy: Vec<Duration>,
    tick: Duration,
    /// `Some(w)`: this simulation drives the engine *shard* of worker
    /// `w` (multi-threaded partitioned driver). Sporadic roots are then
    /// fed externally through the mailbox instead of self-generated, and
    /// energy/idle accounting covers only worker `w` so per-shard
    /// results sum to the whole-system result.
    shard: Option<WorkerId>,
    /// Side table for [`Ev::Admit`]: (merged set, budget) per scheduled
    /// admission, pre-validated by [`Simulation::admit_at`].
    pending_admissions: Vec<(Arc<TaskSet>, Option<TenantBudget>)>,
    /// The task set as it will stand after every scheduled admission —
    /// the base each further [`Simulation::admit_at`] extends.
    planned: Arc<TaskSet>,
    /// Admissions must be scheduled in non-decreasing time order (their
    /// splice order defines tenant ids).
    last_admit_offset: Duration,
}

impl Simulation {
    /// Builds a simulation of `taskset` under middleware `config` and
    /// simulator `sim` settings.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if the platform has fewer cores than
    /// workers, plus any engine construction error.
    pub fn new(taskset: Arc<TaskSet>, config: Config, sim: SimConfig) -> Result<Self> {
        let engine = OnlineEngine::new(taskset, config)?;
        Self::from_engine(engine, sim)
    }

    /// Builds a simulation around an already-constructed engine — the
    /// whole-system engine, or one shard of it (the multi-threaded
    /// driver in [`crate::par`] hands each shard thread its own).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if the platform has fewer cores than
    /// workers.
    pub(crate) fn from_engine(engine: OnlineEngine, sim: SimConfig) -> Result<Self> {
        let config = engine.config();
        if config.workers() > sim.platform.core_count() {
            return Err(Error::InvalidConfig(format!(
                "{} workers need {} cores but platform {} has {}",
                config.workers(),
                config.workers(),
                sim.platform.name(),
                sim.platform.core_count()
            )));
        }
        let workers = config.workers();
        let shard = engine.shard_worker();
        let accels = engine.taskset().accels().len();
        let tick = engine.tick_period();
        let stress_intensity = sim.stress.intensity(sim.platform.core_count());
        // Sporadic bookkeeping is fixed by the task set: build it once
        // here instead of on every `run()` (released at the minimum
        // inter-arrival — the worst-case law the Fig. 2 harness wants).
        let ts = engine.taskset();
        let mut sporadic_roots = Vec::new();
        let mut sporadic_period = vec![Duration::ZERO; ts.len()];
        for t in ts.tasks() {
            if t.spec().kind() == ActivationKind::Sporadic {
                sporadic_period[t.id().index()] = t.spec().period();
                if ts.in_degree(t.id()) == 0 {
                    sporadic_roots.push((t.id(), t.spec().release_offset()));
                }
            }
        }
        Ok(Simulation {
            exec: ExecSampler::new(sim.exec, sim.seed ^ 0xE5E5),
            kernel: sim.kernel.map(|k| KernelModel::new(k, sim.seed ^ 0x5EED)),
            stress_intensity,
            slices: vec![None; workers],
            gens: vec![0; workers],
            slab: JobSlab::default(),
            suspended: Vec::new(),
            sink: ActionSink::with_capacity(workers * 2),
            finish_batch: Vec::with_capacity(workers),
            sporadic_roots,
            sporadic_period,
            records: Vec::new(),
            overhead_ns: Samples::new(),
            worker_busy: vec![Duration::ZERO; workers],
            accel_busy: vec![Duration::ZERO; accels],
            queue: BinaryHeap::new(),
            seq: 0,
            tick,
            shard,
            pending_admissions: Vec::new(),
            planned: engine.taskset_arc(),
            last_admit_offset: Duration::ZERO,
            engine,
            cfg: sim,
        })
    }

    /// Schedules a tenant admission at `offset` from the start:
    /// `tenant` (declared in its own id space) is schedulability-checked
    /// **now** against the planned set — the base set extended by every
    /// previously scheduled admission — exactly as the runtime's
    /// admission thread would, and on acceptance an internal admit event
    /// splices and commits it at the simulated instant. Returns the
    /// [`TenantId`] the splice will assign.
    ///
    /// Deterministic by construction: the admission instant, the merged
    /// set and the tenant id are all fixed before the run starts, so two
    /// runs with the same schedule produce identical traces.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Rejected`] with the violated bound;
    /// [`AdmissionError::Invalid`] for malformed requests, including
    /// admissions scheduled out of time order.
    pub fn admit_at(
        &mut self,
        offset: Duration,
        tenant: &TaskSet,
        budget: Option<TenantBudget>,
    ) -> std::result::Result<TenantId, AdmissionError> {
        if offset < self.last_admit_offset {
            return Err(AdmissionError::Invalid(Error::InvalidConfig(
                "admissions must be scheduled in non-decreasing time order".into(),
            )));
        }
        let ctl = AdmissionControl::new(self.engine.config().clone(), self.tick);
        let merged = ctl.evaluate(&self.planned, tenant, budget.as_ref())?;
        // Tenant ids count the base set (tenant 0) plus every admission
        // scheduled so far, in splice order.
        let id = TenantId::new((1 + self.pending_admissions.len()) as u32);
        self.planned = Arc::clone(&merged);
        self.last_admit_offset = offset;
        let idx = self.pending_admissions.len();
        self.pending_admissions.push((merged, budget));
        self.push_event(Instant::ZERO + offset, Ev::Admit { idx });
        Ok(id)
    }

    /// Schedules the retirement of an admitted tenant at `offset` from
    /// the start. The tenant must exist by then (i.e. come from a prior
    /// [`Simulation::admit_at`] with an earlier or equal offset);
    /// tenant 0 cannot be retired.
    pub fn retire_at(&mut self, offset: Duration, tenant: TenantId) {
        self.push_event(Instant::ZERO + offset, Ev::Retire { tenant });
    }

    fn push_event(&mut self, at: Instant, ev: Ev) {
        self.seq += 1;
        self.queue.push(Reverse(QItem {
            time: at.as_nanos(),
            seq: self.seq,
            ev,
        }));
    }

    fn speed_of(&self, worker: WorkerId) -> (u64, u64) {
        self.cfg
            .platform
            .class_of(CoreId::new(worker.raw()))
            .speed()
    }

    /// Reference-work → wall time on `worker`.
    fn wall_time(&self, worker: WorkerId, reference: Duration) -> Duration {
        let (num, den) = self.speed_of(worker);
        reference.scale(den, num)
    }

    /// Wall time → reference work on `worker`.
    fn ref_work(&self, worker: WorkerId, wall: Duration) -> Duration {
        let (num, den) = self.speed_of(worker);
        wall.scale(num, den)
    }

    fn timed<F: FnOnce(&mut OnlineEngine)>(&mut self, f: F) {
        if self.cfg.measure_engine_time {
            let t0 = std::time::Instant::now();
            f(&mut self.engine);
            self.overhead_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        } else {
            f(&mut self.engine);
        }
    }

    fn apply_actions(&mut self, now: Instant, actions: &ActionSink) {
        for &a in actions.as_slice() {
            match a {
                Action::Dispatch {
                    worker,
                    job,
                    version,
                } => self.apply_dispatch(now, worker, job, version),
                Action::Preempt { worker, job } => self.apply_preempt(now, worker, job),
                Action::Boost { .. } => {
                    // Priority bookkeeping only; nothing to model.
                }
            }
        }
    }

    /// Finds (and detaches) the slab handle of a previously preempted
    /// job awaiting re-dispatch.
    fn take_suspended(&mut self, job: JobId) -> Option<SlotRef> {
        let pos = self.suspended.iter().position(|&(id, _)| id == job)?;
        Some(self.suspended.swap_remove(pos).1)
    }

    fn apply_dispatch(&mut self, now: Instant, worker: WorkerId, job: Job, version: VersionId) {
        let task = &self.engine.taskset().tasks()[job.task.index()];
        let wcet = task.versions()[version.index()].wcet();
        // A job the engine has preempted before carries a slab slot with
        // its remaining work; anything else is a fresh start whose
        // execution demand is sampled once.
        let (slot, remaining, fresh) = match self.take_suspended(job.id) {
            Some(slot) => {
                let remaining = self.slab.get_mut(slot).progress.remaining_ref;
                let remaining = remaining.expect("resumed job has remaining");
                (slot, remaining, false)
            }
            None => {
                let slot = self.slab.insert(job);
                let d = self.exec.sample(wcet);
                self.slab.get_mut(slot).progress.remaining_ref = Some(d);
                (slot, d, true)
            }
        };

        // Wake-up latency (kernel model) applies to fresh starts; resumes
        // pay the context switch instead.
        let mut delay = self.cfg.overheads.dispatch;
        if fresh {
            if let Some(k) = self.kernel.as_mut() {
                delay += k.sample_latency(self.stress_intensity);
            }
        } else {
            delay += self.cfg.overheads.context_switch;
        }
        let start = now + delay;
        let p = &mut self.slab.get_mut(slot).progress;
        if p.first_start.is_none() {
            p.first_start = Some(start);
        }
        let wall = self.wall_time(worker, remaining);
        let finish = start + wall;
        self.gens[worker.index()] += 1;
        let gen = self.gens[worker.index()];
        self.slices[worker.index()] = Some(Slice {
            job: job.id,
            slot,
            task: job.task,
            version,
            start,
            remaining_ref: remaining,
        });
        self.push_event(
            finish,
            Ev::Finish {
                worker,
                job: job.id,
                gen,
            },
        );
    }

    fn apply_preempt(&mut self, now: Instant, worker: WorkerId, job: JobId) {
        let Some(slice) = self.slices[worker.index()].take() else {
            return;
        };
        debug_assert_eq!(slice.job, job, "engine preempted a different job");
        // Invalidate the scheduled finish.
        self.gens[worker.index()] += 1;
        // Progress made this slice (the slice may not have started yet if
        // `now` falls inside the dispatch-delay window).
        let elapsed = now.saturating_since(slice.start);
        let done_ref = self.ref_work(worker, elapsed).min(slice.remaining_ref);
        let busy = elapsed.min(self.wall_time(worker, slice.remaining_ref));
        self.worker_busy[worker.index()] += busy;
        let p = &mut self.slab.get_mut(slice.slot).progress;
        p.remaining_ref = Some(slice.remaining_ref - done_ref);
        p.preemptions += 1;
        self.suspended.push((slice.job, slice.slot));
        self.account_accel(&slice, elapsed);
    }

    fn account_accel(&mut self, slice: &Slice, busy: Duration) {
        let task = &self.engine.taskset().tasks()[slice.task.index()];
        if let Some(a) = task.versions()[slice.version.index()].accel() {
            self.accel_busy[a.index()] += busy;
            self.slab.get_mut(slice.slot).progress.accel_busy += busy;
        }
    }

    /// Books one finish event — worker busy time, accelerator time, the
    /// job record — and returns the completion pair for the engine
    /// call, which the event loop batches across same-timestamp
    /// finishes. Returns `None` for a stale event (the slice was
    /// preempted after this finish was scheduled).
    fn settle_finish(
        &mut self,
        now: Instant,
        worker: WorkerId,
        job: JobId,
        gen: u64,
    ) -> Option<(WorkerId, JobId)> {
        if self.gens[worker.index()] != gen {
            return None; // stale event from before a preemption
        }
        let slice = self.slices[worker.index()]
            .take()
            .expect("matching generation implies an active slice");
        debug_assert_eq!(slice.job, job);
        let wall = now.saturating_since(slice.start);
        self.worker_busy[worker.index()] += wall;
        self.account_accel(&slice, wall);

        let (j, p) = self.slab.remove(slice.slot);
        debug_assert_eq!(j.id, job, "slab slot tracks the finished job");
        self.records.push(JobRecord {
            job,
            task: j.task,
            seq: j.seq,
            release: j.release,
            graph_release: j.graph_release,
            abs_deadline: j.abs_deadline,
            first_start: p.first_start.unwrap_or(slice.start),
            completion: now,
            version: slice.version,
            worker,
            preemptions: p.preemptions,
        });
        Some((worker, job))
    }

    /// Delivers one scheduled fault ([`SimConfig::fault_schedule`]).
    fn apply_fault(&mut self, now: Instant, ev: FaultEvent) {
        match ev {
            FaultEvent::Overrun { task } => {
                let mut sink = std::mem::take(&mut self.sink);
                sink.clear();
                self.timed(|e| {
                    // No-op when the task is not running at the instant
                    // (e.g. it already finished) — the schedule stays
                    // valid across parameter sweeps.
                    let _ = e.force_overrun(task, now, &mut sink);
                });
                self.apply_actions(now, &sink);
                self.sink = sink;
            }
            FaultEvent::Crash { task } => self.apply_crash(now, task),
            FaultEvent::Burst { task, count } => {
                let mut sink = std::mem::take(&mut self.sink);
                sink.clear();
                for _ in 0..count {
                    self.timed(|e| {
                        // Tolerates non-activatable targets so burst
                        // schedules compose with retirement schedules.
                        let _ = e.activate_into(task, now, &mut sink);
                    });
                }
                self.apply_actions(now, &sink);
                self.sink = sink;
            }
        }
    }

    /// Crashes the running job of `task` — the simulated analogue of a
    /// worker catching a body panic (`yasmin-rt` wraps bodies in
    /// `catch_unwind`). Progress is accounted, the slice and slab entry
    /// are dropped *without* a completion record (a failed job never
    /// completed), and the engine retires the job through its failure
    /// path. No-op if the task is not running at the instant.
    fn apply_crash(&mut self, now: Instant, task: TaskId) {
        let Some(w) = self
            .slices
            .iter()
            .position(|s| matches!(s, Some(sl) if sl.task == task))
        else {
            return;
        };
        let slice = self.slices[w].take().expect("position matched");
        let worker = WorkerId::new(w as u16);
        // Invalidate the scheduled finish.
        self.gens[w] += 1;
        let elapsed = now.saturating_since(slice.start);
        let busy = elapsed.min(self.wall_time(worker, slice.remaining_ref));
        self.worker_busy[w] += busy;
        self.account_accel(&slice, busy);
        let (j, _p) = self.slab.remove(slice.slot);
        debug_assert_eq!(j.id, slice.job, "slab slot tracks the crashed job");
        let mut sink = std::mem::take(&mut self.sink);
        sink.clear();
        self.timed(|e| {
            e.on_job_failed_into(worker, slice.job, now, &mut sink)
                .expect("crashed job is running on its worker");
        });
        self.apply_actions(now, &sink);
        self.sink = sink;
    }

    /// Runs the simulation to the horizon and aggregates the result.
    ///
    /// # Errors
    ///
    /// Engine errors (protocol violations) — not expected in normal
    /// operation.
    pub fn run(self) -> Result<SimResult> {
        self.run_with_feed(None)
    }

    /// Processes one externally-fed command at its carried time.
    /// Commands past the horizon are drained but not simulated (the
    /// producers must be unblocked even when the run is over).
    fn apply_external(&mut self, cmd: ShardCmd, horizon: Instant) -> Result<()> {
        match cmd {
            ShardCmd::Activate { task, at } => {
                if at > horizon {
                    return Ok(());
                }
                let mut sink = std::mem::take(&mut self.sink);
                sink.clear();
                self.timed(|e| {
                    e.activate_into(task, at, &mut sink)
                        .expect("fed task is activatable on this shard");
                });
                self.apply_actions(at, &sink);
                self.sink = sink;
                Ok(())
            }
            ShardCmd::Tick { at } => {
                if at > horizon {
                    return Ok(());
                }
                let mut sink = std::mem::take(&mut self.sink);
                sink.clear();
                self.timed(|e| e.on_tick_into(at, &mut sink));
                self.apply_actions(at, &sink);
                self.sink = sink;
                Ok(())
            }
            ShardCmd::MsgHigh { dst, ceiling, at } => {
                if at > horizon {
                    return Ok(());
                }
                let mut sink = std::mem::take(&mut self.sink);
                sink.clear();
                self.timed(|e| {
                    e.on_high_posted_into(dst, ceiling, at, &mut sink)
                        .expect("fed message destination is owned by this shard");
                });
                self.apply_actions(at, &sink);
                self.sink = sink;
                Ok(())
            }
            ShardCmd::MsgDrained { dst, at } => {
                if at > horizon {
                    return Ok(());
                }
                let mut sink = std::mem::take(&mut self.sink);
                sink.clear();
                self.timed(|e| {
                    e.on_high_drained_into(dst, at, &mut sink)
                        .expect("fed message destination is owned by this shard");
                });
                self.apply_actions(at, &sink);
                self.sink = sink;
                Ok(())
            }
            ShardCmd::Stop => {
                self.engine.stop();
                Ok(())
            }
            ShardCmd::JobCompleted { .. } | ShardCmd::JobFailed { .. } => {
                Err(Error::InvalidConfig(
                    "the simulator generates completions and failures internally; an \
                 external completion command is a driver bug"
                        .into(),
                ))
            }
            ShardCmd::CrossActivate { .. }
            | ShardCmd::StealRequest { .. }
            | ShardCmd::Stolen { .. }
            | ShardCmd::StolenBatch { .. }
            | ShardCmd::StealDeny { .. } => Err(Error::InvalidConfig(
                "cross-shard routing and stealing run through the protocol loop \
                 (yasmin_sim::par), not the free-running shard feed"
                    .into(),
            )),
            ShardCmd::AdmitTasks { .. }
            | ShardCmd::CommitTenant { .. }
            | ShardCmd::RetireTenant { .. } => Err(Error::InvalidConfig(
                "the simulator schedules admissions deterministically via \
                 Simulation::admit_at / retire_at, not the external feed"
                    .into(),
            )),
        }
    }

    /// [`Simulation::run`] with an optional external command feed — the
    /// multi-threaded partitioned driver ([`crate::par`]) hands each
    /// shard a mailbox-backed feed delivering its sporadic activations.
    ///
    /// The merge is deterministic regardless of producer thread timing:
    /// each mailbox lane delivers commands in non-decreasing time order,
    /// the feed blocks until every open lane has revealed its next
    /// command (the watermark), and an external command at time *t* is
    /// processed before any local event at the same *t*.
    pub(crate) fn run_with_feed(mut self, mut feed: Option<ShardFeed>) -> Result<SimResult> {
        let horizon = Instant::ZERO + self.cfg.horizon;

        // Start the schedule and arm the tick train.
        let mut sink = std::mem::take(&mut self.sink);
        if self.cfg.measure_engine_time {
            let t0 = std::time::Instant::now();
            self.engine.start_into(Instant::ZERO, &mut sink)?;
            self.overhead_ns
                .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
        } else {
            self.engine.start_into(Instant::ZERO, &mut sink)?;
        }
        self.apply_actions(Instant::ZERO, &sink);
        self.sink = sink;
        self.push_event(Instant::ZERO + self.tick, Ev::Tick);

        // Arm the sporadic roots (precomputed in `new`) — unless the
        // external feed is the activation source.
        if feed.is_none() {
            for i in 0..self.sporadic_roots.len() {
                let (t, offset) = self.sporadic_roots[i];
                self.push_event(Instant::ZERO + offset, Ev::Sporadic { task: t });
            }
        }
        let mode_schedule = std::mem::take(&mut self.cfg.mode_schedule);
        for (offset, mode) in mode_schedule {
            self.push_event(Instant::ZERO + offset, Ev::ModeSwitch { mode });
        }
        let msg_schedule = std::mem::take(&mut self.cfg.msg_schedule);
        for (offset, ev) in msg_schedule {
            self.push_event(Instant::ZERO + offset, Ev::Msg { ev });
        }
        let fault_schedule = std::mem::take(&mut self.cfg.fault_schedule);
        for (offset, ev) in fault_schedule {
            self.push_event(Instant::ZERO + offset, Ev::Fault { ev });
        }

        loop {
            // Next local event, unless the run is over (the first local
            // event past the horizon ends it, matching the single-feed
            // `run` semantics — nothing later can be earlier).
            let local_t = self
                .queue
                .peek()
                .map(|Reverse(item)| item.time)
                .filter(|&t| Instant::from_nanos(t) <= horizon);
            if let Some(f) = feed.as_mut() {
                if let Some(cmd) = f.pop_if_at_or_before(local_t) {
                    self.apply_external(cmd, horizon)?;
                    continue;
                }
            }
            if local_t.is_none() {
                break;
            }
            let Some(Reverse(item)) = self.queue.pop() else {
                break;
            };
            let now = Instant::from_nanos(item.time);
            match item.ev {
                Ev::Tick => {
                    let mut sink = std::mem::take(&mut self.sink);
                    sink.clear();
                    self.timed(|e| e.on_tick_into(now, &mut sink));
                    self.apply_actions(now, &sink);
                    self.sink = sink;
                    let next = now + self.tick;
                    // The horizon is exclusive for new releases, so runs
                    // over [0, horizon) release exactly horizon/T jobs.
                    if next < horizon {
                        self.push_event(next, Ev::Tick);
                    }
                }
                Ev::Finish { worker, job, gen } => {
                    let mut batch = std::mem::take(&mut self.finish_batch);
                    batch.clear();
                    if let Some(c) = self.settle_finish(now, worker, job, gen) {
                        batch.push(c);
                    }
                    // Coalesce the consecutive run of same-timestamp
                    // finishes at the head of the event queue into one
                    // batched engine call — a burst of completions pays
                    // a single dispatch round. Only the Finish prefix is
                    // absorbed, so ordering against ticks and arrivals
                    // at the same instant is unchanged.
                    loop {
                        let more = matches!(
                            self.queue.peek(),
                            Some(Reverse(n))
                                if n.time == item.time && matches!(n.ev, Ev::Finish { .. })
                        );
                        if !more {
                            break;
                        }
                        let Some(Reverse(next)) = self.queue.pop() else {
                            break;
                        };
                        let Ev::Finish { worker, job, gen } = next.ev else {
                            unreachable!("peek matched a finish event")
                        };
                        if let Some(c) = self.settle_finish(now, worker, job, gen) {
                            batch.push(c);
                        }
                    }
                    if !batch.is_empty() {
                        let mut sink = std::mem::take(&mut self.sink);
                        sink.clear();
                        self.timed(|e| {
                            e.on_jobs_completed_into(&batch, now, &mut sink)
                                .expect("driver protocol upheld");
                        });
                        self.apply_actions(now, &sink);
                        self.sink = sink;
                    }
                    self.finish_batch = batch;
                }
                Ev::Sporadic { task } => {
                    // A retired tenant's sporadic train ends silently:
                    // no activation, no re-arm.
                    if self.engine.is_task_retired(task) {
                        continue;
                    }
                    let mut sink = std::mem::take(&mut self.sink);
                    sink.clear();
                    self.timed(|e| {
                        e.activate_into(task, now, &mut sink)
                            .expect("sporadic task is activatable");
                    });
                    self.apply_actions(now, &sink);
                    self.sink = sink;
                    let next = now + self.sporadic_period[task.index()];
                    if next < horizon {
                        self.push_event(next, Ev::Sporadic { task });
                    }
                }
                Ev::ModeSwitch { mode } => {
                    self.engine.set_mode(mode);
                }
                Ev::Msg { ev } => {
                    let mut sink = std::mem::take(&mut self.sink);
                    sink.clear();
                    self.timed(|e| {
                        match ev {
                            yasmin_sched::MsgEvent::HighPosted { dst, ceiling } => {
                                e.on_high_posted_into(dst, ceiling, now, &mut sink)
                            }
                            yasmin_sched::MsgEvent::HighDrained { dst } => {
                                e.on_high_drained_into(dst, now, &mut sink)
                            }
                        }
                        .expect("scheduled message event targets a known task");
                    });
                    self.apply_actions(now, &sink);
                    self.sink = sink;
                }
                Ev::Fault { ev } => self.apply_fault(now, ev),
                Ev::Admit { idx } => {
                    let (merged, budget) = self.pending_admissions[idx].clone();
                    let tenant = TenantId::new(self.engine.tenant_count() as u32);
                    let server = budget.map(|b| ReservationServer::new(tenant, b, now));
                    let first_new = self.engine.taskset().len();
                    // Splice: pre-validated at admit_at time, so a
                    // failure here is a driver bug, not a tenant fault.
                    self.engine
                        .splice_taskset(Arc::clone(&merged), server)
                        .expect("admission was validated by admit_at");
                    // Grow the per-task / per-accel side state the sim
                    // keeps alongside the engine.
                    self.accel_busy
                        .resize(merged.accels().len(), Duration::ZERO);
                    for t in &merged.tasks()[first_new..] {
                        self.sporadic_period
                            .push(if t.spec().kind() == ActivationKind::Sporadic {
                                t.spec().period()
                            } else {
                                Duration::ZERO
                            });
                    }
                    let mut sink = std::mem::take(&mut self.sink);
                    sink.clear();
                    self.timed(|e| {
                        e.commit_tenant_into(tenant, now, &mut sink)
                            .expect("spliced tenant commits");
                    });
                    self.apply_actions(now, &sink);
                    self.sink = sink;
                    // Arm the tenant's sporadic roots from the commit
                    // instant, like the base set's at start.
                    for t in &merged.tasks()[first_new..] {
                        if t.spec().kind() == ActivationKind::Sporadic
                            && merged.in_degree(t.id()) == 0
                        {
                            let first = now + t.spec().release_offset();
                            if first < horizon {
                                self.push_event(first, Ev::Sporadic { task: t.id() });
                            }
                        }
                    }
                }
                Ev::Retire { tenant } => {
                    let mut sink = std::mem::take(&mut self.sink);
                    sink.clear();
                    self.timed(|e| {
                        e.retire_tenant_into(tenant, now, &mut sink)
                            .expect("retired tenant was admitted");
                    });
                    self.apply_actions(now, &sink);
                    self.sink = sink;
                }
            }
        }

        // Account still-running slices up to the horizon.
        for (w, slice) in self.slices.iter().enumerate() {
            if let Some(s) = slice {
                let busy = horizon.saturating_since(s.start);
                let cap = self.wall_time(WorkerId::new(w as u16), s.remaining_ref);
                self.worker_busy[w] += busy.min(cap);
            }
        }

        // Energy model: busy at active power, idle at idle power, accels
        // at their active power. A shard accounts only its own worker
        // (busy *and* idle), so per-shard energies sum to the
        // whole-system figure without double-counting idle cores.
        let mut energy = Energy::ZERO;
        for (w, busy) in self.worker_busy.iter().enumerate() {
            if self.shard.is_some_and(|sw| sw.index() != w) {
                continue;
            }
            let class = self.cfg.platform.class_of(CoreId::new(w as u16));
            let idle = self.cfg.horizon.saturating_sub(*busy);
            energy += class.active_power().energy_over(*busy);
            energy += class.idle_power().energy_over(idle);
        }
        for (a, busy) in self.accel_busy.iter().enumerate() {
            let spec = &self.engine.taskset().accels()[a];
            energy += spec.active_power().energy_over(*busy);
        }

        // Unfinished jobs: anything still tracked.
        let unfinished = self.slab.len() + self.engine.ready_len();
        let unfinished_missed = self
            .slab
            .iter_jobs()
            .filter(|j| j.deadline_missed_at(horizon))
            .count();

        Ok(SimResult {
            records: self.records,
            unfinished,
            unfinished_missed,
            engine_stats: self.engine.stats().clone(),
            horizon,
            sched_overhead_ns: self.overhead_ns,
            worker_busy: self.worker_busy,
            energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::priority::PriorityPolicy;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn edf(workers: usize) -> Config {
        Config::builder()
            .workers(workers)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap()
    }

    fn simple_set(n: usize, period_ms: u64, wcet_ms: u64) -> Arc<TaskSet> {
        let mut b = TaskSetBuilder::new();
        for i in 0..n {
            let t = b
                .task_decl(TaskSpec::periodic(format!("t{i}"), ms(period_ms)))
                .unwrap();
            b.version_decl(t, VersionSpec::new("v", ms(wcet_ms)))
                .unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn single_task_runs_every_period() {
        let ts = simple_set(1, 10, 2);
        let sim = Simulation::new(ts, edf(1), SimConfig::uniform(1, ms(100))).unwrap();
        let r = sim.run().unwrap();
        // Releases at 0,10,...,90 -> 10 jobs, all complete, none missed.
        assert_eq!(r.records.len(), 10);
        assert_eq!(r.total_misses(), 0);
        let rt = r.response_times(TaskId::new(0));
        assert_eq!(rt.max(), Some(ms(2).as_nanos()));
        assert_eq!(r.unfinished, 0);
        // Worker busy 10 * 2ms = 20ms over 100ms.
        assert!((r.worker_utilisation(0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn overload_misses_deadlines() {
        // One worker, two tasks each needing 6ms per 10ms -> U = 1.2.
        let ts = simple_set(2, 10, 6);
        let sim = Simulation::new(ts, edf(1), SimConfig::uniform(1, ms(200))).unwrap();
        let r = sim.run().unwrap();
        assert!(r.total_misses() > 0, "overload must miss deadlines");
    }

    #[test]
    fn edf_u_le_1_never_misses() {
        // Classic EDF optimality on one core: U = 0.9.
        let mut b = TaskSetBuilder::new();
        for (p, c) in [(10u64, 3u64), (20, 6), (40, 12)] {
            let t = b
                .task_decl(TaskSpec::periodic(format!("t{p}"), ms(p)))
                .unwrap();
            b.version_decl(t, VersionSpec::new("v", ms(c))).unwrap();
        }
        let ts = Arc::new(b.build().unwrap());
        let sim = Simulation::new(ts, edf(1), SimConfig::uniform(1, ms(400))).unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.total_misses(), 0);
        assert!(r.engine_stats.preempted > 0, "EDF at U=0.9 must preempt");
    }

    #[test]
    fn little_cores_stretch_execution() {
        let ts = simple_set(1, 100, 10);
        let mut cfg = SimConfig::uniform(1, ms(100));
        cfg.platform = PlatformSpec::odroid_xu4();
        // Worker 0 on a big core.
        let r_big = Simulation::new(Arc::clone(&ts), edf(1), cfg.clone())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            r_big.records[0].response_time(),
            ms(10),
            "big core runs at reference speed"
        );
        // Re-map: platform where core 0 is LITTLE (use cores 4.. of the
        // odroid by building a custom platform).
        let little = PlatformSpec::new(
            "little-only",
            vec![yasmin_core::platform::CoreClass::new("LITTLE", 2, 5)],
            vec![0],
        );
        cfg.platform = little;
        let r_little = Simulation::new(ts, edf(1), cfg).unwrap().run().unwrap();
        assert_eq!(
            r_little.records[0].response_time(),
            ms(25),
            "0.4x speed -> 10ms of work takes 25ms"
        );
    }

    #[test]
    fn dag_pipeline_completes_in_order() {
        let mut b = TaskSetBuilder::new();
        let src = b.task_decl(TaskSpec::periodic("src", ms(50))).unwrap();
        let dst = b.task_decl(TaskSpec::graph_node("dst")).unwrap();
        b.version_decl(src, VersionSpec::new("s", ms(5))).unwrap();
        b.version_decl(dst, VersionSpec::new("d", ms(5))).unwrap();
        let c = b.channel_decl("c", 1, 8);
        b.channel_connect(src, dst, c).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let sim = Simulation::new(ts, edf(2), SimConfig::uniform(2, ms(100))).unwrap();
        let r = sim.run().unwrap();
        let srcs: Vec<_> = r.records_of(TaskId::new(0)).collect();
        let dsts: Vec<_> = r.records_of(TaskId::new(1)).collect();
        assert_eq!(srcs.len(), 2);
        assert_eq!(dsts.len(), 2);
        for (s, d) in srcs.iter().zip(&dsts) {
            assert!(d.first_start >= s.completion, "consumer after producer");
            assert_eq!(d.graph_release, s.release);
            assert_eq!(d.end_to_end(), d.completion.saturating_since(s.release));
        }
    }

    #[test]
    fn preemption_progress_is_preserved() {
        // Long job preempted by short periodic urgent task; total work
        // must be conserved (response = own work + interference).
        let mut b = TaskSetBuilder::new();
        let long = b.task_decl(TaskSpec::periodic("long", ms(100))).unwrap();
        b.version_decl(long, VersionSpec::new("l", ms(40))).unwrap();
        let short = b
            .task_decl(TaskSpec::periodic("short", ms(20)).with_constrained_deadline(ms(5)))
            .unwrap();
        b.version_decl(short, VersionSpec::new("s", ms(2))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let sim = Simulation::new(ts, edf(1), SimConfig::uniform(1, ms(100))).unwrap();
        let r = sim.run().unwrap();
        let long_rec = r.records_of(TaskId::new(0)).next().expect("long finished");
        // 40ms of own work + 2ms interference per 20ms window.
        assert!(long_rec.preemptions >= 1);
        let resp = long_rec.response_time();
        assert!(resp >= ms(44), "resp = {resp}");
        assert!(resp <= ms(50), "resp = {resp}");
        assert_eq!(r.total_misses(), 0);
    }

    #[test]
    fn kernel_latency_shifts_starts() {
        let ts = simple_set(1, 10, 1);
        let mut cfg = SimConfig::uniform(1, ms(100));
        cfg.kernel = Some(KernelKind::PreemptRt);
        cfg.stress = StressProfile::PAPER;
        let r = Simulation::new(ts, edf(1), cfg).unwrap().run().unwrap();
        assert!(!r.records.is_empty());
        for rec in &r.records {
            assert!(
                rec.start_latency() >= Duration::from_micros(170),
                "kernel base latency applies: {}",
                rec.start_latency()
            );
        }
    }

    #[test]
    fn measured_overhead_samples_collected() {
        let ts = simple_set(5, 10, 1);
        let mut cfg = SimConfig::uniform(2, ms(100));
        cfg.measure_engine_time = true;
        let r = Simulation::new(ts, edf(2), cfg).unwrap().run().unwrap();
        assert!(r.sched_overhead_ns.count() > 10);
        assert!(r.sched_overhead_ns.max().unwrap() > 0);
    }

    #[test]
    fn sporadic_roots_fire() {
        let mut b = TaskSetBuilder::new();
        let s = b.task_decl(TaskSpec::sporadic("s", ms(10))).unwrap();
        b.version_decl(s, VersionSpec::new("v", ms(1))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let sim = Simulation::new(ts, edf(1), SimConfig::uniform(1, ms(100))).unwrap();
        let r = sim.run().unwrap();
        assert_eq!(r.records.len(), 10);
        assert_eq!(r.engine_stats.sporadic_violations, 0);
    }

    #[test]
    fn energy_accumulates() {
        let ts = simple_set(1, 10, 5);
        let r = Simulation::new(ts, edf(1), SimConfig::uniform(1, ms(100)))
            .unwrap()
            .run()
            .unwrap();
        // Uniform platform: 1W active. 50ms busy -> 50 mJ active + idle.
        assert!(r.energy.as_microjoules() > 50_000);
    }

    #[test]
    fn too_many_workers_rejected() {
        let ts = simple_set(1, 10, 1);
        let err = Simulation::new(ts, edf(4), SimConfig::uniform(2, ms(10)));
        assert!(err.is_err());
    }

    #[test]
    fn deterministic_runs() {
        let mk = || {
            let ts = simple_set(4, 10, 2);
            let mut cfg = SimConfig::uniform(2, ms(200));
            cfg.exec = ExecModel::UniformPct {
                min_pct: 60,
                max_pct: 100,
            };
            cfg.seed = 1234;
            Simulation::new(ts, edf(2), cfg).unwrap().run().unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.completion, y.completion);
            assert_eq!(x.worker, y.worker);
        }
    }
}
