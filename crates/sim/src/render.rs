//! Trace rendering: ASCII Gantt charts and Chrome-trace JSON export.
//!
//! Turns a [`SimResult`] into something a human
//! (or `chrome://tracing` / Perfetto) can look at when exploring
//! scheduling behaviour — the visual half of the paper's design-space
//! exploration story.

use crate::trace::SimResult;
use std::fmt::Write as _;
use yasmin_core::graph::TaskSet;
use yasmin_core::time::{Duration, Instant};

/// Renders a per-worker ASCII Gantt chart of the first `window` of the
/// simulation, `columns` characters wide. Each record paints the span
/// `first_start..completion` with the first letter of the task name
/// (`.` = idle, `*` = several jobs per cell).
#[must_use]
pub fn ascii_gantt(result: &SimResult, ts: &TaskSet, window: Duration, columns: usize) -> String {
    let columns = columns.max(10);
    let workers = result.worker_busy.len();
    let ns_per_col = (window.as_nanos() / columns as u64).max(1);
    let mut rows: Vec<Vec<char>> = vec![vec!['.'; columns]; workers];
    for r in &result.records {
        if r.first_start >= Instant::ZERO + window {
            continue;
        }
        let start_col = (r.first_start.as_nanos() / ns_per_col) as usize;
        let end_col = ((r.completion.as_nanos().saturating_sub(1)) / ns_per_col) as usize;
        let letter = ts.tasks()[r.task.index()]
            .spec()
            .name()
            .chars()
            .next()
            .unwrap_or('?');
        let row = &mut rows[r.worker.index()];
        for cell in row
            .iter_mut()
            .take(end_col.min(columns - 1) + 1)
            .skip(start_col.min(columns - 1))
        {
            *cell = if *cell == '.' { letter } else { '*' };
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "time: 0 .. {window} ({ns_per_col} ns/col)");
    for (w, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "W{w} |{}|", row.iter().collect::<String>());
    }
    out
}

/// Exports the records as Chrome-trace JSON (one complete event per job,
/// `pid` 0, `tid` = worker). Load in `chrome://tracing` or Perfetto.
#[must_use]
pub fn chrome_trace(result: &SimResult, ts: &TaskSet) -> String {
    let mut out = String::from("[");
    for (i, r) in result.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = ts.tasks()[r.task.index()].spec().name();
        let start_us = r.first_start.as_nanos() as f64 / 1e3;
        let dur_us = r.completion.saturating_since(r.first_start).as_nanos() as f64 / 1e3;
        let _ = write!(
            out,
            "{{\"name\":\"{name}#{}\",\"cat\":\"job\",\"ph\":\"X\",\
             \"ts\":{start_us:.3},\"dur\":{dur_us:.3},\"pid\":0,\"tid\":{},\
             \"args\":{{\"version\":{},\"missed\":{}}}}}",
            r.seq,
            r.worker.index(),
            r.version.index(),
            r.missed()
        );
    }
    out.push(']');
    out
}

/// A compact per-task textual report (count, response times, misses).
#[must_use]
pub fn task_report(result: &SimResult, ts: &TaskSet) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>6} {:>12} {:>12} {:>12} {:>7}",
        "task", "jobs", "min resp", "avg resp", "max resp", "misses"
    );
    for t in ts.tasks() {
        let s = result.response_times(t.id());
        if s.count() == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:>12} {:>12} {:>12} {:>7}",
            t.spec().name(),
            s.count(),
            Duration::from_nanos(s.min().unwrap_or(0)).to_string(),
            Duration::from_nanos(s.mean().unwrap_or(0.0) as u64).to_string(),
            Duration::from_nanos(s.max().unwrap_or(0)).to_string(),
            result.miss_count(t.id()),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{SimConfig, Simulation};
    use std::sync::Arc;
    use yasmin_core::config::Config;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::priority::PriorityPolicy;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn run() -> (SimResult, TaskSet) {
        let mut b = TaskSetBuilder::new();
        let a = b
            .task_decl(TaskSpec::periodic("alpha", Duration::from_millis(10)))
            .unwrap();
        let c = b
            .task_decl(TaskSpec::periodic("beta", Duration::from_millis(20)))
            .unwrap();
        b.version_decl(a, VersionSpec::new("v", Duration::from_millis(2)))
            .unwrap();
        b.version_decl(c, VersionSpec::new("v", Duration::from_millis(4)))
            .unwrap();
        let ts = b.build().unwrap();
        let config = Config::builder()
            .workers(2)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap();
        let result = Simulation::new(
            Arc::new(ts.clone()),
            config,
            SimConfig::uniform(2, Duration::from_millis(60)),
        )
        .unwrap()
        .run()
        .unwrap();
        (result, ts)
    }

    #[test]
    fn gantt_has_one_row_per_worker() {
        let (result, ts) = run();
        let g = ascii_gantt(&result, &ts, Duration::from_millis(60), 60);
        assert_eq!(g.lines().count(), 3); // header + 2 workers
        assert!(g.contains("W0 |"));
        assert!(g.contains('a'), "alpha should appear: {g}");
    }

    #[test]
    fn chrome_trace_is_json_shaped() {
        let (result, ts) = run();
        let j = chrome_trace(&result, &ts);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("alpha#0"));
        // Events equal completed records.
        assert_eq!(j.matches("\"cat\":\"job\"").count(), result.records.len());
    }

    #[test]
    fn task_report_lists_all_tasks() {
        let (result, ts) = run();
        let rep = task_report(&result, &ts);
        assert!(rep.contains("alpha"));
        assert!(rep.contains("beta"));
        assert!(rep.contains("misses"));
    }

    #[test]
    fn empty_result_renders() {
        let (mut result, ts) = run();
        result.records.clear();
        let g = ascii_gantt(&result, &ts, Duration::from_millis(10), 20);
        assert!(g.contains("...."));
        assert_eq!(chrome_trace(&result, &ts), "[]");
    }
}
