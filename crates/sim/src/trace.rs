//! Per-job records and aggregated simulation results.

use yasmin_core::energy::Energy;
use yasmin_core::ids::{JobId, TaskId, VersionId, WorkerId};
use yasmin_core::stats::{Samples, Summary};
use yasmin_core::time::{Duration, Instant};
use yasmin_sched::EngineStats;

/// Everything the simulator learned about one completed job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobRecord {
    /// Job identifier.
    pub job: JobId,
    /// The task.
    pub task: TaskId,
    /// Activation sequence number of the task.
    pub seq: u64,
    /// Release time.
    pub release: Instant,
    /// Release of the owning graph instance (= `release` for roots).
    pub graph_release: Instant,
    /// Absolute deadline (`Instant::MAX` if unconstrained).
    pub abs_deadline: Instant,
    /// First time the job started executing.
    pub first_start: Instant,
    /// Completion time.
    pub completion: Instant,
    /// The version that ran.
    pub version: VersionId,
    /// The worker that finished the job.
    pub worker: WorkerId,
    /// How many times the job was preempted.
    pub preemptions: u32,
}

impl JobRecord {
    /// Response time: completion − release.
    #[must_use]
    pub fn response_time(&self) -> Duration {
        self.completion.saturating_since(self.release)
    }

    /// End-to-end time within the graph instance: completion − graph
    /// release. For sink tasks this is the paper's "time to process a
    /// frame" (Fig. 4).
    #[must_use]
    pub fn end_to_end(&self) -> Duration {
        self.completion.saturating_since(self.graph_release)
    }

    /// `true` if the job finished after its deadline.
    #[must_use]
    pub fn missed(&self) -> bool {
        self.abs_deadline != Instant::MAX && self.completion > self.abs_deadline
    }

    /// Wake-up latency of the first dispatch: first start − release.
    #[must_use]
    pub fn start_latency(&self) -> Duration {
        self.first_start.saturating_since(self.release)
    }
}

/// The outcome of one simulation run.
#[derive(Debug)]
pub struct SimResult {
    /// Completed jobs, in completion order.
    pub records: Vec<JobRecord>,
    /// Jobs released but not finished by the horizon.
    pub unfinished: usize,
    /// Of the unfinished, how many had already passed their deadline.
    pub unfinished_missed: usize,
    /// Scheduler-engine counters.
    pub engine_stats: EngineStats,
    /// The simulated horizon.
    pub horizon: Instant,
    /// Wall-clock nanoseconds spent inside scheduler-engine calls (one
    /// sample per tick/completion event) — the measured middleware
    /// overhead used by the Figure 2 experiment.
    pub sched_overhead_ns: Samples,
    /// Per-worker busy time.
    pub worker_busy: Vec<Duration>,
    /// Total modelled energy (cores + accelerators).
    pub energy: Energy,
}

impl SimResult {
    /// Records of one task.
    pub fn records_of(&self, task: TaskId) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(move |r| r.task == task)
    }

    /// Response-time summary for one task.
    #[must_use]
    pub fn response_times(&self, task: TaskId) -> Summary {
        self.records_of(task)
            .map(|r| r.response_time().as_nanos())
            .collect()
    }

    /// End-to-end summary for one (sink) task.
    #[must_use]
    pub fn end_to_end(&self, task: TaskId) -> Summary {
        self.records_of(task)
            .map(|r| r.end_to_end().as_nanos())
            .collect()
    }

    /// Completed-job deadline misses for one task.
    #[must_use]
    pub fn miss_count(&self, task: TaskId) -> usize {
        self.records_of(task).filter(|r| r.missed()).count()
    }

    /// Total deadline misses across all tasks (completed late +
    /// unfinished past deadline).
    #[must_use]
    pub fn total_misses(&self) -> usize {
        self.records.iter().filter(|r| r.missed()).count() + self.unfinished_missed
    }

    /// Deadline-miss ratio over all *completed* jobs of one task.
    #[must_use]
    pub fn miss_ratio(&self, task: TaskId) -> f64 {
        let total = self.records_of(task).count();
        if total == 0 {
            return 0.0;
        }
        self.miss_count(task) as f64 / total as f64
    }

    /// Utilisation of one worker over the horizon.
    #[must_use]
    pub fn worker_utilisation(&self, worker: usize) -> f64 {
        if self.horizon == Instant::ZERO {
            return 0.0;
        }
        self.worker_busy[worker].as_nanos() as f64 / self.horizon.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(release_ms: u64, completion_ms: u64, deadline_ms: u64) -> JobRecord {
        JobRecord {
            job: JobId::new(0),
            task: TaskId::new(0),
            seq: 0,
            release: Instant::from_nanos(release_ms * 1_000_000),
            graph_release: Instant::from_nanos(release_ms * 1_000_000),
            abs_deadline: Instant::from_nanos(deadline_ms * 1_000_000),
            first_start: Instant::from_nanos(release_ms * 1_000_000 + 50_000),
            completion: Instant::from_nanos(completion_ms * 1_000_000),
            version: VersionId::new(0),
            worker: WorkerId::new(0),
            preemptions: 0,
        }
    }

    #[test]
    fn response_and_miss() {
        let r = record(10, 18, 20);
        assert_eq!(r.response_time(), Duration::from_millis(8));
        assert!(!r.missed());
        let late = record(10, 25, 20);
        assert!(late.missed());
        assert_eq!(late.start_latency(), Duration::from_micros(50));
    }

    #[test]
    fn unconstrained_never_misses() {
        let mut r = record(0, 100, 1);
        r.abs_deadline = Instant::MAX;
        assert!(!r.missed());
    }

    #[test]
    fn result_aggregates() {
        let result = SimResult {
            records: vec![record(0, 8, 10), record(10, 25, 20), record(20, 28, 30)],
            unfinished: 1,
            unfinished_missed: 1,
            engine_stats: EngineStats::default(),
            horizon: Instant::from_nanos(40_000_000),
            sched_overhead_ns: Samples::new(),
            worker_busy: vec![Duration::from_millis(20)],
            energy: Energy::ZERO,
        };
        let t = TaskId::new(0);
        assert_eq!(result.miss_count(t), 1);
        assert_eq!(result.total_misses(), 2);
        assert!((result.miss_ratio(t) - 1.0 / 3.0).abs() < 1e-12);
        let rt = result.response_times(t);
        assert_eq!(rt.count(), 3);
        assert_eq!(rt.max(), Some(15_000_000));
        assert!((result.worker_utilisation(0) - 0.5).abs() < 1e-12);
        // Unknown task: empty.
        assert_eq!(result.miss_ratio(TaskId::new(9)), 0.0);
    }
}
