//! Execution-time models: how long a job actually runs relative to its
//! declared WCET.
//!
//! WCETs are upper bounds; real executions finish earlier. The Figure 4
//! experiment's deadline-miss ratios depend on this spread, so the model
//! is explicit and seeded.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use yasmin_core::time::Duration;

/// How actual execution times are drawn from the WCET.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecModel {
    /// Every job runs for exactly its WCET (worst case, deterministic).
    Wcet,
    /// Uniform in `[min_pct, max_pct]` percent of the WCET.
    UniformPct {
        /// Lower bound, percent of WCET (≥ 1).
        min_pct: u32,
        /// Upper bound, percent of WCET (≤ 100 for sound WCETs).
        max_pct: u32,
    },
}

impl Default for ExecModel {
    fn default() -> Self {
        // A common empirical spread: 60–100 % of WCET.
        ExecModel::UniformPct {
            min_pct: 60,
            max_pct: 100,
        }
    }
}

/// A seeded sampler for an [`ExecModel`].
#[derive(Debug)]
pub struct ExecSampler {
    model: ExecModel,
    rng: StdRng,
}

impl ExecSampler {
    /// Creates a sampler with its own deterministic stream.
    #[must_use]
    pub fn new(model: ExecModel, seed: u64) -> Self {
        ExecSampler {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws the execution time of one job with the given WCET.
    ///
    /// # Panics
    ///
    /// Panics if a `UniformPct` model has `min_pct == 0` or an inverted
    /// range.
    pub fn sample(&mut self, wcet: Duration) -> Duration {
        match self.model {
            ExecModel::Wcet => wcet,
            ExecModel::UniformPct { min_pct, max_pct } => {
                assert!(
                    min_pct > 0 && min_pct <= max_pct,
                    "UniformPct needs 0 < min <= max"
                );
                let pct = self.rng.random_range(min_pct..=max_pct);
                let ns = (u128::from(wcet.as_nanos()) * u128::from(pct) / 100) as u64;
                Duration::from_nanos(ns.max(1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcet_model_is_identity() {
        let mut s = ExecSampler::new(ExecModel::Wcet, 0);
        let w = Duration::from_millis(7);
        assert_eq!(s.sample(w), w);
    }

    #[test]
    fn uniform_pct_within_bounds() {
        let mut s = ExecSampler::new(
            ExecModel::UniformPct {
                min_pct: 60,
                max_pct: 100,
            },
            1,
        );
        let w = Duration::from_millis(100);
        for _ in 0..200 {
            let e = s.sample(w);
            assert!(e >= Duration::from_millis(60) && e <= w, "e = {e}");
        }
    }

    #[test]
    fn never_zero() {
        let mut s = ExecSampler::new(
            ExecModel::UniformPct {
                min_pct: 1,
                max_pct: 1,
            },
            2,
        );
        assert!(s.sample(Duration::from_nanos(10)).as_nanos() >= 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let w = Duration::from_millis(10);
        let mut a = ExecSampler::new(ExecModel::default(), 42);
        let mut b = ExecSampler::new(ExecModel::default(), 42);
        for _ in 0..50 {
            assert_eq!(a.sample(w), b.sample(w));
        }
    }
}
