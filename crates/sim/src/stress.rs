//! A stress-ng-like interference profile.
//!
//! The paper generates load with `stress-ng -C 8 -c 8 -T 8 -y 8`:
//! 8 threads each of cache-thrashing, CPU computation, timer events and
//! `sched_yield` stressors (§4.2). For the simulator this becomes a
//! scalar *intensity* in `[0, 1]` fed into the kernel latency model; the
//! real-thread analogue lives in `yasmin-baselines::stress`.

/// Thread counts per stressor class, mirroring stress-ng's `-C -c -T -y`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StressProfile {
    /// Cache-thrashing threads (`-C`).
    pub cache: u32,
    /// CPU-computation threads (`-c`).
    pub cpu: u32,
    /// Timer-event threads (`-T`).
    pub timer: u32,
    /// `sched_yield` threads (`-y`).
    pub yield_: u32,
}

impl StressProfile {
    /// No interference.
    pub const IDLE: StressProfile = StressProfile {
        cache: 0,
        cpu: 0,
        timer: 0,
        yield_: 0,
    };

    /// The paper's configuration: `-C 8 -c 8 -T 8 -y 8`.
    pub const PAPER: StressProfile = StressProfile {
        cache: 8,
        cpu: 8,
        timer: 8,
        yield_: 8,
    };

    /// Total stressor threads.
    #[must_use]
    pub const fn total_threads(&self) -> u32 {
        self.cache + self.cpu + self.timer + self.yield_
    }

    /// Scalar intensity in `[0, 1]` for a platform with `cores` cores.
    ///
    /// Saturates once the stressors oversubscribe the machine by 4×
    /// (beyond that, extra threads mostly queue behind each other).
    /// Timer and yield stressors count double: they enter the kernel on
    /// every iteration, which is what actually perturbs wake-up latency.
    #[must_use]
    pub fn intensity(&self, cores: usize) -> f64 {
        if cores == 0 {
            return 1.0;
        }
        let weighted =
            f64::from(self.cache) + f64::from(self.cpu) + 2.0 * f64::from(self.timer + self.yield_);
        let saturation = 4.0 * cores as f64;
        (weighted / saturation).min(1.0)
    }
}

impl Default for StressProfile {
    fn default() -> Self {
        StressProfile::IDLE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_zero() {
        assert_eq!(StressProfile::IDLE.intensity(8), 0.0);
        assert_eq!(StressProfile::IDLE.total_threads(), 0);
    }

    #[test]
    fn paper_profile_saturates_odroid() {
        // 8+8+2*(8+8) = 48 weighted threads on 8 cores: 48/32 > 1 -> 1.0.
        let p = StressProfile::PAPER;
        assert_eq!(p.total_threads(), 32);
        assert!((p.intensity(8) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_load_scales() {
        let p = StressProfile {
            cache: 4,
            cpu: 4,
            timer: 0,
            yield_: 0,
        };
        // 8 weighted / 32 = 0.25.
        assert!((p.intensity(8) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn more_cores_dilute() {
        let p = StressProfile {
            cache: 8,
            cpu: 0,
            timer: 0,
            yield_: 0,
        };
        assert!(p.intensity(2) > p.intensity(16));
    }

    #[test]
    fn zero_cores_is_full() {
        assert_eq!(StressProfile::PAPER.intensity(0), 1.0);
    }
}
