//! PR 5 acceptance checks for the cross-shard protocol loop in
//! `yasmin_sim::par`:
//!
//! * a DAG task set whose edges span workers runs under
//!   `run_partitioned_parallel` and produces **the same trace** as the
//!   single-owner reference simulation (records matched on
//!   `(task, seq)`, compared on every timing/placement field);
//! * an imbalanced partitioned set with stealing enabled shows
//!   `stolen > 0` and a strictly lower makespan than the same run
//!   without stealing;
//! * the protocol loop is deterministic run to run.

use std::sync::Arc;
use yasmin_core::config::{Config, MappingScheme};
use yasmin_core::graph::{TaskSet, TaskSetBuilder};
use yasmin_core::ids::WorkerId;
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::task::TaskSpec;
use yasmin_core::time::{Duration, Instant};
use yasmin_core::version::VersionSpec;
use yasmin_sim::{run_partitioned_parallel, ParSimOptions, SimConfig, SimResult, Simulation};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn us(v: u64) -> Duration {
    Duration::from_micros(v)
}

fn config(workers: usize, sharded: bool) -> Config {
    Config::builder()
        .workers(workers)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(sharded)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .preemption(false)
        .build()
        .unwrap()
}

fn opts(steal: bool) -> ParSimOptions {
    ParSimOptions {
        producers: 2,
        lane_capacity: 16,
        steal,
        steal_batch: 1,
    }
}

/// A DAG with edges crossing shards in both directions, plus local
/// work on each worker. WCETs are odd microsecond values so no event
/// ever ties with an event from another source.
fn cross_shard_set() -> Arc<TaskSet> {
    let w0 = WorkerId::new(0);
    let w1 = WorkerId::new(1);
    let mut b = TaskSetBuilder::new();
    let a = b
        .task_decl(TaskSpec::periodic("a", ms(20)).on_worker(w0))
        .unwrap();
    let a_dst = b
        .task_decl(TaskSpec::graph_node("a_dst").on_worker(w1))
        .unwrap();
    let bb = b
        .task_decl(TaskSpec::periodic("b", ms(40)).on_worker(w1))
        .unwrap();
    let b_dst = b
        .task_decl(TaskSpec::graph_node("b_dst").on_worker(w0))
        .unwrap();
    b.version_decl(a, VersionSpec::new("a", us(3_137))).unwrap();
    b.version_decl(a_dst, VersionSpec::new("ad", us(2_411)))
        .unwrap();
    b.version_decl(bb, VersionSpec::new("b", us(5_071)))
        .unwrap();
    b.version_decl(b_dst, VersionSpec::new("bd", us(1_913)))
        .unwrap();
    let c1 = b.channel_decl("c1", 1, 8);
    let c2 = b.channel_decl("c2", 1, 8);
    b.channel_connect(a, a_dst, c1).unwrap();
    b.channel_connect(bb, b_dst, c2).unwrap();
    Arc::new(b.build().unwrap())
}

fn assert_same_trace(single: &SimResult, par: &SimResult) {
    assert_eq!(single.records.len(), par.records.len(), "trace lengths");
    let key = |r: &yasmin_sim::JobRecord| (r.task, r.seq);
    let mut s = single.records.clone();
    let mut p = par.records.clone();
    s.sort_by_key(key);
    p.sort_by_key(key);
    for (a, b) in s.iter().zip(&p) {
        assert_eq!(key(a), key(b), "record identity");
        assert_eq!(a.release, b.release, "{a:?} vs {b:?}");
        assert_eq!(a.graph_release, b.graph_release);
        assert_eq!(a.abs_deadline, b.abs_deadline);
        assert_eq!(a.first_start, b.first_start, "{a:?} vs {b:?}");
        assert_eq!(a.completion, b.completion, "{a:?} vs {b:?}");
        assert_eq!(a.version, b.version);
        assert_eq!(a.worker, b.worker);
    }
    assert_eq!(single.unfinished, par.unfinished);
    assert_eq!(single.unfinished_missed, par.unfinished_missed);
    assert_eq!(single.engine_stats.released, par.engine_stats.released);
    assert_eq!(single.engine_stats.dispatched, par.engine_stats.dispatched);
    assert_eq!(single.engine_stats.completed, par.engine_stats.completed);
    assert_eq!(single.worker_busy, par.worker_busy);
    assert_eq!(
        single.energy.as_microjoules(),
        par.energy.as_microjoules(),
        "per-shard energy accounting sums to the whole-system figure"
    );
}

#[test]
fn cross_shard_dag_matches_single_owner_reference() {
    let ts = cross_shard_set();
    let sim = SimConfig::uniform(2, ms(200));
    let single = Simulation::new(Arc::clone(&ts), config(2, false), sim.clone())
        .unwrap()
        .run()
        .unwrap();
    let par = run_partitioned_parallel(Arc::clone(&ts), config(2, true), sim, opts(false)).unwrap();
    // The parallel run really crossed shards.
    assert!(
        par.engine_stats.cross_activations >= 10,
        "expected routed activations, got {}",
        par.engine_stats.cross_activations
    );
    // Successors genuinely ran on their own (foreign) worker.
    for r in par.records.iter().filter(|r| r.task.index() == 1) {
        assert_eq!(r.worker, WorkerId::new(1), "a_dst pinned to worker 1");
    }
    assert_same_trace(&single, &par);
}

#[test]
fn cross_shard_protocol_loop_is_deterministic() {
    let ts = cross_shard_set();
    let mut sim = SimConfig::uniform(2, ms(120));
    sim.measure_engine_time = true;
    let run =
        || run_partitioned_parallel(Arc::clone(&ts), config(2, true), sim.clone(), opts(false));
    let x = run().unwrap();
    let y = run().unwrap();
    assert_eq!(x.records.len(), y.records.len());
    for (a, b) in x.records.iter().zip(&y.records) {
        assert_eq!(a, b);
    }
    // The protocol loop records measured scheduler overhead like the
    // other drivers.
    assert!(x.sched_overhead_ns.count() > 10);
}

#[test]
fn cross_shard_sporadic_commands_merge_in_global_time_order() {
    // Regression: the protocol loop once applied every external
    // command due before the *pre-pass* heap minimum in one batch, so
    // shard 1's sporadic at 4 ms was dispatched before shard 0's
    // finish at ~2 ms emitted its cross-shard token — the successor
    // then found worker 1 busy and started late, diverging from the
    // single-owner reference. The merge must interleave commands and
    // heap events in one global time order.
    let w0 = WorkerId::new(0);
    let w1 = WorkerId::new(1);
    let mut b = TaskSetBuilder::new();
    let s0 = b
        .task_decl(
            TaskSpec::sporadic("s0", ms(40))
                .with_release_offset(us(1_003))
                .on_worker(w0),
        )
        .unwrap();
    let d = b
        .task_decl(TaskSpec::graph_node("d").on_worker(w1))
        .unwrap();
    let s1 = b
        .task_decl(
            TaskSpec::sporadic("s1", ms(40))
                .with_release_offset(us(4_001))
                .on_worker(w1),
        )
        .unwrap();
    b.version_decl(s0, VersionSpec::new("s0", us(1_009)))
        .unwrap();
    b.version_decl(d, VersionSpec::new("d", us(1_013))).unwrap();
    b.version_decl(s1, VersionSpec::new("s1", us(5_003)))
        .unwrap();
    let c = b.channel_decl("c", 1, 8);
    b.channel_connect(s0, d, c).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let sim = SimConfig::uniform(2, ms(40));
    let single = Simulation::new(Arc::clone(&ts), config(2, false), sim.clone())
        .unwrap()
        .run()
        .unwrap();
    let par = run_partitioned_parallel(Arc::clone(&ts), config(2, true), sim, opts(false)).unwrap();
    // The successor must start right after its predecessor (~2.012 ms),
    // before the 4.001 ms sporadic occupies worker 1.
    let d_rec = par
        .records
        .iter()
        .find(|r| r.task == d)
        .expect("successor completed");
    assert_eq!(d_rec.first_start, Instant::from_nanos(2_012_000));
    assert_same_trace(&single, &par);
}

/// Everything lands on worker 0 (four 10 ms sporadic one-shot jobs);
/// worker 1 owns only a light periodic tick source.
fn imbalanced_set() -> Arc<TaskSet> {
    let mut b = TaskSetBuilder::new();
    for i in 0..4u64 {
        let t = b
            .task_decl(
                TaskSpec::sporadic(format!("h{i}"), ms(500))
                    .with_release_offset(us(701 + 4 * i))
                    .on_worker(WorkerId::new(0)),
            )
            .unwrap();
        b.version_decl(t, VersionSpec::new("h", ms(10))).unwrap();
    }
    let light = b
        .task_decl(TaskSpec::periodic("light", ms(10)).on_worker(WorkerId::new(1)))
        .unwrap();
    b.version_decl(light, VersionSpec::new("l", us(103)))
        .unwrap();
    Arc::new(b.build().unwrap())
}

fn makespan(r: &SimResult) -> Instant {
    r.records
        .iter()
        .filter(|rec| rec.task.index() < 4)
        .map(|rec| rec.completion)
        .max()
        .expect("heavy jobs completed")
}

#[test]
fn stealing_lowers_the_makespan_of_an_imbalanced_set() {
    let ts = imbalanced_set();
    let sim = SimConfig::uniform(2, ms(100));
    let no_steal =
        run_partitioned_parallel(Arc::clone(&ts), config(2, true), sim.clone(), opts(false))
            .unwrap();
    let steal =
        run_partitioned_parallel(Arc::clone(&ts), config(2, true), sim, opts(true)).unwrap();

    // All four heavy jobs complete in both runs.
    for r in [&no_steal, &steal] {
        assert_eq!(
            r.records.iter().filter(|rec| rec.task.index() < 4).count(),
            4
        );
    }
    assert_eq!(no_steal.engine_stats.stolen, 0);
    assert!(
        steal.engine_stats.stolen >= 1,
        "the idle shard must steal: {:?}",
        steal.engine_stats
    );
    assert_eq!(steal.engine_stats.stolen, steal.engine_stats.donated);
    // Stolen jobs really ran on the foreign worker.
    assert!(steal
        .records
        .iter()
        .any(|rec| rec.task.index() < 4 && rec.worker == WorkerId::new(1)));
    let (m0, m1) = (makespan(&no_steal), makespan(&steal));
    assert!(m1 < m0, "stealing must lower the makespan: {m1} !< {m0}");
    // Serial execution on worker 0 takes ~40 ms; two workers should
    // roughly halve it.
    assert!(m0 >= Instant::from_nanos(40_000_000));
    assert!(m1 <= Instant::from_nanos(31_000_000));
}

/// PR 10 acceptance, batch stealing: 24 tasks — 20 short heavy
/// one-shots plus a train of three accelerator-bound jobs on worker 0,
/// and a light tick source on worker 1. The accel jobs carry the
/// shortest deadlines, so once they land they head worker 0's EDF
/// queue and **close the steal window** (`try_steal` refuses
/// accel-bound heads). A k=1 thief grabs only a couple of heavies
/// before the window shuts and then idles; a batched thief prefetches
/// half the victim's queue in one exchange and keeps working straight
/// through the closed window — measurably lowering the heavy-set
/// makespan. Reruns stay bit-identical.
#[test]
fn batch_steals_beat_single_steals_when_the_steal_window_closes() {
    let mut b = TaskSetBuilder::new();
    for i in 0..20u64 {
        let t = b
            .task_decl(
                TaskSpec::sporadic(format!("h{i}"), ms(500))
                    .with_release_offset(us(701 + 4 * i))
                    .on_worker(WorkerId::new(0)),
            )
            .unwrap();
        b.version_decl(t, VersionSpec::new("h", ms(2))).unwrap();
    }
    let gpu = b.hwaccel_decl("gpu");
    for i in 0..3u64 {
        let t = b
            .task_decl(
                TaskSpec::sporadic(format!("g{i}"), ms(60))
                    .with_release_offset(us(3_101 + 10 * i))
                    .on_worker(WorkerId::new(0)),
            )
            .unwrap();
        b.version_decl(t, VersionSpec::new("g", ms(15)).with_accel(gpu))
            .unwrap();
    }
    let light = b
        .task_decl(TaskSpec::periodic("light", ms(10)).on_worker(WorkerId::new(1)))
        .unwrap();
    b.version_decl(light, VersionSpec::new("l", us(103)))
        .unwrap();
    let ts = Arc::new(b.build().unwrap());
    assert_eq!(ts.tasks().len(), 24, "the scenario is a 24-task set");

    let sim = SimConfig::uniform(2, ms(150));
    let run = |steal_batch: usize| {
        run_partitioned_parallel(
            Arc::clone(&ts),
            config(2, true),
            sim.clone(),
            ParSimOptions {
                steal_batch,
                ..opts(true)
            },
        )
        .unwrap()
    };
    let single = run(1);
    let batched = run(8);

    let heavy_makespan = |r: &SimResult| {
        r.records
            .iter()
            .filter(|rec| rec.task.index() < 20)
            .map(|rec| rec.completion)
            .max()
            .expect("heavy jobs completed")
    };
    for r in [&single, &batched] {
        assert_eq!(
            r.records.iter().filter(|rec| rec.task.index() < 20).count(),
            20,
            "every heavy one-shot completes"
        );
        assert!(r.engine_stats.stolen >= 1);
        assert_eq!(r.engine_stats.stolen, r.engine_stats.donated);
    }
    // k = 1 never rides the batch grant; k = 8 does, and at least one
    // exchange moved more than one job.
    assert_eq!(single.engine_stats.stolen_batch, 0);
    assert!(batched.engine_stats.stolen_batch >= 1);
    assert!(
        batched.engine_stats.steal_batch_len[1..]
            .iter()
            .sum::<u64>()
            >= 1,
        "a multi-job grant happened: {:?}",
        batched.engine_stats.steal_batch_len
    );
    let (m1, mk) = (heavy_makespan(&single), heavy_makespan(&batched));
    assert!(
        mk < m1,
        "batch steals must lower the heavy makespan: {mk} !< {m1}"
    );
    // Deterministic: a rerun of the batched protocol loop is
    // bit-identical, batch sizing included.
    let again = run(8);
    assert_eq!(batched.records, again.records);
    assert_eq!(batched.engine_stats.stolen, again.engine_stats.stolen);
    assert_eq!(
        batched.engine_stats.steal_batch_len,
        again.engine_stats.steal_batch_len
    );
}

#[test]
fn stealing_run_is_deterministic() {
    let ts = imbalanced_set();
    let sim = SimConfig::uniform(2, ms(60));
    let run =
        || run_partitioned_parallel(Arc::clone(&ts), config(2, true), sim.clone(), opts(true));
    let x = run().unwrap();
    let y = run().unwrap();
    assert_eq!(x.records, y.records);
    assert_eq!(x.engine_stats.stolen, y.engine_stats.stolen);
}

/// PR 8 acceptance: scheduled high-lane message events are delivered
/// deterministically at event boundaries, produce the *same trace* in
/// the single-owner reference and the parallel protocol loop, and the
/// boost visibly reorders dispatch.
#[test]
fn message_boost_matches_single_owner_reference() {
    use yasmin_core::priority::Priority;
    use yasmin_sched::MsgEvent;
    let w0 = WorkerId::new(0);
    let w1 = WorkerId::new(1);
    // Worker 0: a blocker (earliest deadline) plus two queued tasks m1
    // (deadline 40 ms) and m2 (deadline 80 ms). Without the boost EDF
    // runs m1 before m2; the high post at 2.001 ms — while both wait
    // behind the blocker — must flip that order. Worker 1 only carries
    // a light tick source. WCETs/offsets are odd so no event ties.
    let mut b = TaskSetBuilder::new();
    let blocker = b
        .task_decl(TaskSpec::periodic("blocker", ms(20)).on_worker(w0))
        .unwrap();
    let m1 = b
        .task_decl(TaskSpec::periodic("m1", ms(40)).on_worker(w0))
        .unwrap();
    let m2 = b
        .task_decl(TaskSpec::periodic("m2", ms(80)).on_worker(w0))
        .unwrap();
    let light = b
        .task_decl(TaskSpec::periodic("light", ms(20)).on_worker(w1))
        .unwrap();
    b.version_decl(blocker, VersionSpec::new("b", us(5_003)))
        .unwrap();
    b.version_decl(m1, VersionSpec::new("m1", us(3_001)))
        .unwrap();
    b.version_decl(m2, VersionSpec::new("m2", us(2_003)))
        .unwrap();
    b.version_decl(light, VersionSpec::new("l", us(103)))
        .unwrap();
    let ts = Arc::new(b.build().unwrap());

    let mut sim = SimConfig::uniform(2, ms(40));
    sim.msg_schedule = vec![
        (
            us(2_001),
            MsgEvent::HighPosted {
                dst: m2,
                ceiling: Priority::HIGHEST,
            },
        ),
        (us(8_501), MsgEvent::HighDrained { dst: m2 }),
    ];

    let single = Simulation::new(Arc::clone(&ts), config(2, false), sim.clone())
        .unwrap()
        .run()
        .unwrap();
    let par = run_partitioned_parallel(Arc::clone(&ts), config(2, true), sim, opts(false)).unwrap();

    for r in [&single, &par] {
        assert_eq!(r.engine_stats.msg_boosts, 1, "{:?}", r.engine_stats);
        let start_of = |t| {
            r.records
                .iter()
                .find(|rec| rec.task == t)
                .expect("completed")
                .first_start
        };
        assert!(
            start_of(m2) < start_of(m1),
            "the boosted m2 must dispatch before the shorter-deadline m1 \
             ({} !< {})",
            start_of(m2),
            start_of(m1)
        );
        assert_eq!(start_of(m2), Instant::from_nanos(5_003_000));
    }
    assert_same_trace(&single, &par);

    // Determinism: the same schedule replays to an identical trace.
    let mut sim2 = SimConfig::uniform(2, ms(40));
    sim2.msg_schedule = vec![(
        us(2_001),
        MsgEvent::HighPosted {
            dst: m2,
            ceiling: Priority::HIGHEST,
        },
    )];
    let x = run_partitioned_parallel(Arc::clone(&ts), config(2, true), sim2.clone(), opts(false))
        .unwrap();
    let y = run_partitioned_parallel(Arc::clone(&ts), config(2, true), sim2, opts(false)).unwrap();
    assert_eq!(x.records, y.records);
}

#[test]
fn protocol_loop_rejects_preemptive_configs() {
    let ts = cross_shard_set();
    let preemptive = Config::builder()
        .workers(2)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(true)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .unwrap();
    let err = run_partitioned_parallel(ts, preemptive, SimConfig::uniform(2, ms(50)), opts(false));
    assert!(err.is_err());
}
