//! Acceptance checks for on-line admission in the deterministic
//! simulator:
//!
//! * a tenant admitted into a *running* partitioned system executes and
//!   meets its deadlines;
//! * admitting and then retiring tenant B leaves tenant A's trace
//!   **identical** to a solo run of A (every [`JobRecord`] field except
//!   `job` — the single-owner engine numbers jobs from one shared
//!   counter, so absolute ids shift when B's jobs interleave);
//! * retirement quiesces B: no B completion after the retire instant's
//!   in-flight jobs drain, and B's periodic releases stop;
//! * a rejected tenant names the violated analysis bound and perturbs
//!   nothing.

use std::sync::Arc;
use yasmin_core::config::{Config, MappingScheme};
use yasmin_core::graph::{TaskSet, TaskSetBuilder};
use yasmin_core::ids::{TaskId, WorkerId};
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::task::TaskSpec;
use yasmin_core::time::{Duration, Instant};
use yasmin_core::version::VersionSpec;
use yasmin_sched::admission::{AdmissionError, BoundViolation};
use yasmin_sched::server::TenantBudget;
use yasmin_sim::{JobRecord, SimConfig, Simulation};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn config(workers: usize) -> Config {
    Config::builder()
        .workers(workers)
        .mapping(MappingScheme::Partitioned)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .unwrap()
}

/// Tenant A (the build-time set): two periodic tasks on worker 0.
fn tenant_a() -> Arc<TaskSet> {
    let mut b = TaskSetBuilder::new();
    for (name, period, wcet) in [("a_fast", 10, 2), ("a_slow", 20, 3)] {
        let t = b
            .task_decl(TaskSpec::periodic(name, ms(period)).on_worker(WorkerId::new(0)))
            .unwrap();
        b.version_decl(t, VersionSpec::new(name, ms(wcet))).unwrap();
    }
    Arc::new(b.build().unwrap())
}

/// Tenant B: one periodic task on worker 1 (its own id space).
fn tenant_b(wcet_ms: u64) -> TaskSet {
    let mut b = TaskSetBuilder::new();
    let t = b
        .task_decl(TaskSpec::periodic("b_task", ms(10)).on_worker(WorkerId::new(1)))
        .unwrap();
    b.version_decl(t, VersionSpec::new("b", ms(wcet_ms)))
        .unwrap();
    b.build().unwrap()
}

/// Every field except the absolute job id (see module docs).
fn key(r: &JobRecord) -> impl PartialEq + std::fmt::Debug {
    (
        r.task,
        r.seq,
        r.release,
        r.graph_release,
        r.abs_deadline,
        r.first_start,
        r.completion,
        r.version,
        r.worker,
        r.preemptions,
    )
}

#[test]
fn admitted_tenant_runs_and_meets_deadlines() {
    let mut sim = Simulation::new(tenant_a(), config(2), SimConfig::uniform(2, ms(200))).unwrap();
    let tenant = sim
        .admit_at(
            ms(50),
            &tenant_b(2),
            Some(TenantBudget::deferrable(ms(4), ms(10))),
        )
        .unwrap();
    assert_eq!(tenant.raw(), 1);
    let res = sim.run().unwrap();
    // B's task is merged id 2 (after A's two tasks); admitted at 50ms
    // into a 200ms run with a 10ms period -> 15 releases, all on time.
    let b_task = TaskId::new(2);
    let b_records: Vec<_> = res.records_of(b_task).collect();
    assert_eq!(b_records.len(), 15, "B releases from the commit instant");
    assert_eq!(res.miss_count(b_task), 0);
    assert!(
        b_records
            .iter()
            .all(|r| r.release >= Instant::ZERO + ms(50)),
        "no B release before its admission"
    );
    assert!(
        b_records.iter().all(|r| r.worker == WorkerId::new(1)),
        "B is partitioned onto worker 1"
    );
    assert_eq!(res.total_misses(), 0);
}

#[test]
fn mid_run_tenant_leaves_other_tenants_trace_unchanged() {
    let horizon = ms(300);
    // Reference: A alone.
    let solo = Simulation::new(tenant_a(), config(2), SimConfig::uniform(2, horizon))
        .unwrap()
        .run()
        .unwrap();
    // Same run with B admitted at 60ms and retired at 180ms.
    let mut sim = Simulation::new(tenant_a(), config(2), SimConfig::uniform(2, horizon)).unwrap();
    let b = sim.admit_at(ms(60), &tenant_b(3), None).unwrap();
    sim.retire_at(ms(180), b);
    let shared = sim.run().unwrap();

    // A's records (tasks 0 and 1) must match the solo run on every
    // field but the absolute job id.
    for task in [TaskId::new(0), TaskId::new(1)] {
        let solo_recs: Vec<_> = solo.records_of(task).map(key).collect();
        let shared_recs: Vec<_> = shared.records_of(task).map(key).collect();
        assert_eq!(
            solo_recs, shared_recs,
            "task {task} trace perturbed by tenant B's lifecycle"
        );
    }

    // B ran while admitted and was quiesced by the retire: releases
    // stop at 180ms, so the last completion is its 170ms job.
    let b_task = TaskId::new(2);
    let b_recs: Vec<_> = shared.records_of(b_task).collect();
    assert_eq!(b_recs.len(), 12, "12 releases in [60ms, 180ms)");
    let last = b_recs.iter().map(|r| r.completion).max().unwrap();
    assert!(
        last <= Instant::ZERO + ms(180),
        "no B activity after retirement (last completion {last:?})"
    );
    assert_eq!(shared.total_misses(), 0);
}

#[test]
fn rejected_tenant_names_the_bound_and_perturbs_nothing() {
    let horizon = ms(100);
    let solo = Simulation::new(tenant_a(), config(2), SimConfig::uniform(2, horizon))
        .unwrap()
        .run()
        .unwrap();
    let mut sim = Simulation::new(tenant_a(), config(2), SimConfig::uniform(2, horizon)).unwrap();
    // 12ms of work every 10ms on worker 1: density 1.2 > 1.
    match sim.admit_at(ms(20), &tenant_b(12), None) {
        Err(AdmissionError::Rejected(BoundViolation::WorkerOverload { worker, density })) => {
            assert_eq!(worker, WorkerId::new(1));
            assert!(density > 1.0);
        }
        other => panic!("expected worker-overload rejection, got {other:?}"),
    }
    let res = sim.run().unwrap();
    assert_eq!(
        res.records.len(),
        solo.records.len(),
        "a rejected admission must leave the run untouched"
    );
    for (a, b) in solo.records.iter().zip(res.records.iter()) {
        assert_eq!(key(a), key(b));
    }
}

#[test]
fn stacked_admissions_get_sequential_tenant_ids() {
    let mut sim = Simulation::new(tenant_a(), config(2), SimConfig::uniform(2, ms(100))).unwrap();
    let t1 = sim.admit_at(ms(10), &tenant_b(1), None).unwrap();
    let t2 = sim.admit_at(ms(30), &tenant_b(1), None).unwrap();
    assert_eq!((t1.raw(), t2.raw()), (1, 2));
    // Out-of-order scheduling is refused.
    assert!(matches!(
        sim.admit_at(ms(20), &tenant_b(1), None),
        Err(AdmissionError::Invalid(_))
    ));
    let res = sim.run().unwrap();
    // Merged ids: first B copy is task 2, second is task 3.
    assert!(res.records_of(TaskId::new(2)).count() > 0);
    assert!(res.records_of(TaskId::new(3)).count() > 0);
    assert_eq!(res.total_misses(), 0);
}
