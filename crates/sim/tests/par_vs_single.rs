//! The PR 3 acceptance check: the multi-threaded sharded driver (N
//! producer threads feeding per-worker engine shards through the
//! lock-free command mailbox) must produce **the same trace** as the
//! single-threaded simulation for the same partitioned task set.
//!
//! Job ids are excluded from the comparison — shards stamp their worker
//! index into the id's high bits — so records are matched on the
//! semantically meaningful identity `(task, seq)` and compared on every
//! timing/placement field.

use std::sync::Arc;
use yasmin_core::config::{Config, MappingScheme};
use yasmin_core::graph::{TaskSet, TaskSetBuilder};
use yasmin_core::ids::WorkerId;
use yasmin_core::priority::PriorityPolicy;
use yasmin_core::task::TaskSpec;
use yasmin_core::time::Duration;
use yasmin_core::version::VersionSpec;
use yasmin_sim::{run_partitioned_parallel, ParSimOptions, SimConfig, Simulation};
use yasmin_taskgen::taskset::{build_partitioned, IndependentSetParams};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

fn us(v: u64) -> Duration {
    Duration::from_micros(v)
}

fn config(workers: usize, sharded: bool) -> Config {
    Config::builder()
        .workers(workers)
        .mapping(MappingScheme::Partitioned)
        .sharded_dispatch(sharded)
        .priority(PriorityPolicy::EarliestDeadlineFirst)
        .build()
        .unwrap()
}

/// Runs both drivers and asserts trace + aggregate equality.
fn assert_traces_match(ts: &Arc<TaskSet>, workers: usize, horizon: Duration, producers: usize) {
    let sim = SimConfig::uniform(workers, horizon);
    let single = Simulation::new(Arc::clone(ts), config(workers, false), sim.clone())
        .unwrap()
        .run()
        .unwrap();
    let par = run_partitioned_parallel(
        Arc::clone(ts),
        config(workers, true),
        sim,
        ParSimOptions {
            producers,
            lane_capacity: 16,
            ..ParSimOptions::default()
        },
    )
    .unwrap();

    assert_eq!(single.records.len(), par.records.len(), "trace lengths");
    let key = |r: &yasmin_sim::JobRecord| (r.task, r.seq);
    let mut s = single.records.to_vec();
    let mut p = par.records.to_vec();
    s.sort_by_key(key);
    p.sort_by_key(key);
    for (a, b) in s.iter().zip(&p) {
        assert_eq!(key(a), key(b), "record identity");
        assert_eq!(a.release, b.release, "{:?} vs {:?}", a, b);
        assert_eq!(a.graph_release, b.graph_release);
        assert_eq!(a.abs_deadline, b.abs_deadline);
        assert_eq!(a.first_start, b.first_start, "{:?} vs {:?}", a, b);
        assert_eq!(a.completion, b.completion, "{:?} vs {:?}", a, b);
        assert_eq!(a.version, b.version);
        assert_eq!(a.worker, b.worker);
        assert_eq!(a.preemptions, b.preemptions);
    }

    assert_eq!(single.unfinished, par.unfinished);
    assert_eq!(single.unfinished_missed, par.unfinished_missed);
    assert_eq!(single.engine_stats.released, par.engine_stats.released);
    assert_eq!(single.engine_stats.dispatched, par.engine_stats.dispatched);
    assert_eq!(single.engine_stats.completed, par.engine_stats.completed);
    assert_eq!(single.engine_stats.preempted, par.engine_stats.preempted);
    assert_eq!(single.worker_busy, par.worker_busy);
    assert_eq!(
        single.energy.as_microjoules(),
        par.energy.as_microjoules(),
        "per-shard energy accounting must sum to the whole-system figure"
    );
}

/// Mixed periodic + sporadic set across two workers. WCETs are odd
/// microsecond values and the sporadic offset is off the tick grid, so
/// no event ever ties with an event from a different source — ordering
/// is then a pure function of simulated time on both drivers.
fn mixed_two_worker_set() -> Arc<TaskSet> {
    let w0 = WorkerId::new(0);
    let w1 = WorkerId::new(1);
    let mut b = TaskSetBuilder::new();
    let a = b
        .task_decl(TaskSpec::periodic("a", ms(10)).on_worker(w0))
        .unwrap();
    let s = b
        .task_decl(
            TaskSpec::sporadic("s", ms(20))
                .with_release_offset(ms(1))
                .on_worker(w0),
        )
        .unwrap();
    let bb = b
        .task_decl(
            TaskSpec::periodic("b", ms(20))
                .with_constrained_deadline(ms(18))
                .on_worker(w1),
        )
        .unwrap();
    let c = b
        .task_decl(TaskSpec::periodic("c", ms(40)).on_worker(w1))
        .unwrap();
    b.version_decl(a, VersionSpec::new("a", us(3_137))).unwrap();
    b.version_decl(s, VersionSpec::new("s", us(2_411))).unwrap();
    b.version_decl(bb, VersionSpec::new("b", us(7_253)))
        .unwrap();
    b.version_decl(c, VersionSpec::new("c", us(9_101))).unwrap();
    Arc::new(b.build().unwrap())
}

#[test]
fn par_driver_matches_single_thread_mixed_sporadic() {
    let ts = mixed_two_worker_set();
    // ≥ 4 producer threads per the acceptance criterion.
    assert_traces_match(&ts, 2, ms(200), 4);
}

#[test]
fn par_driver_matches_single_thread_generated_periodic() {
    // A larger generated set: 24 periodic tasks worst-fit partitioned
    // over 3 workers at U = 2.2, enough to preempt. No sporadics: every
    // event is shard-local, so even same-instant ties are resolved
    // identically by both drivers (the shard's push order mirrors the
    // single-owner engine's within each worker).
    let ts = Arc::new(
        build_partitioned(
            &IndependentSetParams {
                n: 24,
                total_utilisation: 2.2,
                seed: 7,
                ..IndependentSetParams::default()
            },
            3,
        )
        .unwrap(),
    );
    assert_traces_match(&ts, 3, ms(300), 4);
}

#[test]
fn par_driver_handles_more_producers_than_tasks() {
    let ts = mixed_two_worker_set();
    assert_traces_match(&ts, 2, ms(100), 8);
}

#[test]
fn par_driver_survives_schedules_far_beyond_the_lane_floor() {
    // Regression: with bounded lanes, producer 0 blocked on shard 0's
    // full lane while shard 1 waits on producer 0's open-but-empty lane
    // (and symmetrically) deadlocked the watermark merge. Lanes are now
    // sized to the full per-producer schedule, so a 150-activation
    // stream against a floor of 8 must complete — and still match the
    // single-threaded trace.
    let mut b = TaskSetBuilder::new();
    for w in 0..2u16 {
        let t = b
            .task_decl(
                TaskSpec::sporadic(format!("s{w}"), ms(1))
                    .with_release_offset(us(300 + 400 * u64::from(w)))
                    .on_worker(WorkerId::new(w)),
            )
            .unwrap();
        b.version_decl(t, VersionSpec::new("v", us(97))).unwrap();
    }
    let ts = Arc::new(b.build().unwrap());
    assert_traces_match(&ts, 2, ms(150), 2);
}

#[test]
fn par_driver_matches_single_thread_at_the_horizon_edge() {
    // Regression: the single-threaded driver releases a sporadic root
    // whose offset lands *exactly* on the horizon (its event filter is
    // inclusive); the producer schedules must do the same or released/
    // unfinished counts diverge.
    let mut b = TaskSetBuilder::new();
    let s = b
        .task_decl(
            TaskSpec::sporadic("edge", ms(20))
                .with_release_offset(ms(50))
                .on_worker(WorkerId::new(0)),
        )
        .unwrap();
    b.version_decl(s, VersionSpec::new("v", us(500))).unwrap();
    let p = b
        .task_decl(TaskSpec::periodic("p", ms(10)).on_worker(WorkerId::new(0)))
        .unwrap();
    b.version_decl(p, VersionSpec::new("v", us(713))).unwrap();
    let ts = Arc::new(b.build().unwrap());
    let single = Simulation::new(
        Arc::clone(&ts),
        config(1, false),
        SimConfig::uniform(1, ms(50)),
    )
    .unwrap()
    .run()
    .unwrap();
    assert_eq!(single.unfinished, 1, "horizon-edge release is counted");
    assert_traces_match(&ts, 1, ms(50), 4);
}
