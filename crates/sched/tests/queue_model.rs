//! Property test: [`ReadyQueue`] (the struct-of-arrays index-tracked
//! 4-ary heap) against a naive sorted-`Vec` reference model, under
//! random push/pop/remove sequences. Catches ordering bugs the unit
//! tests' hand-picked sequences would miss — in particular mid-heap
//! removals repairing the heap and the id → position index through
//! sifts, the payload slab staying aligned with the sifting node array,
//! (in the at-capacity variant) the exact `len()` accounting at the
//! bound, and (in the scan variant) `scan_in_order` enumerating exactly
//! the reference's sorted order, with early stops, without mutating.

use proptest::prelude::*;
use yasmin_core::ids::{JobId, TaskId};
use yasmin_core::priority::Priority;
use yasmin_core::time::{Duration, Instant};
use yasmin_sched::{Job, ReadyQueue};

fn job(id: u64, prio: u64, release_ns: u64) -> Job {
    Job {
        id: JobId::new(id),
        task: TaskId::new(id as u32),
        seq: 0,
        release: Instant::from_nanos(release_ns),
        graph_release: Instant::from_nanos(release_ns),
        abs_deadline: Instant::from_nanos(release_ns) + Duration::from_millis(10),
        priority: Priority::new(prio),
        preempted: false,
    }
}

/// The reference: an unordered `Vec` popped by minimum `queue_key`.
#[derive(Default)]
struct ModelQueue {
    jobs: Vec<Job>,
}

impl ModelQueue {
    fn push(&mut self, j: Job) {
        self.jobs.push(j);
    }

    fn pop(&mut self) -> Option<Job> {
        let i = self
            .jobs
            .iter()
            .enumerate()
            .min_by_key(|(_, j)| j.queue_key())
            .map(|(i, _)| i)?;
        Some(self.jobs.remove(i))
    }

    fn peek(&self) -> Option<Job> {
        self.jobs.iter().min_by_key(|j| j.queue_key()).copied()
    }

    fn remove(&mut self, id: JobId) -> Option<Job> {
        let i = self.jobs.iter().position(|j| j.id == id)?;
        Some(self.jobs.remove(i))
    }

    fn sorted(&self) -> Vec<Job> {
        let mut v = self.jobs.clone();
        v.sort_by_key(Job::queue_key);
        v
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn ready_queue_matches_reference_model(ops in prop::collection::vec(0u64..(1u64 << 62), 8..120)) {
        let mut q = ReadyQueue::with_capacity(256);
        let mut m = ModelQueue::default();
        let mut next_id = 0u64;
        for op in ops {
            match op % 4 {
                // Pushes twice as likely as each other op, so queues fill.
                0 | 1 => {
                    // Few distinct priorities/releases on purpose: ties
                    // exercise the deterministic id tiebreaker.
                    let j = job(next_id, (op >> 2) % 8, (op >> 5) % 4);
                    next_id += 1;
                    q.push(j).unwrap();
                    m.push(j);
                }
                2 => {
                    prop_assert_eq!(q.pop(), m.pop());
                }
                3 => {
                    // Remove a live id most of the time, a missing id
                    // sometimes (both must be no-op-identical).
                    let target = if m.jobs.is_empty() || op & (1 << 40) != 0 {
                        JobId::new(next_id + 1_000)
                    } else {
                        m.jobs[((op >> 2) as usize) % m.jobs.len()].id
                    };
                    prop_assert_eq!(q.remove(target), m.remove(target));
                }
                _ => unreachable!(),
            }
            prop_assert_eq!(q.len(), m.jobs.len());
            prop_assert_eq!(q.is_empty(), m.jobs.is_empty());
            prop_assert_eq!(q.peek().copied(), m.peek());
            prop_assert_eq!(q.peek_priority(), m.peek().map(|j| j.priority));
        }
        // Drain both fully: the complete surviving order must agree.
        loop {
            let (a, b) = (q.pop(), m.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Interleaved `remove`/`push`/`pop` **at capacity**: a tiny bound
    /// keeps the queue pinned against its limit, so pushes regularly hit
    /// `CapacityExceeded` and removals must free exactly one slot — the
    /// accounting is exact (no lazy-delete debt to subtract).
    #[test]
    fn ready_queue_matches_reference_model_at_capacity(ops in prop::collection::vec(0u64..(1u64 << 62), 16..200)) {
        const CAP: usize = 8;
        let mut q = ReadyQueue::with_capacity(CAP);
        let mut m = ModelQueue::default();
        let mut next_id = 0u64;
        for op in ops {
            match op % 4 {
                0 | 1 => {
                    let j = job(next_id, (op >> 2) % 8, (op >> 5) % 4);
                    next_id += 1;
                    let res = q.push(j);
                    if m.jobs.len() < CAP {
                        prop_assert!(res.is_ok());
                        m.push(j);
                    } else {
                        prop_assert!(res.is_err(), "push past the bound must fail");
                    }
                }
                2 => {
                    prop_assert_eq!(q.pop(), m.pop());
                }
                3 => {
                    let target = if m.jobs.is_empty() || op & (1 << 40) != 0 {
                        JobId::new(next_id + 1_000)
                    } else {
                        m.jobs[((op >> 2) as usize) % m.jobs.len()].id
                    };
                    let removed = q.remove(target);
                    prop_assert_eq!(removed, m.remove(target));
                    if removed.is_some() && m.jobs.len() == CAP - 1 {
                        // A removal at the bound frees exactly one slot.
                        let j = job(next_id, (op >> 3) % 8, 0);
                        next_id += 1;
                        prop_assert!(q.push(j).is_ok());
                        m.push(j);
                    }
                }
                _ => unreachable!(),
            }
            prop_assert_eq!(q.len(), m.jobs.len());
            prop_assert_eq!(q.is_empty(), m.jobs.is_empty());
            prop_assert_eq!(q.peek().copied(), m.peek());
        }
        loop {
            let (a, b) = (q.pop(), m.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// `scan_in_order` against the reference's sorted order, checked at
    /// intervals through a random push/pop/remove history: the full
    /// enumeration must equal the sorted model exactly, a random-length
    /// early-stopped scan must yield precisely the k most urgent jobs,
    /// and neither scan may mutate the queue — the contract batch
    /// stealing's hint enumeration stands on.
    #[test]
    fn scan_in_order_matches_sorted_reference(ops in prop::collection::vec(0u64..(1u64 << 62), 8..80)) {
        let mut q = ReadyQueue::with_capacity(128);
        let mut m = ModelQueue::default();
        let mut next_id = 0u64;
        let mut frontier = Vec::new();
        for (step, &op) in ops.iter().enumerate() {
            match op % 4 {
                0 | 1 => {
                    let j = job(next_id, (op >> 2) % 8, (op >> 5) % 4);
                    next_id += 1;
                    q.push(j).unwrap();
                    m.push(j);
                }
                2 => {
                    prop_assert_eq!(q.pop(), m.pop());
                }
                3 => {
                    let target = if m.jobs.is_empty() || op & (1 << 40) != 0 {
                        JobId::new(next_id + 1_000)
                    } else {
                        m.jobs[((op >> 2) as usize) % m.jobs.len()].id
                    };
                    prop_assert_eq!(q.remove(target), m.remove(target));
                }
                _ => unreachable!(),
            }
            // Scanning every op would square the case cost; every few
            // ops still crosses plenty of distinct heap shapes.
            if step % 4 == 3 {
                let expect = m.sorted();
                let mut seen: Vec<Job> = Vec::new();
                q.scan_in_order(&mut frontier, |j| {
                    seen.push(*j);
                    true
                });
                prop_assert_eq!(&seen, &expect, "full scan == sorted model");
                prop_assert_eq!(q.len(), expect.len(), "scan must not mutate");
                if !expect.is_empty() {
                    let k = 1 + (op >> 7) as usize % expect.len();
                    seen.clear();
                    q.scan_in_order(&mut frontier, |j| {
                        seen.push(*j);
                        seen.len() < k
                    });
                    prop_assert_eq!(&seen, &expect[..k], "early stop yields the k most urgent");
                }
            }
        }
    }
}
