//! On-line admission control: multi-tenant serving for a running
//! schedule.
//!
//! The paper fixes the task set before `yas_start` ("it is only possible
//! to alter the task set while the schedule is not running", §3.1). A
//! middleware serving many independent applications cannot stop the
//! world to take one more on board, so this module adds the missing
//! piece: an arriving *tenant* — an independently-declared
//! [`TaskSet`] — is schedulability-checked against the live
//! system with the `yasmin_analysis` bounds, and only on acceptance is
//! it spliced into the running engine(s). Rejections are structured: the
//! caller learns *which* analysis bound failed and by how much
//! ([`BoundViolation`]), not just "no".
//!
//! # Tenancy model
//!
//! **A tenant is a task-set namespace.** Each tenant declares its tasks,
//! versions, accelerators and channels against its own id space starting
//! at zero, exactly as if it were the only application. At admission the
//! tenant's set is appended to the live set with
//! [`TaskSet::extended`]: every pre-existing id is unchanged, and the
//! tenant's ids are offset into the merged space (its `T0` becomes
//! `T<n>` where `n` was the live task count). Consequences:
//!
//! * **Isolation by construction** — no edges ever cross tenants, so a
//!   tenant's DAG tokens, joins and completions cannot touch another
//!   tenant's activation state. Accelerators are likewise *not* shared
//!   across tenants: a tenant wanting a GPU declares its own, which maps
//!   to its own arbitration slot.
//! * **Ids are stable for the lifetime of the schedule** — admission is
//!   append-only and retirement *tombstones* a tenant (marks its range
//!   retired) rather than compacting ids. A retired tenant's memory is
//!   reclaimed only when the schedule itself ends; this is the price of
//!   letting the hot path index dense per-task vectors without
//!   indirection.
//! * **Tenant 0 is the task set the engine was built with.** It is never
//!   budgeted and cannot be retired (stop the schedule instead).
//!
//! **Budgets.** An admitted tenant may carry a [`TenantBudget`], which
//! the engine turns into a [`ReservationServer`]
//! (a deferrable/polling server in the Ghazalie & Baker sense, anchored
//! at the admission instant). Every dispatch of one of the tenant's jobs
//! charges the *selected version's WCET* against the server,
//! all-or-nothing: a job that does not fit in the remaining budget is
//! deferred to a later dispatch round — never dropped — and counted in
//! [`EngineStats::budget_deferrals`]. Charges
//! are not refunded on early completion, so the reservation is
//! conservative. Under sharded scheduling each shard holds its own
//! replica of the server: the budget is then a *per-worker* guarantee,
//! and a tenant spanning `k` shards may consume up to `k × capacity`
//! per period in total.
//!
//! # The admission state machine
//!
//! ```text
//!            evaluate()                 splice                commit
//! Arriving ─────────────▶ Checked ─────────────▶ Spliced ─────────────▶ Committed
//!     │                                                                    │
//!     │ BoundViolation                                                     │ retire
//!     ▼                                                                    ▼
//! Rejected (structured refusal)                                         Retired
//! ```
//!
//! * **Checked** — [`AdmissionControl::evaluate`] ran the analysis on
//!   the *merged* set (live + candidate) on the caller's thread. This is
//!   deliberately a non-real-time operation: the RTA fixed points, DAG
//!   bounds and demand tests allocate and iterate, so drivers run them
//!   on an admission thread, never on a scheduler thread.
//! * **Spliced** — every engine (the single [`OnlineEngine`], or each
//!   [`EngineShard`](crate::shard::EngineShard)) adopted the merged set
//!   via [`OnlineEngine::splice_taskset`] with the tenant's releases
//!   still disarmed. In the sharded runtime the splice command travels
//!   the same per-shard control mailbox lane as every other command, so
//!   it serialises with the hot path instead of locking it.
//! * **Committed** — [`OnlineEngine::commit_tenant_into`] armed the
//!   tenant's periodic roots. Two-phase matters under sharding: commit
//!   is sent only after *every* shard acknowledged its splice, so no
//!   shard can complete a tenant job and route a cross-shard token to a
//!   shard that has never heard of the edge.
//! * **Retired** — [`OnlineEngine::retire_tenant_into`] quiesced the
//!   tenant: future releases disarmed, ready jobs culled, pending DAG
//!   tokens dropped, late cross-shard tokens silently discarded.
//!   In-flight jobs finish normally (their completions are the tenant's
//!   last trace) but fire no successors.
//!
//! # What is (and is not) guaranteed during splice-in
//!
//! * Existing tenants' scheduling is **bit-identical** to a run without
//!   the admission until the commit instant, and unperturbed after it
//!   as long as the admission test held (the deterministic-simulator
//!   parity test asserts the partitioned case exactly).
//! * The new tenant's first release is **exact in nominal time** —
//!   `release anchor + release_offset` — but its *dispatch* happens at
//!   the engine's tick granularity, and the tick is **fixed at build
//!   time** (gcd of the initial periods, §3.3). The engine therefore
//!   refuses tenants whose periods are not multiples of the running
//!   tick, rather than silently drifting their releases. The release
//!   anchor is the commit instant for exact event-driven drivers (the
//!   simulator); a driver dispatching on a fixed tick grid (the thread
//!   runtimes) instead anchors at its **next tick edge**
//!   ([`OnlineEngine::commit_tenant_anchored_into`]), because an
//!   off-grid release phase would delay every dispatch of the tenant by
//!   up to one tick — enough to sink a deadline equal to the period.
//! * Admission analysis assumes worst-case (largest) version WCETs
//!   ([`WcetAssumption::MaxVersion`]); run-time version selection can
//!   only do better.
//! * Splicing allocates (the engine's dense vectors grow). Admission is
//!   a control-path event; the steady state between admissions stays
//!   allocation-free, which `tests/zero_alloc.rs` asserts with a
//!   counting allocator.
//!
//! [`EngineStats::budget_deferrals`]: crate::engine::EngineStats::budget_deferrals
//! [`TaskSet::extended`]: yasmin_core::graph::TaskSet::extended

use crate::engine::OnlineEngine;
use crate::server::{ReservationServer, TenantBudget};
use std::fmt;
use std::sync::Arc;
use yasmin_analysis::rta::partitioned_response_times;
use yasmin_analysis::util::wcet_of;
use yasmin_analysis::{
    dag_meets_deadline, edf_schedulable, gfb_global_edf_test, graham_bound, max_utilisation,
    response_times, response_times_blocking, total_utilisation, ResponseTime, WcetAssumption,
};
use yasmin_core::config::{Config, MappingScheme};
use yasmin_core::error::Error;
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{TaskId, TenantId, WorkerId};
use yasmin_core::time::{Duration, Instant};

/// Float-comparison slack for utilisation/density sums.
const EPS: f64 = 1e-9;

/// The analysis bound a rejected tenant violated, with the numbers that
/// failed it — the structured half of the refusal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundViolation {
    /// Total utilisation exceeds the platform capacity (`m` processors,
    /// or 1 for a single core / one partition).
    TotalUtilisation {
        /// Achieved `Σ C_i / T_i` of the merged set.
        total: f64,
        /// The capacity it must not exceed.
        capacity: f64,
    },
    /// The GFB sufficient test for global EDF failed:
    /// `U > m − (m−1)·U_max`.
    GfbDensity {
        /// Total utilisation of the merged set.
        total: f64,
        /// The GFB bound `m − (m−1)·U_max` it exceeded.
        bound: f64,
    },
    /// The EDF processor-demand criterion found an interval whose demand
    /// exceeds its length (single core).
    EdfDemand {
        /// Total utilisation of the merged set (≤ 1, or the failure
        /// would be [`BoundViolation::TotalUtilisation`]).
        total: f64,
    },
    /// Response-time analysis proved a task misses its deadline.
    TaskUnschedulable {
        /// The offending task (merged id space).
        task: TaskId,
        /// Its computed WCRT; `None` if the fixed point diverged past
        /// the deadline.
        wcrt: Option<Duration>,
        /// The deadline it misses.
        deadline: Duration,
    },
    /// One partition's density `Σ C_i / min(D_i, T_i)` exceeds its core
    /// (partitioned EDF).
    WorkerOverload {
        /// The overloaded worker.
        worker: WorkerId,
        /// Its density.
        density: f64,
    },
    /// Graham's bound proves a DAG cannot meet its graph deadline on the
    /// platform.
    DagDeadline {
        /// The DAG's root (merged id space).
        root: TaskId,
        /// The Graham makespan bound.
        bound: Duration,
        /// The graph deadline it exceeds.
        deadline: Duration,
    },
    /// The requested [`TenantBudget`] reserves less bandwidth than the
    /// tenant's own tasks demand — the reservation would starve the
    /// tenant it protects.
    BudgetInsufficient {
        /// The tenant's task utilisation `Σ C_i / T_i`.
        tenant_utilisation: f64,
        /// The budget's utilisation `capacity / period`.
        budget_utilisation: f64,
    },
}

impl fmt::Display for BoundViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundViolation::TotalUtilisation { total, capacity } => {
                write!(
                    f,
                    "total utilisation {total:.4} exceeds capacity {capacity:.4}"
                )
            }
            BoundViolation::GfbDensity { total, bound } => {
                write!(f, "global-EDF GFB test failed: U = {total:.4} > {bound:.4}")
            }
            BoundViolation::EdfDemand { total } => {
                write!(f, "EDF demand bound exceeded (U = {total:.4})")
            }
            BoundViolation::TaskUnschedulable {
                task,
                wcrt,
                deadline,
            } => match wcrt {
                Some(r) => write!(f, "task {task} WCRT {r:?} exceeds deadline {deadline:?}"),
                None => write!(f, "task {task} RTA diverged past deadline {deadline:?}"),
            },
            BoundViolation::WorkerOverload { worker, density } => {
                write!(f, "worker {worker} density {density:.4} exceeds 1")
            }
            BoundViolation::DagDeadline {
                root,
                bound,
                deadline,
            } => write!(
                f,
                "DAG rooted at {root}: Graham bound {bound:?} exceeds deadline {deadline:?}"
            ),
            BoundViolation::BudgetInsufficient {
                tenant_utilisation,
                budget_utilisation,
            } => write!(
                f,
                "budget utilisation {budget_utilisation:.4} is below the tenant's \
                 task utilisation {tenant_utilisation:.4}"
            ),
        }
    }
}

/// Why an admission request did not go through: a schedulability
/// refusal carrying the violated bound, or a malformed request.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// The analysis rejected the tenant; the system keeps its current
    /// guarantees and the candidate is not spliced.
    Rejected(BoundViolation),
    /// The request itself is invalid (partition violations, incompatible
    /// tick, missing bodies, id overflow, …) — admission never reached
    /// the analysis.
    Invalid(Error),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Rejected(v) => write!(f, "tenant rejected: {v}"),
            AdmissionError::Invalid(e) => write!(f, "admission request invalid: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

impl From<Error> for AdmissionError {
    fn from(e: Error) -> Self {
        AdmissionError::Invalid(e)
    }
}

impl From<AdmissionError> for Error {
    fn from(e: AdmissionError) -> Self {
        match e {
            AdmissionError::Rejected(v) => Error::AdmissionRejected(v.to_string()),
            AdmissionError::Invalid(inner) => inner,
        }
    }
}

/// The admission-time schedulability gate.
///
/// Holds the scheduling [`Config`] and the running engine's (fixed)
/// tick, and evaluates candidate tenants against the live task set. The
/// test battery follows the configuration:
///
/// | mapping | priorities | test |
/// |---|---|---|
/// | partitioned (incl. sharded) | static (RM/DM/user) | per-partition RTA (`partitioned_response_times`) |
/// | partitioned (incl. sharded) | EDF | per-partition density `Σ C/min(D,T) ≤ 1` |
/// | global, 1 worker | static | RTA, with the PIP blocking term when accelerators are declared |
/// | global, 1 worker | EDF | utilisation + processor-demand criterion |
/// | global, m workers | EDF | `U ≤ m` + the GFB test `U ≤ m − (m−1)·U_max` |
/// | global, m workers | static | refused — no sound test is implemented |
///
/// On top of the mapping test, every multi-task DAG of the candidate
/// with a finite graph deadline must pass Graham's bound on the
/// configured worker count, and a [`TenantBudget`], when requested,
/// must cover the tenant's own utilisation.
///
/// All tests assume [`WcetAssumption::MaxVersion`] — the largest WCET
/// over each task's versions — so run-time multi-version selection can
/// only improve on the admitted guarantees.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    config: Config,
    tick: Duration,
}

impl AdmissionControl {
    /// An admission gate for a system running under `config` with the
    /// scheduler tick `tick` (see
    /// [`OnlineEngine::tick_period`]).
    #[must_use]
    pub fn new(config: Config, tick: Duration) -> Self {
        AdmissionControl { config, tick }
    }

    /// Convenience constructor reading both from a live engine.
    #[must_use]
    pub fn for_engine(engine: &OnlineEngine) -> Self {
        AdmissionControl::new(engine.config().clone(), engine.tick_period())
    }

    /// The configuration this gate admits against.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The running scheduler tick admitted periods must divide into.
    #[must_use]
    pub fn tick(&self) -> Duration {
        self.tick
    }

    /// Evaluates admitting `candidate` (a tenant declared in its own id
    /// space) into the live set `current`, with an optional budget
    /// request. Returns the merged task set — ready for
    /// [`OnlineEngine::splice_taskset`] — on acceptance.
    ///
    /// Runs on the caller's thread and allocates freely: call it from an
    /// admission thread, never a scheduler thread.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::Invalid`] for malformed requests (empty
    /// candidate, partition violations, a period that is not a multiple
    /// of the running tick, degenerate budget);
    /// [`AdmissionError::Rejected`] with the violated
    /// [`BoundViolation`] when the analysis fails.
    pub fn evaluate(
        &self,
        current: &TaskSet,
        candidate: &TaskSet,
        budget: Option<&TenantBudget>,
    ) -> Result<Arc<TaskSet>, AdmissionError> {
        if candidate.is_empty() {
            return Err(AdmissionError::Invalid(Error::InvalidConfig(
                "candidate tenant declares no tasks".into(),
            )));
        }
        if let Some(b) = budget {
            if b.capacity.is_zero() || b.period.is_zero() || b.capacity > b.period {
                return Err(AdmissionError::Invalid(Error::InvalidConfig(
                    "tenant budget needs 0 < capacity <= period".into(),
                )));
            }
        }
        let workers = self.config.workers();
        if self.config.mapping() == MappingScheme::Partitioned {
            for t in candidate.tasks() {
                match t.spec().assigned_worker() {
                    None => return Err(AdmissionError::Invalid(Error::MissingPartition(t.id()))),
                    Some(w) if w.index() >= workers => {
                        return Err(AdmissionError::Invalid(Error::UnknownWorker(w)))
                    }
                    Some(_) => {}
                }
            }
        }
        for t in candidate.tasks() {
            if t.spec().kind().is_recurring()
                && t.spec().period().as_nanos() % self.tick.as_nanos() != 0
            {
                return Err(AdmissionError::Invalid(Error::InvalidConfig(format!(
                    "tenant task {} period {:?} is not a multiple of the running tick {:?}",
                    t.id(),
                    t.spec().period(),
                    self.tick
                ))));
            }
        }

        let merged = Arc::new(current.extended(candidate)?);
        let a = WcetAssumption::MaxVersion;

        if let Some(b) = budget {
            let tenant_util = total_utilisation(candidate, a);
            if tenant_util > b.utilisation() + EPS {
                return Err(AdmissionError::Rejected(
                    BoundViolation::BudgetInsufficient {
                        tenant_utilisation: tenant_util,
                        budget_utilisation: b.utilisation(),
                    },
                ));
            }
        }

        match (self.config.mapping(), self.config.priority().is_static()) {
            (MappingScheme::Partitioned, true) => {
                self.check_partitioned_static(&merged, a)?;
            }
            (MappingScheme::Partitioned, false) => {
                self.check_partitioned_edf(&merged, a)?;
            }
            (MappingScheme::Global, is_static) => {
                self.check_global(&merged, is_static, a)?;
            }
        }
        self.check_dags(&merged, current.len(), a)?;
        Ok(merged)
    }

    fn check_partitioned_static(
        &self,
        merged: &TaskSet,
        a: WcetAssumption,
    ) -> Result<(), AdmissionError> {
        let results =
            partitioned_response_times(merged, self.config.workers(), self.config.priority(), a);
        for (_, r) in results {
            if !r.schedulable() {
                return Err(AdmissionError::Rejected(reject_rta(&r)));
            }
        }
        Ok(())
    }

    fn check_partitioned_edf(
        &self,
        merged: &TaskSet,
        a: WcetAssumption,
    ) -> Result<(), AdmissionError> {
        for w in 0..self.config.workers() {
            let mut density = 0.0;
            for t in merged.tasks() {
                if t.spec().assigned_worker().map(WorkerId::index) != Some(w) {
                    continue;
                }
                let c = wcet_of(merged, t.id(), a).as_nanos() as f64;
                let d = merged.effective_deadline(t.id());
                let denom = match merged.effective_period(t.id()) {
                    Some(p) if d < p => d,
                    Some(p) => p,
                    None => d,
                };
                if denom == Duration::MAX || denom.is_zero() {
                    continue; // aperiodic & unconstrained: no recurring demand
                }
                density += c / denom.as_nanos() as f64;
            }
            if density > 1.0 + EPS {
                return Err(AdmissionError::Rejected(BoundViolation::WorkerOverload {
                    worker: WorkerId::new(w as u16),
                    density,
                }));
            }
        }
        Ok(())
    }

    fn check_global(
        &self,
        merged: &TaskSet,
        is_static: bool,
        a: WcetAssumption,
    ) -> Result<(), AdmissionError> {
        let m = self.config.workers();
        let total = total_utilisation(merged, a);
        if is_static {
            if m > 1 {
                return Err(AdmissionError::Invalid(Error::InvalidConfig(
                    "no admission test implemented for global static priorities on \
                     multiple workers"
                        .into(),
                )));
            }
            let results = if merged.accels().is_empty() {
                response_times(merged, self.config.priority(), a)
            } else {
                response_times_blocking(merged, self.config.priority(), a)
            };
            for r in &results {
                if !r.schedulable() {
                    return Err(AdmissionError::Rejected(reject_rta(r)));
                }
            }
            return Ok(());
        }
        if total > m as f64 + EPS {
            return Err(AdmissionError::Rejected(BoundViolation::TotalUtilisation {
                total,
                capacity: m as f64,
            }));
        }
        if m == 1 {
            if !edf_schedulable(merged, a) {
                return Err(AdmissionError::Rejected(BoundViolation::EdfDemand {
                    total,
                }));
            }
        } else if !gfb_global_edf_test(merged, m, a) {
            let bound = m as f64 - (m as f64 - 1.0) * max_utilisation(merged, a);
            return Err(AdmissionError::Rejected(BoundViolation::GfbDensity {
                total,
                bound,
            }));
        }
        Ok(())
    }

    /// Graham's bound for every multi-task DAG of the candidate (the
    /// merged suffix starting at `first_new`) with a finite graph
    /// deadline.
    fn check_dags(
        &self,
        merged: &TaskSet,
        first_new: usize,
        a: WcetAssumption,
    ) -> Result<(), AdmissionError> {
        let m = self.config.workers();
        for t in &merged.tasks()[first_new..] {
            let id = t.id();
            if merged.in_degree(id) != 0 || merged.out_edges(id).next().is_none() {
                continue; // not a DAG root, or a singleton task
            }
            let deadline = merged.effective_deadline(id);
            if deadline == Duration::MAX {
                continue;
            }
            if !dag_meets_deadline(merged, id, m, a) {
                return Err(AdmissionError::Rejected(BoundViolation::DagDeadline {
                    root: id,
                    bound: graham_bound(merged, id, m, a),
                    deadline,
                }));
            }
        }
        Ok(())
    }
}

fn reject_rta(r: &ResponseTime) -> BoundViolation {
    BoundViolation::TaskUnschedulable {
        task: r.task,
        wcrt: r.wcrt,
        deadline: r.deadline,
    }
}

/// Builds the [`ReservationServer`] for an accepted admission: tagged
/// with the tenant id the splice will assign, replenishing from the
/// admission instant.
#[must_use]
pub fn reservation_for(
    tenant: TenantId,
    budget: Option<TenantBudget>,
    now: Instant,
) -> Option<ReservationServer> {
    budget.map(|b| ReservationServer::new(tenant, b, now))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::OnlineEngine;
    use crate::server::ServerKind;
    use crate::sink::ActionSink;
    use yasmin_core::config::Config;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::priority::PriorityPolicy;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// One periodic task `name` with WCET `wcet_ms` every `period_ms`,
    /// optionally partitioned onto `worker`.
    fn set(name: &str, wcet_ms: u64, period_ms: u64, worker: Option<u16>) -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let mut spec = TaskSpec::periodic(name, ms(period_ms));
        if let Some(w) = worker {
            spec = spec.on_worker(WorkerId::new(w));
        }
        let t = b.task_decl(spec).unwrap();
        b.version_decl(t, VersionSpec::new("v0", ms(wcet_ms)))
            .unwrap();
        b.build().unwrap()
    }

    fn edf(workers: usize) -> Config {
        Config::builder()
            .workers(workers)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap()
    }

    #[test]
    fn feasible_tenant_accepted_and_merged() {
        let live = set("base", 2, 10, None);
        let tenant = set("guest", 2, 10, None);
        let ctl = AdmissionControl::new(edf(1), ms(10));
        let merged = ctl.evaluate(&live, &tenant, None).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged.tasks()[1].spec().name(), "guest");
    }

    #[test]
    fn overload_rejected_with_utilisation_bound() {
        let live = set("base", 6, 10, None);
        let tenant = set("hog", 6, 10, None);
        let ctl = AdmissionControl::new(edf(1), ms(2));
        match ctl.evaluate(&live, &tenant, None) {
            Err(AdmissionError::Rejected(BoundViolation::TotalUtilisation { total, capacity })) => {
                assert!((total - 1.2).abs() < 1e-9, "total = {total}");
                assert!((capacity - 1.0).abs() < 1e-12);
            }
            other => panic!("expected utilisation rejection, got {other:?}"),
        }
    }

    #[test]
    fn gfb_failure_names_the_bound() {
        // Two heavy tasks + newcomer: U = 2.4 on m = 3 passes U <= m but
        // fails GFB with U_max = 0.8: bound = 3 - 2*0.8 = 1.4.
        let mut b = TaskSetBuilder::new();
        for name in ["a", "b"] {
            let t = b.task_decl(TaskSpec::periodic(name, ms(10))).unwrap();
            b.version_decl(t, VersionSpec::new("v0", ms(8))).unwrap();
        }
        let live = b.build().unwrap();
        let tenant = set("c", 8, 10, None);
        let ctl = AdmissionControl::new(edf(3), ms(10));
        match ctl.evaluate(&live, &tenant, None) {
            Err(AdmissionError::Rejected(BoundViolation::GfbDensity { total, bound })) => {
                assert!((total - 2.4).abs() < 1e-9);
                assert!((bound - 1.4).abs() < 1e-9);
            }
            other => panic!("expected GFB rejection, got {other:?}"),
        }
    }

    #[test]
    fn partitioned_rta_rejects_the_failing_task() {
        let cfg = Config::builder()
            .workers(2)
            .mapping(MappingScheme::Partitioned)
            .priority(PriorityPolicy::RateMonotonic)
            .build()
            .unwrap();
        let live = set("base", 4, 10, Some(0));
        // The tenant lands on the same worker and cannot fit: 4 + 8 > 10.
        let tenant = set("guest", 8, 10, Some(0));
        let ctl = AdmissionControl::new(cfg.clone(), ms(10));
        match ctl.evaluate(&live, &tenant, None) {
            Err(AdmissionError::Rejected(BoundViolation::TaskUnschedulable { task, .. })) => {
                assert_eq!(task, TaskId::new(1), "merged id of the tenant task");
            }
            other => panic!("expected RTA rejection, got {other:?}"),
        }
        // On the free worker it is accepted.
        let tenant_ok = set("guest", 8, 10, Some(1));
        assert!(ctl.evaluate(&live, &tenant_ok, None).is_ok());
    }

    #[test]
    fn partitioned_edf_overload_names_the_worker() {
        let cfg = Config::builder()
            .workers(2)
            .mapping(MappingScheme::Partitioned)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap();
        let live = set("base", 5, 10, Some(1));
        let tenant = set("guest", 7, 10, Some(1));
        let ctl = AdmissionControl::new(cfg, ms(10));
        match ctl.evaluate(&live, &tenant, None) {
            Err(AdmissionError::Rejected(BoundViolation::WorkerOverload { worker, density })) => {
                assert_eq!(worker, WorkerId::new(1));
                assert!((density - 1.2).abs() < 1e-9);
            }
            other => panic!("expected worker overload, got {other:?}"),
        }
    }

    #[test]
    fn insufficient_budget_rejected() {
        let live = set("base", 1, 10, None);
        let tenant = set("guest", 4, 10, None); // needs 0.4
        let budget = TenantBudget {
            kind: ServerKind::Deferrable,
            capacity: ms(2),
            period: ms(10), // grants only 0.2
        };
        let ctl = AdmissionControl::new(edf(1), ms(10));
        match ctl.evaluate(&live, &tenant, Some(&budget)) {
            Err(AdmissionError::Rejected(BoundViolation::BudgetInsufficient {
                tenant_utilisation,
                budget_utilisation,
            })) => {
                assert!((tenant_utilisation - 0.4).abs() < 1e-9);
                assert!((budget_utilisation - 0.2).abs() < 1e-9);
            }
            other => panic!("expected budget rejection, got {other:?}"),
        }
    }

    #[test]
    fn tick_incompatible_period_is_invalid_not_rejected() {
        let live = set("base", 1, 10, None);
        let tenant = set("guest", 1, 15, None);
        let ctl = AdmissionControl::new(edf(1), ms(10));
        assert!(matches!(
            ctl.evaluate(&live, &tenant, None),
            Err(AdmissionError::Invalid(Error::InvalidConfig(_)))
        ));
    }

    #[test]
    fn violation_renders_via_core_error() {
        let v = BoundViolation::TotalUtilisation {
            total: 1.25,
            capacity: 1.0,
        };
        let e: Error = AdmissionError::Rejected(v).into();
        let msg = e.to_string();
        assert!(msg.contains("admission rejected"), "{msg}");
        assert!(msg.contains("1.25"), "{msg}");
    }

    /// End-to-end through a live engine: evaluate → splice → commit →
    /// run → retire.
    #[test]
    fn engine_splice_commit_retire_round_trip() {
        let live = Arc::new(set("base", 2, 10, None));
        let config = edf(1);
        let mut engine = OnlineEngine::new(Arc::clone(&live), config).unwrap();
        let mut sink = ActionSink::new();
        let t0 = Instant::ZERO;
        engine.start_into(t0, &mut sink).unwrap();

        let tenant_set = set("guest", 2, 10, None);
        let ctl = AdmissionControl::for_engine(&engine);
        let budget = TenantBudget::deferrable(ms(5), ms(10));
        let merged = ctl
            .evaluate(engine.taskset(), &tenant_set, Some(&budget))
            .unwrap();
        let tenant = TenantId::new(engine.tenant_count() as u32);
        let server = reservation_for(tenant, Some(budget), t0);
        let got = engine.splice_taskset(Arc::clone(&merged), server).unwrap();
        assert_eq!(got, tenant);
        assert!(engine.tenant_server(tenant).is_some());

        sink.clear();
        engine.commit_tenant_into(tenant, t0, &mut sink).unwrap();
        // Both the base and the guest task release at t0; one worker, so
        // one dispatch and one job left ready.
        assert_eq!(engine.ready_len(), 1);

        engine.retire_tenant_into(tenant, t0, &mut sink).unwrap();
        assert!(engine.is_tenant_retired(tenant).unwrap());
        assert!(engine.is_task_retired(TaskId::new(1)));
        // Late activation is refused with the structured error.
        sink.clear();
        assert!(matches!(
            engine.activate_into(TaskId::new(1), t0, &mut sink),
            Err(Error::TenantRetired(1))
        ));
        // Double retire is an error; tenant 0 cannot be retired.
        assert!(matches!(
            engine.retire_tenant_into(tenant, t0, &mut sink),
            Err(Error::TenantRetired(1))
        ));
        assert!(matches!(
            engine.retire_tenant_into(TenantId::new(0), t0, &mut sink),
            Err(Error::InvalidConfig(_))
        ));
    }
}
