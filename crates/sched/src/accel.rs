//! Run-time arbitration of hardware accelerators.
//!
//! "Because accelerator usage is declared to our scheduler using the API
//! call `hwaccel_use`, it can detect that the targeted accelerator is
//! busy, and that it is preferable to use another task version targeting a
//! free one" (§3.2). When no free-resource version exists and the blocked
//! job is more urgent than the holder, the engine applies the Priority
//! Inheritance Protocol and requeues the job.
//!
//! Per the paper's stated limitation, an accelerator is considered busy
//! from the beginning of the version's initial CPU part to the end of its
//! final CPU part — i.e. for the job's whole execution.

use yasmin_core::error::{Error, Result};
use yasmin_core::ids::{AccelId, JobId, WorkerId};
use yasmin_core::priority::Priority;

/// State of one accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelState {
    /// The job currently occupying the accelerator, with the worker it
    /// runs on and its (possibly boosted) priority.
    pub holder: Option<AccelHolder>,
}

/// Who currently holds an accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelHolder {
    /// The occupying job.
    pub job: JobId,
    /// The worker executing that job.
    pub worker: WorkerId,
    /// The holder's current effective priority (after any PIP boost).
    pub priority: Priority,
}

/// Tracks which accelerators are busy and applies PIP bookkeeping.
#[derive(Debug)]
pub struct AccelManager {
    states: Vec<AccelState>,
    boosts: u64,
}

impl AccelManager {
    /// Creates a manager for `count` declared accelerators.
    #[must_use]
    pub fn new(count: usize) -> Self {
        AccelManager {
            states: vec![AccelState { holder: None }; count],
            boosts: 0,
        }
    }

    /// Grows the manager to `count` accelerators (no-op if already that
    /// large), preserving all held state — used when on-line admission
    /// splices a tenant that declares its own accelerators.
    pub fn grow_to(&mut self, count: usize) {
        if count > self.states.len() {
            self.states.resize(count, AccelState { holder: None });
        }
    }

    /// `true` if `accel` is currently free.
    #[must_use]
    pub fn is_free(&self, accel: AccelId) -> bool {
        self.states
            .get(accel.index())
            .is_some_and(|s| s.holder.is_none())
    }

    /// The holder of `accel`, if busy.
    #[must_use]
    pub fn holder(&self, accel: AccelId) -> Option<AccelHolder> {
        self.states.get(accel.index()).and_then(|s| s.holder)
    }

    /// Marks `accel` as acquired by `job` on `worker`.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownAccel`] for an undeclared id; returns an error of
    /// kind [`Error::InvalidConfig`] if the accelerator is already busy
    /// (an engine invariant violation).
    pub fn acquire(
        &mut self,
        accel: AccelId,
        job: JobId,
        worker: WorkerId,
        priority: Priority,
    ) -> Result<()> {
        let s = self
            .states
            .get_mut(accel.index())
            .ok_or(Error::UnknownAccel(accel))?;
        if s.holder.is_some() {
            return Err(Error::InvalidConfig(format!(
                "accelerator {accel} acquired while busy"
            )));
        }
        s.holder = Some(AccelHolder {
            job,
            worker,
            priority,
        });
        Ok(())
    }

    /// Releases `accel` if `job` holds it (idempotent otherwise).
    pub fn release(&mut self, accel: AccelId, job: JobId) {
        if let Some(s) = self.states.get_mut(accel.index()) {
            if s.holder.is_some_and(|h| h.job == job) {
                s.holder = None;
            }
        }
    }

    /// Applies priority inheritance: if `blocked_priority` is more urgent
    /// than the holder's current priority, the holder is boosted to it.
    /// Returns the holder (with its *new* priority) when a boost happened.
    pub fn boost_holder(
        &mut self,
        accel: AccelId,
        blocked_priority: Priority,
    ) -> Option<AccelHolder> {
        let s = self.states.get_mut(accel.index())?;
        let h = s.holder.as_mut()?;
        if blocked_priority.is_higher_than(h.priority) {
            h.priority = blocked_priority;
            self.boosts += 1;
            Some(*h)
        } else {
            None
        }
    }

    /// Number of PIP boosts applied so far.
    #[must_use]
    pub fn boost_count(&self) -> u64 {
        self.boosts
    }

    /// Number of managed accelerators.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` if no accelerators are declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut m = AccelManager::new(1);
        let gpu = AccelId::new(0);
        assert!(m.is_free(gpu));
        m.acquire(gpu, JobId::new(1), WorkerId::new(0), Priority::new(50))
            .unwrap();
        assert!(!m.is_free(gpu));
        assert_eq!(m.holder(gpu).unwrap().job, JobId::new(1));
        // Double acquire is an invariant violation.
        assert!(m
            .acquire(gpu, JobId::new(2), WorkerId::new(1), Priority::new(10))
            .is_err());
        // Release by a non-holder is ignored.
        m.release(gpu, JobId::new(2));
        assert!(!m.is_free(gpu));
        m.release(gpu, JobId::new(1));
        assert!(m.is_free(gpu));
    }

    #[test]
    fn unknown_accel_rejected() {
        let mut m = AccelManager::new(1);
        assert!(matches!(
            m.acquire(
                AccelId::new(9),
                JobId::new(1),
                WorkerId::new(0),
                Priority::new(1)
            ),
            Err(Error::UnknownAccel(_))
        ));
        assert!(!m.is_free(AccelId::new(9)));
    }

    #[test]
    fn pip_boost_only_when_more_urgent() {
        let mut m = AccelManager::new(1);
        let gpu = AccelId::new(0);
        m.acquire(gpu, JobId::new(1), WorkerId::new(0), Priority::new(100))
            .unwrap();
        // A less urgent waiter does not boost.
        assert!(m.boost_holder(gpu, Priority::new(200)).is_none());
        assert_eq!(m.boost_count(), 0);
        // A more urgent waiter boosts the holder to its priority.
        let boosted = m.boost_holder(gpu, Priority::new(10)).unwrap();
        assert_eq!(boosted.priority, Priority::new(10));
        assert_eq!(m.holder(gpu).unwrap().priority, Priority::new(10));
        assert_eq!(m.boost_count(), 1);
        // Boosting is monotone: an in-between priority does nothing.
        assert!(m.boost_holder(gpu, Priority::new(50)).is_none());
    }

    #[test]
    fn boost_free_accel_is_none() {
        let mut m = AccelManager::new(2);
        assert!(m.boost_holder(AccelId::new(1), Priority::HIGHEST).is_none());
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }
}
