//! The on-line scheduling engine (global & partitioned, Fig. 1a/1b).
//!
//! The engine is *pure scheduling logic*: it owns the ready queues, the
//! release bookkeeping, the DAG activation tokens and the accelerator
//! state, but it has no threads and no clock. Drivers feed it events —
//! the scheduler-thread tick, job completions, explicit activations — and
//! execute the [`Action`]s it returns. The discrete-event simulator
//! (`yasmin-sim`) and the real-thread runtime (`yasmin-rt`) drive the same
//! engine, so experiments exercise production scheduling code.
//!
//! Design notes mirrored from the paper:
//!
//! * the scheduler activates periodic jobs only at tick boundaries, with
//!   the tick equal to the gcd of all task periods (§3.3);
//! * preemption is a scheduler decision relayed to workers (§3.5) — here
//!   an [`Action::Preempt`] that the driver applies;
//! * jobs never migrate once dispatched; tasks may (§3.3 limitation);
//! * a job holding an accelerator is never preempted — combined with the
//!   PIP boost of §3.2 this prevents accelerator-deadlock and chained
//!   inversions (our design decision, documented in DESIGN.md).

use crate::accel::AccelManager;
use crate::job::{Job, JobBatch};
use crate::queue::ReadyQueue;
use crate::select::{rank_versions_into, RankBuf};
use crate::server::ReservationServer;
use crate::sink::ActionSink;
use std::sync::Arc;
use yasmin_core::channel::BackpressurePolicy;
use yasmin_core::config::{Config, MappingScheme, SelectCtx, VersionPolicy};
use yasmin_core::energy::BatteryLevel;
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{AccelId, JobId, TaskId, TenantId, VersionId, WorkerId};
use yasmin_core::priority::{Priority, PriorityPolicy};
use yasmin_core::task::{ActivationKind, OverrunPolicy};
use yasmin_core::time::{Duration, Instant};
use yasmin_core::version::{ExecMode, PermMask};

/// How a job's body ended on its worker.
///
/// Runtimes wrap task bodies in `catch_unwind`; a panicking body is
/// contained and reported as [`JobOutcome::Failed`] instead of poisoning
/// the worker thread. The engine retires failed jobs through
/// [`OnlineEngine::on_job_failed_into`], which applies the task's
/// [`OverrunPolicy`] to decide whether successors still fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JobOutcome {
    /// The body returned normally.
    #[default]
    Completed,
    /// The body panicked; the runtime contained the unwind and the
    /// worker thread lives on.
    Failed,
}

/// A scheduling decision for the driver to carry out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Start (or resume) `job` on `worker` using `version`.
    Dispatch {
        /// Target worker.
        worker: WorkerId,
        /// The job to run.
        job: Job,
        /// The selected version.
        version: VersionId,
    },
    /// Pause the job currently running on `worker`; the engine has already
    /// re-queued it and will re-dispatch it later.
    Preempt {
        /// The worker to interrupt.
        worker: WorkerId,
        /// The job being paused.
        job: JobId,
    },
    /// Raise the effective priority of `job` on `worker` (Priority
    /// Inheritance after accelerator contention, §3.2).
    Boost {
        /// Worker running the boosted holder.
        worker: WorkerId,
        /// The boosted job.
        job: JobId,
        /// Its new effective priority.
        priority: Priority,
    },
}

/// What currently occupies a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningJob {
    /// The job.
    pub job: Job,
    /// The version being executed.
    pub version: VersionId,
    /// The accelerator held, if the version uses one.
    pub accel: Option<AccelId>,
    /// Current effective priority (base, or PIP-boosted).
    pub effective_priority: Priority,
    /// The enforcement deadline: dispatch instant + the selected
    /// version's WCET (`Instant::MAX` when `Config::enforce_wcet` is
    /// off). A tick strictly past this instant flags the job as
    /// overrunning and applies the task's [`OverrunPolicy`].
    pub enforce_by: Instant,
    /// The overrun has been detected and handled (policies apply once).
    pub overrun: bool,
    /// The job was killed ([`OverrunPolicy::Kill`]): the body still runs
    /// to completion on its worker — the middleware never destroys a
    /// thread mid-body — but its successors are dropped at retirement.
    pub killed: bool,
}

/// Counters the engine maintains for overhead analysis (Fig. 2 uses the
/// queue-operation and preemption counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs released into ready queues.
    pub released: u64,
    /// Dispatch actions emitted.
    pub dispatched: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Preemptions performed.
    pub preempted: u64,
    /// PIP boosts applied.
    pub pip_boosts: u64,
    /// Times a ready job had to be skipped because every eligible version
    /// targeted a busy accelerator (it stays ready).
    pub blocked_skips: u64,
    /// Sporadic activations violating the minimum inter-arrival time.
    pub sporadic_violations: u64,
    /// Token pushes that exceeded a channel's declared capacity.
    pub channel_overflows: u64,
    /// High-water mark over all ready queues.
    pub max_ready: usize,
    /// Foreign jobs this engine adopted from a victim shard and ran on
    /// its own worker (work stealing; thief side).
    pub stolen: u64,
    /// Ready jobs this engine handed to a thief shard (victim side).
    pub donated: u64,
    /// Batch-steal exchanges this engine completed as the thief
    /// ([`OnlineEngine::adopt_stolen_batch`]); each exchange's jobs are
    /// also counted individually in `stolen`.
    pub stolen_batch: u64,
    /// Histogram of adopted batch sizes: bucket `i` counts exchanges
    /// that delivered `i + 1` jobs (the last bucket absorbs anything
    /// larger, future-proofing against a raised batch cap).
    pub steal_batch_len: [u64; 8],
    /// DAG activation tokens routed to a foreign shard through the
    /// outbox instead of fired locally (cross-shard edges).
    pub cross_activations: u64,
    /// Ready jobs culled — either at a tick because their absolute
    /// deadline had already passed
    /// ([`yasmin_core::config::Config::cull_missed`]), or because their
    /// tenant was retired while they waited
    /// ([`OnlineEngine::retire_tenant_into`]).
    pub culled: u64,
    /// Dispatch attempts deferred because the job's tenant had exhausted
    /// its [`ReservationServer`] budget for the current replenishment
    /// period (the job stays ready and retries on later rounds).
    pub budget_deferrals: u64,
    /// Priority boosts applied because a high-priority message arrived
    /// for a task (message-plane PIP; released when the lane drains).
    pub msg_boosts: u64,
    /// Jobs caught running past their enforcement deadline
    /// (`Config::enforce_wcet`), or force-flagged by fault injection.
    pub overruns: u64,
    /// Jobs retired as [`JobOutcome::Failed`] (body panicked; contained
    /// by the runtime).
    pub failed: u64,
    /// DAG tokens shed by a channel's [`BackpressurePolicy`]
    /// (`DropOldest` / `DeadlineAwareDrop`) on a full channel.
    pub shed_drops: u64,
    /// Times the deadline-miss trip wire tripped (`Config::miss_trip`).
    pub miss_trips: u64,
}

impl EngineStats {
    /// Accumulates another engine's counters into this one — used to
    /// aggregate per-shard stats into a whole-system view. Every counter
    /// sums; `max_ready` sums too (each shard's high-water mark is over
    /// its own queue, so the sum is a conservative bound on the global
    /// concurrent ready count, not an observed maximum).
    pub fn merge(&mut self, other: &EngineStats) {
        self.released += other.released;
        self.dispatched += other.dispatched;
        self.completed += other.completed;
        self.preempted += other.preempted;
        self.pip_boosts += other.pip_boosts;
        self.blocked_skips += other.blocked_skips;
        self.sporadic_violations += other.sporadic_violations;
        self.channel_overflows += other.channel_overflows;
        self.max_ready += other.max_ready;
        self.stolen += other.stolen;
        self.donated += other.donated;
        self.stolen_batch += other.stolen_batch;
        for (b, o) in self.steal_batch_len.iter_mut().zip(&other.steal_batch_len) {
            *b += o;
        }
        self.cross_activations += other.cross_activations;
        self.culled += other.culled;
        self.budget_deferrals += other.budget_deferrals;
        self.msg_boosts += other.msg_boosts;
        self.overruns += other.overruns;
        self.failed += other.failed;
        self.shed_drops += other.shed_drops;
        self.miss_trips += other.miss_trips;
    }
}

/// Per-tenant bookkeeping: the contiguous id ranges a tenant occupies in
/// the (append-only) merged task set, its lifecycle flags, and its
/// optional processor-time reservation.
#[derive(Debug)]
struct TenantEntry {
    /// First task index of the tenant's contiguous range.
    first_task: u32,
    /// Number of tasks in the range.
    task_count: u32,
    /// First edge index of the tenant's contiguous range.
    first_edge: u32,
    /// Number of edges in the range.
    edge_count: u32,
    /// Releases armed ([`OnlineEngine::commit_tenant_into`] ran).
    committed: bool,
    /// Tenant torn down: future releases culled, activations refused,
    /// DAG tokens dropped.
    retired: bool,
    /// The tenant's budget; `None` (tenant 0, or an unbudgeted admission)
    /// means dispatches are never charged.
    server: Option<ReservationServer>,
}

/// A DAG activation token addressed to a foreign shard: the completion
/// of a job whose out-edge crosses shards does not touch the local
/// token state (the *destination* shard owns every edge entering its
/// tasks) — it lands here instead, for the driver to route to the
/// owning shard's mailbox as a
/// [`crate::shard::ShardCmd::CrossActivate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteActivation {
    /// The worker whose shard owns the edge's destination task.
    pub worker: WorkerId,
    /// Index of the edge in [`TaskSet::edges`].
    pub edge: u32,
    /// Graph release carried by the token (join semantics at the
    /// destination).
    pub graph_release: Instant,
}

/// An O(1) snapshot of a shard's most urgent ready job, taken through a
/// shared reference — what a work-stealing thief uses to decide whether
/// a victim is worth a steal request, and what the victim then turns
/// into a concrete hand-off via [`OnlineEngine::release_stolen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealHint {
    /// The hinted job.
    pub job: JobId,
    /// Its task.
    pub task: TaskId,
    /// Its queue priority (smaller = more urgent).
    pub priority: Priority,
}

enum VersionChoice {
    Run(VersionId, Option<AccelId>),
    /// All eligible versions target busy accelerators; the wished-for
    /// accelerators are left in the engine's `wish_buf` scratch.
    Blocked,
    /// The selection policy filtered out every version.
    NoEligible,
}

/// Cached ranking of one task's versions under the engine's current
/// selection context. Each ranked id carries the version's (constant)
/// accelerator binding, so the dispatch loop never chases back into the
/// task-spec structs.
#[derive(Debug, Default)]
struct RankEntry {
    valid: bool,
    ids: Vec<(VersionId, Option<AccelId>)>,
}

/// The on-line scheduler state machine.
#[derive(Debug)]
pub struct OnlineEngine {
    taskset: Arc<TaskSet>,
    config: Config,
    queues: Vec<ReadyQueue>,
    running: Vec<Option<RunningJob>>,
    accels: AccelManager,
    /// Activation tokens per graph edge.
    tokens: Vec<u64>,
    /// Graph release carried by the tokens of each edge (FIFO of one: with
    /// unit-rate firing the front instance's release is enough).
    token_release: Vec<Vec<Instant>>,
    /// Next periodic release per task (`Instant::MAX` = not
    /// auto-released). Dense: the release scan is branch-predictable and
    /// cache-linear, which beats a timer heap at realistic task counts.
    next_release: Vec<Instant>,
    /// Per-task period, dense — the release loop re-arms without
    /// chasing into the task-spec structs.
    period: Vec<Duration>,
    /// Per-task effective relative deadline, dense (constant per task
    /// set; `Duration::MAX` = unconstrained).
    rel_deadline: Vec<Duration>,
    /// Per-task ready-queue slot, dense (0 under global mapping and in
    /// shards; the assigned worker's index under partitioned mapping).
    queue_of: Vec<u32>,
    /// Minimum over `next_release`: ticks strictly before this instant
    /// skip the release scan entirely (O(1) idle ticks).
    next_wake: Instant,
    /// Last activation per task (sporadic inter-arrival check).
    last_activation: Vec<Option<Instant>>,
    /// Per-task activation counter.
    activation_seq: Vec<u64>,
    static_priority: Vec<Priority>,
    job_counter: u64,
    tick: Duration,
    started: bool,
    stopping: bool,
    mode: ExecMode,
    permissions: PermMask,
    stats: EngineStats,
    /// Per-task outgoing / incoming edge indices, precomputed so DAG
    /// token firing never scans (or collects) the edge list.
    out_edges: Vec<Vec<usize>>,
    in_edges: Vec<Vec<usize>>,
    /// Per-task version ranking memo; entries are recomputed lazily when
    /// `cache_ctx` (mode, permissions, battery) changes.
    rank_cache: Vec<RankEntry>,
    /// The selection context the cache entries were ranked under.
    cache_ctx: SelectCtx,
    /// Ranking scratch (in-place sort storage).
    rank_buf: RankBuf,
    /// `false` for user-defined policies, whose rankings never cache.
    policy_cacheable: bool,
    /// Whether the active policy reads the battery (Energy or
    /// user-defined); others skip the probe and key the cache off a
    /// constant battery so a drifting probe cannot thrash it.
    policy_uses_battery: bool,
    /// Busy accelerators wished for by the last `Blocked` choice.
    wish_buf: Vec<AccelId>,
    /// Frontier scratch for the ordered ready-queue scan behind
    /// [`OnlineEngine::steal_hints`] (batch-steal probes); retained so
    /// steady-state batch stealing never allocates.
    steal_frontier: Vec<u32>,
    /// Jobs popped but unable to run this round (returned to the queue).
    blocked_buf: Vec<Job>,
    /// Distinct successor tasks of the job that just completed.
    successor_buf: Vec<TaskId>,
    /// Tokens for cross-shard edges, awaiting routing by the driver
    /// (shard engines only; always empty on the single-owner engine).
    outbox: Vec<RemoteActivation>,
    /// Scratch for the deadline-missed culling scan.
    cull_buf: Vec<JobId>,
    /// Copied from the config: cull deadline-missed ready jobs on tick.
    cull_missed: bool,
    /// Dense per-task assigned worker (`u16::MAX` = unassigned), so the
    /// successor-routing path never chases into the task-spec structs.
    task_worker: Vec<u16>,
    /// Dense per-task "any version targets an accelerator" flag, so the
    /// steal probe (run after every engine interaction in the sharded
    /// runtime) never scans version specs.
    task_accel_bound: Vec<bool>,
    /// The tenants admitted into this engine, in admission order.
    /// Entry 0 is always the task set the engine was built with.
    tenants: Vec<TenantEntry>,
    /// Dense per-task owning tenant (raw [`TenantId`]), so the dispatch
    /// and token paths resolve tenancy without a range search.
    tenant_of: Vec<u32>,
    /// Dense per-task count of outstanding high-priority messages
    /// (posted minus drained) — the message-plane boost is held while
    /// this is non-zero.
    high_depth: Vec<u32>,
    /// Dense per-task active message ceiling: the most urgent ceiling
    /// posted since the high lane last became non-empty;
    /// [`Priority::LOWEST`] when no boost is active. Jobs released while
    /// a ceiling is active inherit `min(base, ceiling)`.
    msg_ceiling: Vec<Priority>,
    /// Dense per-task WCET-overrun / body-failure policy.
    overrun_policy: Vec<OverrunPolicy>,
    /// Copied from the config: check enforcement deadlines on tick.
    enforce_wcet: bool,
    /// Copied from the config: the deadline-miss trip wire
    /// `(window, budget)`, `None` when disarmed.
    miss_trip: Option<(Duration, u32)>,
    /// Start of the current miss-accounting window.
    miss_window_start: Instant,
    /// Deadline misses observed in the current window.
    miss_window_count: u32,
    /// The trip wire is tripped: `LogOnly`-class tasks release at
    /// background priority until a window passes within budget.
    tripped: bool,
    /// `Some(w)`: this engine is the *shard* owning only worker `w`
    /// (partitioned mapping). It holds exactly one queue and one running
    /// slot, releases only tasks assigned to `w`, and still reports the
    /// global `WorkerId` in every action. `None`: the classic
    /// single-owner engine over all workers.
    shard: Option<WorkerId>,
}

impl OnlineEngine {
    /// Builds an engine for `taskset` under `config`.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidConfig`] if the task set has no tick source
    ///   (no recurring task and no tick override);
    /// * [`Error::MissingPartition`] / [`Error::UnknownWorker`] if
    ///   partitioned mapping lacks or exceeds worker assignments.
    pub fn new(taskset: Arc<TaskSet>, config: Config) -> Result<Self> {
        Self::new_inner(taskset, config, None)
    }

    /// Builds the *shard* of the engine owning only `worker`: one ready
    /// queue, one running slot, releases restricted to tasks assigned to
    /// `worker`. Used through [`crate::shard::EngineShard`], which also
    /// validates that the task set partitions cleanly across shards.
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::new`], plus [`Error::InvalidConfig`] unless
    /// the mapping is partitioned and `worker` exists.
    pub(crate) fn new_shard(
        taskset: Arc<TaskSet>,
        config: Config,
        worker: WorkerId,
    ) -> Result<Self> {
        if config.mapping() != MappingScheme::Partitioned {
            return Err(Error::InvalidConfig(
                "engine shards exist under partitioned mapping only".into(),
            ));
        }
        if worker.index() >= config.workers() {
            return Err(Error::UnknownWorker(worker));
        }
        Self::new_inner(taskset, config, Some(worker))
    }

    fn new_inner(taskset: Arc<TaskSet>, config: Config, shard: Option<WorkerId>) -> Result<Self> {
        let workers = config.workers();
        if config.mapping() == MappingScheme::Partitioned {
            for t in taskset.tasks() {
                match t.spec().assigned_worker() {
                    None => return Err(Error::MissingPartition(t.id())),
                    Some(w) if w.index() >= workers => return Err(Error::UnknownWorker(w)),
                    Some(_) => {}
                }
            }
        }
        let tick = match config.tick_override() {
            Some(t) => t,
            None => taskset.scheduler_tick().ok_or_else(|| {
                Error::InvalidConfig(
                    "no recurring task: provide a tick override to drive the scheduler".into(),
                )
            })?,
        };
        let n_queues = match (shard, config.mapping()) {
            (Some(_), _) => 1,
            (None, MappingScheme::Global) => 1,
            (None, MappingScheme::Partitioned) => workers,
        };
        let n_slots = if shard.is_some() { 1 } else { workers };
        let queues = (0..n_queues)
            .map(|_| ReadyQueue::with_capacity(config.max_pending_jobs()))
            .collect();
        let n = taskset.len();
        let static_priority = taskset
            .tasks()
            .iter()
            .map(|t| Self::static_priority_of(&taskset, config.priority(), t.id()))
            .collect();
        let mode = config.initial_mode();
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in taskset.edges().iter().enumerate() {
            out_edges[e.src.index()].push(i);
            in_edges[e.dst.index()].push(i);
        }
        let max_versions = taskset
            .tasks()
            .iter()
            .map(|t| t.versions().len())
            .max()
            .unwrap_or(0);
        let rank_cache = taskset
            .tasks()
            .iter()
            .map(|t| RankEntry {
                valid: false,
                ids: Vec::with_capacity(t.versions().len()),
            })
            .collect();
        let period = taskset.tasks().iter().map(|t| t.spec().period()).collect();
        let rel_deadline = taskset
            .tasks()
            .iter()
            .map(|t| taskset.effective_deadline(t.id()))
            .collect();
        let queue_of = taskset
            .tasks()
            .iter()
            .map(|t| match (shard, config.mapping()) {
                (Some(_), _) | (None, MappingScheme::Global) => 0,
                (None, MappingScheme::Partitioned) => {
                    t.spec().assigned_worker().expect("validated above").index() as u32
                }
            })
            .collect();
        let policy_uses_battery = matches!(
            config.version_policy(),
            VersionPolicy::Energy | VersionPolicy::UserDefined(_)
        );
        let cache_ctx = SelectCtx {
            battery: if policy_uses_battery {
                config.read_battery()
            } else {
                BatteryLevel::FULL
            },
            mode,
            permissions: PermMask::ALL,
        };
        Ok(OnlineEngine {
            accels: AccelManager::new(taskset.accels().len()),
            tokens: vec![0; taskset.edges().len()],
            // Pre-reserve each edge's release FIFO to its channel's
            // declared capacity (+1 for the transient over-capacity
            // entry the shedding policies trim), so token pushes — the
            // cross-shard inbound path included — never allocate in
            // steady state.
            token_release: taskset
                .edges()
                .iter()
                .map(|e| {
                    let cap = taskset.channels()[e.channel.index()].capacity();
                    Vec::with_capacity(cap.max(1) + 1)
                })
                .collect(),
            next_release: vec![Instant::MAX; n],
            period,
            rel_deadline,
            queue_of,
            next_wake: Instant::MAX,
            last_activation: vec![None; n],
            activation_seq: vec![0; n],
            static_priority,
            // Shards stamp their worker index into the id's high bits so
            // job ids stay unique across concurrently-numbering shards.
            job_counter: shard.map_or(0, |w| (w.index() as u64) << 48),
            tick,
            started: false,
            stopping: false,
            mode,
            permissions: PermMask::ALL,
            stats: EngineStats::default(),
            out_edges,
            in_edges,
            rank_cache,
            cache_ctx,
            rank_buf: RankBuf::with_capacity(max_versions),
            policy_cacheable: !matches!(config.version_policy(), VersionPolicy::UserDefined(_)),
            policy_uses_battery,
            wish_buf: Vec::with_capacity(taskset.accels().len()),
            steal_frontier: Vec::with_capacity(if shard.is_some() {
                // k·(D-1) + 1 for the 4-ary heap at the batch cap.
                crate::job::MAX_STEAL_BATCH * 3 + 1
            } else {
                0
            }),
            blocked_buf: Vec::with_capacity(config.max_pending_jobs().min(64)),
            successor_buf: Vec::with_capacity(n),
            outbox: Vec::with_capacity(if shard.is_some() {
                taskset.edges().len()
            } else {
                0
            }),
            cull_buf: if config.cull_missed() {
                Vec::with_capacity(config.max_pending_jobs().min(64))
            } else {
                Vec::new()
            },
            cull_missed: config.cull_missed(),
            task_worker: taskset
                .tasks()
                .iter()
                .map(|t| t.spec().assigned_worker().map_or(u16::MAX, WorkerId::raw))
                .collect(),
            task_accel_bound: taskset
                .tasks()
                .iter()
                .map(|t| t.versions().iter().any(|v| v.accel().is_some()))
                .collect(),
            tenants: vec![TenantEntry {
                first_task: 0,
                task_count: n as u32,
                first_edge: 0,
                edge_count: taskset.edges().len() as u32,
                committed: true,
                retired: false,
                server: None,
            }],
            tenant_of: vec![0; n],
            high_depth: vec![0; n],
            msg_ceiling: vec![Priority::LOWEST; n],
            overrun_policy: taskset
                .tasks()
                .iter()
                .map(|t| t.spec().overrun_policy())
                .collect(),
            enforce_wcet: config.enforce_wcet(),
            miss_trip: config.miss_trip(),
            miss_window_start: Instant::ZERO,
            miss_window_count: 0,
            tripped: false,
            queues,
            running: vec![None; n_slots],
            shard,
            taskset,
            config,
        })
    }

    fn static_priority_of(ts: &TaskSet, policy: PriorityPolicy, t: TaskId) -> Priority {
        let task = &ts.tasks()[t.index()];
        match policy {
            PriorityPolicy::RateMonotonic => ts
                .effective_period(t)
                .map_or(Priority::LOWEST, Priority::rate_monotonic),
            PriorityPolicy::DeadlineMonotonic => {
                let d = ts.effective_deadline(t);
                if d == Duration::MAX {
                    Priority::LOWEST
                } else {
                    Priority::deadline_monotonic(d)
                }
            }
            PriorityPolicy::EarliestDeadlineFirst => Priority::LOWEST, // per-job
            PriorityPolicy::UserDefined => {
                task.spec().static_priority().unwrap_or(Priority::LOWEST)
            }
        }
    }

    /// The scheduler-thread period (gcd of task periods, or the override).
    #[must_use]
    pub fn tick_period(&self) -> Duration {
        self.tick
    }

    /// The task set this engine schedules.
    #[must_use]
    pub fn taskset(&self) -> &TaskSet {
        &self.taskset
    }

    /// A shared handle to the task set — what admission control extends
    /// to build a merged set without cloning the live one.
    #[must_use]
    pub fn taskset_arc(&self) -> Arc<TaskSet> {
        Arc::clone(&self.taskset)
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Switches the execution mode (mode-based version selection, §3.2).
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.mode = mode;
    }

    /// The current execution mode.
    #[must_use]
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// Replaces the granted permission mask (permission-based selection).
    pub fn set_permissions(&mut self, perms: PermMask) {
        self.permissions = perms;
    }

    /// Engine counters.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The worker this engine is a shard of, `None` for the whole-system
    /// single-owner engine.
    #[must_use]
    pub fn shard_worker(&self) -> Option<WorkerId> {
        self.shard
    }

    /// The `running`-slot index serving `worker`, `None` when this
    /// engine does not own that worker (foreign shard / out of range).
    fn slot_of(&self, worker: WorkerId) -> Option<usize> {
        match self.shard {
            None => (worker.index() < self.running.len()).then(|| worker.index()),
            Some(w) => (worker == w).then_some(0),
        }
    }

    /// The global worker id served by running-slot `slot`.
    fn worker_of_slot(&self, slot: usize) -> WorkerId {
        match self.shard {
            None => WorkerId::new(slot as u16),
            Some(w) => w,
        }
    }

    /// `true` when this engine releases jobs of `task` (always, unless a
    /// shard not owning the task's assigned worker).
    fn owns_task(&self, task: TaskId) -> bool {
        match self.shard {
            None => true,
            Some(w) => self.taskset.tasks()[task.index()].spec().assigned_worker() == Some(w),
        }
    }

    /// What `worker` is currently executing.
    #[must_use]
    pub fn running(&self, worker: WorkerId) -> Option<&RunningJob> {
        let slot = self.slot_of(worker)?;
        self.running[slot].as_ref()
    }

    /// The most urgent ready job, through a shared reference — O(1) per
    /// queue since [`ReadyQueue::peek`] is index-tracked; suitable for
    /// telemetry and work-stealing probes of a shard.
    #[must_use]
    pub fn most_urgent_hint(&self) -> Option<&Job> {
        self.queues
            .iter()
            .filter_map(ReadyQueue::peek_hint)
            .min_by_key(|j| j.queue_key())
    }

    /// Total jobs currently ready (not running).
    #[must_use]
    pub fn ready_len(&self) -> usize {
        self.queues.iter().map(ReadyQueue::len).sum()
    }

    /// `true` once every queue is empty and every worker idle — the drain
    /// condition after [`OnlineEngine::stop`].
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.ready_len() == 0 && self.running.iter().all(Option::is_none)
    }

    /// `true` if `start` has been called and `stop` has not.
    #[must_use]
    pub fn is_started(&self) -> bool {
        self.started && !self.stopping
    }

    /// Starts the schedule at `now` (the paper's `yas_start`): arms the
    /// periodic release bookkeeping and performs the first release round.
    ///
    /// Allocating wrapper over [`OnlineEngine::start_into`].
    ///
    /// # Errors
    ///
    /// [`Error::ScheduleRunning`] if already started.
    #[deprecated(
        since = "0.1.0",
        note = "allocates a fresh Vec per call; use start_into with a reusable ActionSink"
    )]
    pub fn start(&mut self, now: Instant) -> Result<Vec<Action>> {
        let mut sink = ActionSink::new();
        self.start_into(now, &mut sink)?;
        Ok(sink.into_vec())
    }

    /// [`OnlineEngine::start`], appending the resulting actions to a
    /// caller-owned reusable sink instead of allocating a `Vec`.
    ///
    /// # Errors
    ///
    /// [`Error::ScheduleRunning`] if already started.
    pub fn start_into(&mut self, now: Instant, sink: &mut ActionSink) -> Result<()> {
        if self.started && !self.stopping {
            return Err(Error::ScheduleRunning);
        }
        self.started = true;
        self.stopping = false;
        self.next_wake = Instant::MAX;
        for t in self.taskset.tasks() {
            let id = t.id();
            if !self.owns_task(id) {
                continue;
            }
            let is_root = self.taskset.in_degree(id) == 0;
            if is_root && t.spec().kind() == ActivationKind::Periodic {
                let r = now + t.spec().release_offset();
                self.next_release[id.index()] = r;
                self.next_wake = self.next_wake.min(r);
            }
        }
        self.on_tick_into(now, sink);
        Ok(())
    }

    /// Stops releasing new periodic jobs; already-released jobs drain
    /// (the paper's `yas_stop`).
    pub fn stop(&mut self) {
        self.stopping = true;
        for r in &mut self.next_release {
            *r = Instant::MAX;
        }
        self.next_wake = Instant::MAX;
    }

    /// Number of tenants ever admitted (including the built-in tenant 0
    /// and any since retired).
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The tenant owning `task`, `None` for an unknown task.
    #[must_use]
    pub fn tenant_of_task(&self, task: TaskId) -> Option<TenantId> {
        self.tenant_of.get(task.index()).map(|&n| TenantId::new(n))
    }

    /// `true` when `task` belongs to a retired tenant (`false` for
    /// unknown tasks).
    #[must_use]
    pub fn is_task_retired(&self, task: TaskId) -> bool {
        self.tenant_of
            .get(task.index())
            .is_some_and(|&n| self.tenants[n as usize].retired)
    }

    /// `true` when `tenant` has been retired.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTenant`] for an id never admitted.
    pub fn is_tenant_retired(&self, tenant: TenantId) -> Result<bool> {
        self.tenants
            .get(tenant.index())
            .map(|e| e.retired)
            .ok_or(Error::UnknownTenant(tenant.raw()))
    }

    /// The reservation server of `tenant`, `None` when the tenant is
    /// unbudgeted (or unknown).
    #[must_use]
    pub fn tenant_server(&self, tenant: TenantId) -> Option<&ReservationServer> {
        self.tenants.get(tenant.index())?.server.as_ref()
    }

    /// Splices an admitted tenant into the live engine — phase one of
    /// the two-phase admission described in `yasmin_sched::admission`.
    ///
    /// `merged` must be [`TaskSet::extended`] of this engine's current
    /// task set with the tenant's set: every existing id is unchanged
    /// and the tenant occupies the appended suffix. The engine adopts
    /// `merged` and extends every per-task/per-edge structure exactly as
    /// construction would have initialised it, with all of the new
    /// tasks' releases **disarmed** (`Instant::MAX`): after splicing,
    /// the engine knows the tenant's tasks and edges (so cross-shard
    /// tokens for them resolve) but releases nothing of it until
    /// [`OnlineEngine::commit_tenant_into`].
    ///
    /// `server`, if provided, must be tagged with the [`TenantId`] this
    /// splice assigns (the current [`OnlineEngine::tenant_count`]).
    ///
    /// The splice itself allocates (vector growth, rank-cache entries)
    /// — admission is a control-path operation; the post-splice steady
    /// state stays allocation-free.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if `merged` is not an append-only
    /// extension of the current set, adds no tasks, has a recurring
    /// period that is not a multiple of the engine tick (admitted
    /// tenants cannot re-derive the tick of a running scheduler), or a
    /// mis-tagged server; [`Error::MissingPartition`] /
    /// [`Error::UnknownWorker`] for partition violations.
    pub fn splice_taskset(
        &mut self,
        merged: Arc<TaskSet>,
        server: Option<ReservationServer>,
    ) -> Result<TenantId> {
        let n0 = self.taskset.len();
        let n1 = merged.len();
        let e0 = self.taskset.edges().len();
        let e1 = merged.edges().len();
        if n1 <= n0 {
            return Err(Error::InvalidConfig("tenant splice adds no tasks".into()));
        }
        if e1 < e0
            || merged.edges()[..e0] != self.taskset.edges()[..e0]
            || merged.accels().len() < self.taskset.accels().len()
            || merged.channels().len() < self.taskset.channels().len()
        {
            return Err(Error::InvalidConfig(
                "tenant splice must extend the current task set append-only".into(),
            ));
        }
        let tenant = TenantId::new(self.tenants.len() as u32);
        if let Some(s) = &server {
            if s.tenant() != tenant {
                return Err(Error::InvalidConfig(format!(
                    "reservation server tagged {} but splice assigns {tenant}",
                    s.tenant()
                )));
            }
        }
        let workers = self.config.workers();
        for t in &merged.tasks()[n0..] {
            if self.config.mapping() == MappingScheme::Partitioned {
                match t.spec().assigned_worker() {
                    None => return Err(Error::MissingPartition(t.id())),
                    Some(w) if w.index() >= workers => return Err(Error::UnknownWorker(w)),
                    Some(_) => {}
                }
            }
            if t.spec().kind().is_recurring() {
                let p = t.spec().period();
                if p.as_nanos() % self.tick.as_nanos() != 0 {
                    return Err(Error::InvalidConfig(format!(
                        "tenant task {} period {p:?} is not a multiple of the engine tick \
                         {:?} (the tick is fixed when the schedule starts)",
                        t.id(),
                        self.tick
                    )));
                }
            }
        }

        for t in &merged.tasks()[n0..] {
            let id = t.id();
            self.next_release.push(Instant::MAX);
            self.period.push(t.spec().period());
            self.rel_deadline.push(merged.effective_deadline(id));
            self.queue_of
                .push(match (self.shard, self.config.mapping()) {
                    (Some(_), _) | (None, MappingScheme::Global) => 0,
                    (None, MappingScheme::Partitioned) => {
                        t.spec().assigned_worker().expect("validated above").index() as u32
                    }
                });
            self.last_activation.push(None);
            self.activation_seq.push(0);
            self.static_priority.push(Self::static_priority_of(
                &merged,
                self.config.priority(),
                id,
            ));
            self.rank_cache.push(RankEntry {
                valid: false,
                ids: Vec::with_capacity(t.versions().len()),
            });
            self.task_worker
                .push(t.spec().assigned_worker().map_or(u16::MAX, WorkerId::raw));
            self.task_accel_bound
                .push(t.versions().iter().any(|v| v.accel().is_some()));
            self.out_edges.push(Vec::new());
            self.in_edges.push(Vec::new());
            self.tenant_of.push(tenant.raw());
            self.high_depth.push(0);
            self.msg_ceiling.push(Priority::LOWEST);
            self.overrun_policy.push(t.spec().overrun_policy());
        }
        for (i, e) in merged.edges().iter().enumerate().skip(e0) {
            self.out_edges[e.src.index()].push(i);
            self.in_edges[e.dst.index()].push(i);
            self.tokens.push(0);
            let cap = merged.channels()[e.channel.index()].capacity();
            self.token_release.push(Vec::with_capacity(cap.max(1) + 1));
        }
        self.accels.grow_to(merged.accels().len());
        let max_versions = merged
            .tasks()
            .iter()
            .map(|t| t.versions().len())
            .max()
            .unwrap_or(0);
        self.rank_buf = RankBuf::with_capacity(max_versions);
        // Re-reserve the hot-path scratch so post-splice steady state
        // stays allocation-free even when the tenant widened the graph.
        self.successor_buf.reserve(n1);
        self.wish_buf.reserve(merged.accels().len());
        if self.shard.is_some() {
            self.outbox.reserve(e1);
        }
        self.taskset = merged;
        self.tenants.push(TenantEntry {
            first_task: n0 as u32,
            task_count: (n1 - n0) as u32,
            first_edge: e0 as u32,
            edge_count: (e1 - e0) as u32,
            committed: false,
            retired: false,
            server,
        });
        Ok(tenant)
    }

    /// Arms a spliced tenant's releases — phase two of admission. Every
    /// periodic root the engine owns gets its first release at
    /// `now + release_offset` (release instants are exact; dispatch
    /// happens at the engine's fixed tick granularity), and a release
    /// round runs immediately, so zero-offset tenants start at the
    /// commit instant.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTenant`], [`Error::TenantRetired`],
    /// [`Error::ScheduleNotRunning`] if the engine is not started, or
    /// [`Error::InvalidConfig`] for a double commit.
    pub fn commit_tenant_into(
        &mut self,
        tenant: TenantId,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.commit_tenant_anchored_into(tenant, now, now, sink)
    }

    /// [`OnlineEngine::commit_tenant_into`] with the release anchor
    /// decoupled from the release round: first releases land at
    /// `anchor + release_offset` while the immediate release round runs
    /// at `now`.
    ///
    /// A driver dispatching on a fixed tick grid (the thread runtimes)
    /// passes its **next tick edge** as `anchor`: the tenant's release
    /// train then coincides with dispatch edges, so admitted jobs start
    /// at their nominal releases and the admitted deadlines hold exactly
    /// as analysed. Anchoring at an off-grid instant instead would delay
    /// every dispatch of the tenant by the phase difference — up to one
    /// full tick, enough to sink a deadline equal to the period. Exact
    /// event-driven drivers (the simulator) anchor at `now` via
    /// [`OnlineEngine::commit_tenant_into`].
    ///
    /// `anchor < now` is allowed; the round at `now` releases anything
    /// already due.
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::commit_tenant_into`].
    pub fn commit_tenant_anchored_into(
        &mut self,
        tenant: TenantId,
        anchor: Instant,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        if !self.started || self.stopping {
            return Err(Error::ScheduleNotRunning);
        }
        let entry = self
            .tenants
            .get_mut(tenant.index())
            .ok_or(Error::UnknownTenant(tenant.raw()))?;
        if entry.retired {
            return Err(Error::TenantRetired(tenant.raw()));
        }
        if entry.committed {
            return Err(Error::InvalidConfig(format!(
                "tenant {tenant} is already committed"
            )));
        }
        entry.committed = true;
        let range = entry.first_task as usize..(entry.first_task + entry.task_count) as usize;
        for i in range {
            let id = TaskId::new(i as u32);
            if !self.owns_task(id) {
                continue;
            }
            let t = &self.taskset.tasks()[i];
            if self.taskset.in_degree(id) == 0 && t.spec().kind() == ActivationKind::Periodic {
                let r = anchor + t.spec().release_offset();
                self.next_release[i] = r;
                self.next_wake = self.next_wake.min(r);
            }
        }
        self.on_tick_into(now, sink);
        Ok(())
    }

    /// Quiesces a tenant: disarms its future releases, culls its ready
    /// jobs (counted in [`EngineStats::culled`]), drops its pending DAG
    /// tokens, and marks it retired so late activations and in-flight
    /// cross-shard tokens are refused or silently dropped. Jobs of the
    /// tenant already *running* are not interrupted — they complete
    /// normally (and are the last of the tenant to be accounted), they
    /// just no longer fire successors. Other tenants are untouched.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTenant`]; [`Error::TenantRetired`] on a double
    /// retire; [`Error::InvalidConfig`] for tenant 0 (the built-in task
    /// set cannot be retired — stop the schedule instead).
    pub fn retire_tenant_into(
        &mut self,
        tenant: TenantId,
        _now: Instant,
        _sink: &mut ActionSink,
    ) -> Result<()> {
        if tenant.index() == 0 {
            return Err(Error::InvalidConfig(
                "tenant 0 is the built-in task set; stop the schedule to end it".into(),
            ));
        }
        let entry = self
            .tenants
            .get_mut(tenant.index())
            .ok_or(Error::UnknownTenant(tenant.raw()))?;
        if entry.retired {
            return Err(Error::TenantRetired(tenant.raw()));
        }
        entry.retired = true;
        let tasks = entry.first_task as usize..(entry.first_task + entry.task_count) as usize;
        let edges = entry.first_edge as usize..(entry.first_edge + entry.edge_count) as usize;
        for i in tasks {
            self.next_release[i] = Instant::MAX;
        }
        for i in edges {
            self.tokens[i] = 0;
            self.token_release[i].clear();
        }
        let raw = tenant.raw();
        let mut expired = std::mem::take(&mut self.cull_buf);
        for qi in 0..self.queues.len() {
            expired.clear();
            expired.extend(
                self.queues[qi]
                    .iter()
                    .filter(|j| self.tenant_of[j.task.index()] == raw)
                    .map(|j| j.id),
            );
            for &id in &expired {
                if self.queues[qi].remove(id).is_some() {
                    self.stats.culled += 1;
                }
            }
        }
        expired.clear();
        self.cull_buf = expired;
        Ok(())
    }

    /// One scheduler-thread activation at time `now`: releases every
    /// periodic job due by `now`, then dispatches/preempts.
    ///
    /// Allocating wrapper over [`OnlineEngine::on_tick_into`].
    #[deprecated(
        since = "0.1.0",
        note = "allocates a fresh Vec per call; use on_tick_into with a reusable ActionSink"
    )]
    pub fn on_tick(&mut self, now: Instant) -> Vec<Action> {
        let mut sink = ActionSink::new();
        self.on_tick_into(now, &mut sink);
        sink.into_vec()
    }

    /// [`OnlineEngine::on_tick`], appending the resulting actions to a
    /// caller-owned reusable sink. With a warmed-up sink this path
    /// performs no heap allocation in steady state.
    pub fn on_tick_into(&mut self, now: Instant, sink: &mut ActionSink) {
        if now >= self.next_wake {
            let mut wake = Instant::MAX;
            for i in 0..self.next_release.len() {
                let mut r = self.next_release[i];
                if r <= now {
                    let task = TaskId::new(i as u32);
                    let period = self.period[i];
                    while r <= now {
                        self.release_job(task, r, r);
                        r += period;
                    }
                    self.next_release[i] = r;
                }
                wake = wake.min(r);
            }
            self.next_wake = wake;
        }
        if self.enforce_wcet {
            self.enforce_overruns(now, sink);
        }
        if self.miss_trip.is_some() {
            self.roll_miss_window(now);
        }
        if self.cull_missed {
            self.cull_missed_jobs(now);
        }
        self.dispatch_round(now, sink);
    }

    /// Scans the running slots for jobs strictly past their enforcement
    /// deadline and applies each overrunning task's [`OverrunPolicy`]
    /// exactly once. Only called when `Config::enforce_wcet` opted in,
    /// so enforcement-off ticks pay nothing.
    fn enforce_overruns(&mut self, now: Instant, sink: &mut ActionSink) {
        for s in 0..self.running.len() {
            let due = self.running[s]
                .as_ref()
                .is_some_and(|r| !r.overrun && now > r.enforce_by);
            if due {
                self.apply_overrun(s, now, sink);
            }
        }
    }

    /// Marks the job in running-slot `s` as overrunning: counts it,
    /// bills the overage to its tenant's reservation replica (so one
    /// tenant's overruns never eat another's budget), and applies the
    /// task's [`OverrunPolicy`].
    fn apply_overrun(&mut self, s: usize, now: Instant, sink: &mut ActionSink) {
        let (task, job, overage) = {
            let r = self.running[s].as_mut().expect("caller checked the slot");
            r.overrun = true;
            (r.job.task, r.job.id, now.saturating_since(r.enforce_by))
        };
        self.stats.overruns += 1;
        let tenant = self.tenant_of[task.index()] as usize;
        if let Some(server) = self.tenants[tenant].server.as_mut() {
            let _ = server.charge_overrun(now, overage);
        }
        match self.overrun_policy[task.index()] {
            OverrunPolicy::Kill => {
                let r = self.running[s].as_mut().expect("slot still occupied");
                r.killed = true;
            }
            OverrunPolicy::DemoteToBackground => {
                let worker = self.worker_of_slot(s);
                let r = self.running[s].as_mut().expect("slot still occupied");
                if r.effective_priority != Priority::LOWEST {
                    r.effective_priority = Priority::LOWEST;
                    sink.push(Action::Boost {
                        worker,
                        job,
                        priority: Priority::LOWEST,
                    });
                }
            }
            OverrunPolicy::LogOnly => {}
        }
    }

    /// Deterministic fault injection: treats the running job of `task`
    /// (if any, and not already flagged) as overrunning *right now*,
    /// regardless of its enforcement deadline or whether enforcement is
    /// enabled. Returns `true` when a job was flagged. The simulator's
    /// `fault_schedule` drives this so overrun behaviour is replayable
    /// bit-for-bit.
    pub fn force_overrun(&mut self, task: TaskId, now: Instant, sink: &mut ActionSink) -> bool {
        for s in 0..self.running.len() {
            let hit = self.running[s]
                .as_ref()
                .is_some_and(|r| r.job.task == task && !r.overrun);
            if hit {
                self.apply_overrun(s, now, sink);
                return true;
            }
        }
        false
    }

    /// Observes one deadline miss at `now` for the trip wire; no-op when
    /// `Config::miss_trip` is disarmed.
    fn note_miss(&mut self, now: Instant) {
        let Some((_, budget)) = self.miss_trip else {
            return;
        };
        self.roll_miss_window(now);
        self.miss_window_count += 1;
        if self.miss_window_count > budget && !self.tripped {
            self.tripped = true;
            self.stats.miss_trips += 1;
        }
    }

    /// Advances the tumbling miss-accounting window: once a full window
    /// has elapsed the count resets, and — the recovery half of the trip
    /// wire — a tripped engine untrips, restoring `LogOnly`-class tasks
    /// to their base release priority.
    fn roll_miss_window(&mut self, now: Instant) {
        let Some((window, _)) = self.miss_trip else {
            return;
        };
        if now.saturating_since(self.miss_window_start) >= window {
            self.miss_window_start = now;
            self.miss_window_count = 0;
            self.tripped = false;
        }
    }

    /// `true` while the deadline-miss trip wire is tripped (shedding
    /// mode: `LogOnly`-class tasks release at background priority).
    #[must_use]
    pub fn is_tripped(&self) -> bool {
        self.tripped
    }

    /// Removes every ready job whose absolute deadline has already
    /// passed at `now` — each removal is the queue's O(log n)
    /// [`ReadyQueue::remove`], located by an O(queue) scan that only
    /// runs when [`yasmin_core::config::Config::cull_missed`] opted in.
    /// Running jobs are never culled (they complete and are accounted
    /// as misses by the driver).
    fn cull_missed_jobs(&mut self, now: Instant) {
        let mut expired = std::mem::take(&mut self.cull_buf);
        for qi in 0..self.queues.len() {
            expired.clear();
            expired.extend(
                self.queues[qi]
                    .iter()
                    .filter(|j| j.deadline_missed_at(now))
                    .map(|j| j.id),
            );
            for &id in &expired {
                if self.queues[qi].remove(id).is_some() {
                    self.stats.culled += 1;
                }
            }
        }
        expired.clear();
        self.cull_buf = expired;
    }

    /// Explicit activation (the paper's `yas_task_activate`): sporadic
    /// arrivals and user-triggered aperiodic jobs.
    ///
    /// Allocating wrapper over [`OnlineEngine::activate_into`].
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTask`]; [`Error::InvalidConfig`] for periodic tasks
    /// (those are released by the scheduler itself).
    #[deprecated(
        since = "0.1.0",
        note = "allocates a fresh Vec per call; use activate_into with a reusable ActionSink"
    )]
    pub fn activate(&mut self, task: TaskId, now: Instant) -> Result<Vec<Action>> {
        let mut sink = ActionSink::new();
        self.activate_into(task, now, &mut sink)?;
        Ok(sink.into_vec())
    }

    /// [`OnlineEngine::activate`], appending the resulting actions to a
    /// caller-owned reusable sink.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTask`]; [`Error::InvalidConfig`] for periodic tasks
    /// (those are released by the scheduler itself).
    pub fn activate_into(
        &mut self,
        task: TaskId,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        let t = self.taskset.task(task)?;
        if self.is_task_retired(task) {
            return Err(Error::TenantRetired(self.tenant_of[task.index()]));
        }
        if !self.owns_task(task) {
            return Err(Error::InvalidConfig(format!(
                "task {task} is not assigned to this engine shard"
            )));
        }
        match t.spec().kind() {
            ActivationKind::Periodic => {
                return Err(Error::InvalidConfig(format!(
                    "periodic task {task} is released by the scheduler, not task_activate"
                )))
            }
            ActivationKind::Sporadic => {
                if let Some(last) = self.last_activation[task.index()] {
                    if now.saturating_since(last) < t.spec().period() {
                        self.stats.sporadic_violations += 1;
                    }
                }
            }
            ActivationKind::Aperiodic => {}
        }
        self.release_job(task, now, now);
        self.dispatch_round(now, sink);
        Ok(())
    }

    /// Notification that `job` finished on `worker` at `now`. Frees the
    /// worker and any held accelerator, fires DAG successors, then
    /// dispatches.
    ///
    /// Allocating wrapper over [`OnlineEngine::on_job_completed_into`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if `worker` is not running `job` — a
    /// driver protocol violation.
    #[deprecated(
        since = "0.1.0",
        note = "allocates a fresh Vec per call; use on_job_completed_into with a reusable ActionSink"
    )]
    pub fn on_job_completed(
        &mut self,
        worker: WorkerId,
        job: JobId,
        now: Instant,
    ) -> Result<Vec<Action>> {
        let mut sink = ActionSink::new();
        self.on_job_completed_into(worker, job, now, &mut sink)?;
        Ok(sink.into_vec())
    }

    /// [`OnlineEngine::on_job_completed`], appending the resulting
    /// actions to a caller-owned reusable sink. With a warmed-up sink
    /// this path performs no heap allocation in steady state.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if `worker` is not running `job` — a
    /// driver protocol violation.
    pub fn on_job_completed_into(
        &mut self,
        worker: WorkerId,
        job: JobId,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.retire_job(worker, job, now)?;
        self.dispatch_round(now, sink);
        Ok(())
    }

    /// Batched completion hand-back: retires **every** `(worker, job)`
    /// pair — freeing the workers and any held accelerators, firing DAG
    /// successors — and only then runs a *single* selection/dispatch
    /// round, instead of one round per completion. When completions
    /// arrive in bursts (a mailbox drain finding several pending, the
    /// simulator retiring same-timestamp finishes), this amortises the
    /// dispatch round across the burst and lets the round see the whole
    /// burst's released successors before placing jobs on workers.
    ///
    /// Allocating wrapper: [`OnlineEngine::on_jobs_completed`].
    ///
    /// # Errors
    ///
    /// [`Error::UnknownWorker`] / [`Error::InvalidConfig`] on the first
    /// entry violating the completion protocol. Entries before the
    /// offending one are already retired and are dispatched for (the
    /// engine stays consistent); entries after it are untouched.
    pub fn on_jobs_completed_into(
        &mut self,
        completions: &[(WorkerId, JobId)],
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        let mut retired = 0usize;
        let mut first_err = None;
        for &(worker, job) in completions {
            match self.retire_job(worker, job, now) {
                Ok(()) => retired += 1,
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }
        if retired > 0 {
            self.dispatch_round(now, sink);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// [`OnlineEngine::on_jobs_completed_into`], returning a fresh
    /// `Vec` instead of appending to a caller-owned sink.
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::on_jobs_completed_into`].
    #[deprecated(
        since = "0.1.0",
        note = "allocates a fresh Vec per call; use on_jobs_completed_into with a reusable ActionSink"
    )]
    pub fn on_jobs_completed(
        &mut self,
        completions: &[(WorkerId, JobId)],
        now: Instant,
    ) -> Result<Vec<Action>> {
        let mut sink = ActionSink::new();
        let res = self.on_jobs_completed_into(completions, now, &mut sink);
        res.map(|()| sink.into_vec())
    }

    /// One coalesced engine round: retires every `(worker, job)`
    /// completion, then performs the tick at `now` (periodic releases,
    /// optional deadline culling) and a **single** dispatch round for
    /// all of it. This is what a sharded scheduler thread calls when a
    /// wake finds pending completions *and* a due tick: instead of one
    /// dispatch round for the completion batch and another for the
    /// tick, the whole wake pays one round that sees both the freed
    /// workers and the fresh releases.
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::on_jobs_completed_into`]; on error the valid
    /// completion prefix is retired and the tick still runs, so the
    /// engine stays consistent.
    pub fn advance_into(
        &mut self,
        completions: &[(WorkerId, JobId)],
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        let mut first_err = None;
        for &(worker, job) in completions {
            if let Err(e) = self.retire_job(worker, job, now) {
                first_err = Some(e);
                break;
            }
        }
        self.on_tick_into(now, sink);
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The most urgent ready job as a work-stealing hint — O(1),
    /// through a shared reference, shard engines only (`None`
    /// otherwise). No hint is given for a job that must not migrate:
    /// one of an accelerator-bound task (accelerators are arbitrated
    /// shard-locally), or one this shard itself adopted from elsewhere
    /// — a job migrates **at most once**, so thieves can never bounce
    /// work around or hand a job back to its owner.
    #[must_use]
    pub fn steal_hint(&self) -> Option<StealHint> {
        let w = self.shard?;
        let job = self.queues[0].peek_hint()?;
        if self.task_worker[job.task.index()] != w.raw() || self.task_accel_bound[job.task.index()]
        {
            return None;
        }
        Some(StealHint {
            job: job.id,
            task: job.task,
            priority: job.priority,
        })
    }

    /// Hands the hinted ready job to a thief (victim side of a steal):
    /// removes it from the ready queue in O(log n) via the
    /// index-tracked [`ReadyQueue::remove`] and returns it for the
    /// thief to adopt. Returns `None` when the hint went stale (the job
    /// dispatched or was culled since the hint was taken) or the job
    /// must not migrate (accelerator-bound task, or a job this shard
    /// itself adopted — migration happens at most once).
    pub fn release_stolen(&mut self, hint: StealHint) -> Option<Job> {
        let w = self.shard?;
        if self.task_worker[hint.task.index()] != w.raw()
            || self.task_accel_bound[hint.task.index()]
        {
            return None;
        }
        let job = self.queues[0].remove(hint.job)?;
        debug_assert_eq!(job.task, hint.task);
        self.stats.donated += 1;
        Some(job)
    }

    /// Adopts a job stolen from a victim shard (thief side): the job
    /// enters this shard's ready queue — keeping EDF order against any
    /// local work — and the dispatch round runs it on this shard's
    /// worker, reporting the thief's **global** [`WorkerId`] in the
    /// dispatch action. Completion is then handed back to *this* shard
    /// like any local job; DAG successors it fires are routed by
    /// destination ownership (outbox for foreign destinations).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] on a non-shard engine or for a task of
    /// this very shard (nothing was stolen) — protocol violations. A
    /// *full* local queue is not an error: like every release-path
    /// overflow it is a sizing condition, surfaced through
    /// `stats.channel_overflows` (the job is dropped) rather than by
    /// panicking a scheduler thread mid-handshake.
    pub fn adopt_stolen(&mut self, job: Job, now: Instant, sink: &mut ActionSink) -> Result<()> {
        let Some(w) = self.shard else {
            return Err(Error::InvalidConfig(
                "only engine shards adopt stolen jobs".into(),
            ));
        };
        if self.task_worker[job.task.index()] == w.raw() {
            return Err(Error::InvalidConfig(format!(
                "job of task {} is already owned by shard {w}",
                job.task
            )));
        }
        if self.queues[0].push(job).is_ok() {
            self.stats.stolen += 1;
            self.stats.max_ready = self.stats.max_ready.max(self.ready_len());
        } else {
            self.stats.channel_overflows += 1;
        }
        self.dispatch_round(now, sink);
        Ok(())
    }

    /// Up to `k` steal hints in ascending queue-key order — the batch
    /// generalisation of [`OnlineEngine::steal_hint`]. The ordered scan
    /// walks the ready heap without detaching anything and **stops at
    /// the first job that must not migrate** (accelerator-bound task,
    /// or a job this shard itself adopted): like the single-job probe,
    /// a thief never takes less urgent work while skipping over more
    /// urgent local-only work. Hints are appended to `out` (cleared
    /// here); returns the number produced. Shard engines only — 0
    /// otherwise.
    pub fn steal_hints(&mut self, k: usize, out: &mut Vec<StealHint>) -> usize {
        out.clear();
        let Some(w) = self.shard else { return 0 };
        let k = k.min(crate::job::MAX_STEAL_BATCH);
        if k == 0 {
            return 0;
        }
        let mut frontier = std::mem::take(&mut self.steal_frontier);
        let task_worker = &self.task_worker;
        let task_accel_bound = &self.task_accel_bound;
        self.queues[0].scan_in_order(&mut frontier, |job| {
            if task_worker[job.task.index()] != w.raw() || task_accel_bound[job.task.index()] {
                return false;
            }
            out.push(StealHint {
                job: job.id,
                task: job.task,
                priority: job.priority,
            });
            out.len() < k
        });
        self.steal_frontier = frontier;
        out.len()
    }

    /// Hands a batch of hinted jobs to a thief in one exchange (victim
    /// side): each hint is re-validated exactly like
    /// [`OnlineEngine::release_stolen`] — stale hints (dispatched or
    /// culled since the probe) and jobs that must no longer migrate are
    /// skipped, never errors — and each detached job is appended to
    /// `out` in hint order (most urgent first). Returns the number
    /// detached; every one counts in [`EngineStats::donated`].
    pub fn release_stolen_batch(&mut self, hints: &[StealHint], out: &mut JobBatch) -> usize {
        let mut released = 0;
        for &hint in hints {
            let Some(job) = self.release_stolen(hint) else {
                continue;
            };
            if out.push(job) {
                released += 1;
            } else {
                // The batch filled up (protocol cap): put the job back —
                // it was never handed over. The push cannot fail: the
                // remove just freed its slot.
                self.queues[0].push(job).expect("slot was just vacated");
                self.stats.donated -= 1;
                break;
            }
        }
        released
    }

    /// Adopts a whole stolen batch (thief side): every job enters this
    /// shard's ready queue — keeping EDF order against local work —
    /// then **one** dispatch round runs for the batch, which is the
    /// point of batching: k migrations pay one protocol exchange and
    /// one dispatch round instead of k of each. Tenant budgets keep the
    /// single-steal semantics — each job charges *this* shard's replica
    /// of its tenant's reservation at dispatch, not at adoption.
    ///
    /// Books one exchange in [`EngineStats::stolen_batch`] and the
    /// batch length in the [`EngineStats::steal_batch_len`] histogram;
    /// each job also counts in [`EngineStats::stolen`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] on a non-shard engine or when any job
    /// belongs to this very shard (nothing was stolen) — protocol
    /// violations, checked before any job is enqueued. A *full* local
    /// queue is not an error: overflowing jobs are dropped and counted
    /// in `stats.channel_overflows`, like every release-path overflow.
    pub fn adopt_stolen_batch(
        &mut self,
        jobs: &[Job],
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        let Some(w) = self.shard else {
            return Err(Error::InvalidConfig(
                "only engine shards adopt stolen jobs".into(),
            ));
        };
        if let Some(job) = jobs
            .iter()
            .find(|j| self.task_worker[j.task.index()] == w.raw())
        {
            return Err(Error::InvalidConfig(format!(
                "job of task {} is already owned by shard {w}",
                job.task
            )));
        }
        if jobs.is_empty() {
            return Ok(());
        }
        for &job in jobs {
            if self.queues[0].push(job).is_ok() {
                self.stats.stolen += 1;
            } else {
                self.stats.channel_overflows += 1;
            }
        }
        self.stats.max_ready = self.stats.max_ready.max(self.ready_len());
        self.stats.stolen_batch += 1;
        let bucket = (jobs.len() - 1).min(self.stats.steal_batch_len.len() - 1);
        self.stats.steal_batch_len[bucket] += 1;
        self.dispatch_round(now, sink);
        Ok(())
    }

    /// Validates and books one completion — frees the worker slot,
    /// releases any held accelerator, fires DAG successors — without
    /// running a dispatch round (the caller batches that). A job flagged
    /// [`OverrunPolicy::Kill`] retires without firing successors, and a
    /// completion past its absolute deadline feeds the miss trip wire.
    fn retire_job(&mut self, worker: WorkerId, job: JobId, now: Instant) -> Result<()> {
        let slot = self
            .slot_of(worker)
            .and_then(|s| self.running.get_mut(s))
            .ok_or(Error::UnknownWorker(worker))?;
        let running = slot.take().ok_or_else(|| {
            Error::InvalidConfig(format!("worker {worker} completed {job} while idle"))
        })?;
        if running.job.id != job {
            let actual = running.job.id;
            *slot = Some(running);
            return Err(Error::InvalidConfig(format!(
                "worker {worker} completed {job} but runs {actual}"
            )));
        }
        self.stats.completed += 1;
        if self.miss_trip.is_some() && running.job.abs_deadline < now {
            self.note_miss(now);
        }
        if let Some(a) = running.accel {
            self.accels.release(a, job);
        }
        if !running.killed {
            self.fire_successors(running.job.task, running.job.graph_release);
        }
        Ok(())
    }

    /// Validates and books one *failed* completion (the body panicked;
    /// the runtime contained the unwind). The worker slot and any held
    /// accelerator are freed like a normal retirement, the failure is
    /// counted in [`EngineStats::failed`] and fed to the miss trip wire,
    /// and the task's [`OverrunPolicy`] decides the successor tokens:
    /// `LogOnly` fires them (downstream stages still run, presumably on
    /// stale data the application tolerates), `Kill` and
    /// `DemoteToBackground` drop them (the containment boundary).
    fn retire_failed(&mut self, worker: WorkerId, job: JobId, now: Instant) -> Result<()> {
        let slot = self
            .slot_of(worker)
            .and_then(|s| self.running.get_mut(s))
            .ok_or(Error::UnknownWorker(worker))?;
        let running = slot.take().ok_or_else(|| {
            Error::InvalidConfig(format!("worker {worker} failed {job} while idle"))
        })?;
        if running.job.id != job {
            let actual = running.job.id;
            *slot = Some(running);
            return Err(Error::InvalidConfig(format!(
                "worker {worker} failed {job} but runs {actual}"
            )));
        }
        self.stats.failed += 1;
        self.note_miss(now);
        if let Some(a) = running.accel {
            self.accels.release(a, job);
        }
        if self.overrun_policy[running.job.task.index()] == OverrunPolicy::LogOnly
            && !running.killed
        {
            self.fire_successors(running.job.task, running.job.graph_release);
        }
        Ok(())
    }

    /// Notification that `job`'s body *failed* on `worker` at `now` (a
    /// contained panic). Frees the worker and any held accelerator,
    /// applies the task's [`OverrunPolicy`] to the successor tokens, and
    /// dispatches.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] if `worker` is not running `job` — a
    /// driver protocol violation.
    pub fn on_job_failed_into(
        &mut self,
        worker: WorkerId,
        job: JobId,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.retire_failed(worker, job, now)?;
        self.dispatch_round(now, sink);
        Ok(())
    }

    /// Pushes one token per outgoing edge of `task` and releases any
    /// successor whose inputs are all present (§3.3: inner nodes are
    /// "automatically activated by the scheduler, once all required
    /// incoming data are present in their input channels"). Edge
    /// adjacency is precomputed at construction and the successor set
    /// lives in a reusable scratch, so firing allocates nothing.
    ///
    /// Token state is owned by the shard owning the edge's
    /// **destination**: an out-edge whose destination belongs to a
    /// foreign shard is not fired here — it lands in the outbox as a
    /// [`RemoteActivation`] for the driver to route, which is also why a
    /// *stolen* job completing on a thief shard stays consistent (the
    /// thief fires only the edges whose destinations it owns).
    fn fire_successors(&mut self, task: TaskId, graph_release: Instant) {
        // A retired tenant's in-flight jobs complete but activate
        // nothing: edges never cross tenants, so skipping the whole
        // fan-out (local tokens *and* outbox entries) is exact.
        if self.tenants[self.tenant_of[task.index()] as usize].retired {
            return;
        }
        let mut successors = std::mem::take(&mut self.successor_buf);
        successors.clear();
        for k in 0..self.out_edges[task.index()].len() {
            let i = self.out_edges[task.index()][k];
            let dst = self.taskset.edges()[i].dst;
            if let Some(w) = self.shard {
                let dw = self.task_worker[dst.index()];
                if dw != w.raw() {
                    self.outbox.push(RemoteActivation {
                        worker: WorkerId::new(dw),
                        edge: i as u32,
                        graph_release,
                    });
                    self.stats.cross_activations += 1;
                    continue;
                }
            }
            self.push_token(i, graph_release);
            if !successors.contains(&dst) {
                successors.push(dst);
            }
        }
        for &dst in &successors {
            self.try_fire_joins(dst);
        }
        self.successor_buf = successors;
    }

    /// Books one token on edge `i` (no release attempt). A token
    /// arriving on a full channel is resolved by the channel's
    /// [`BackpressurePolicy`]: `Reject` counts the overflow and keeps
    /// everything (historic behaviour); `DropOldest` sheds the oldest
    /// buffered token; `DeadlineAwareDrop` sheds the token with the
    /// latest downstream release (the least urgent). The shedding paths
    /// leave the FIFO length unchanged, so pre-reserved release buffers
    /// never reallocate under overload.
    fn push_token(&mut self, i: usize, graph_release: Instant) {
        let spec = &self.taskset.channels()[self.taskset.edges()[i].channel.index()];
        let cap = spec.capacity();
        let policy = spec.backpressure();
        if cap > 0 && self.tokens[i] as usize >= cap {
            match policy {
                BackpressurePolicy::Reject => {
                    self.tokens[i] += 1;
                    self.token_release[i].push(graph_release);
                    self.stats.channel_overflows += 1;
                }
                BackpressurePolicy::DropOldest => {
                    self.token_release[i].remove(0);
                    self.token_release[i].push(graph_release);
                    self.stats.shed_drops += 1;
                }
                BackpressurePolicy::DeadlineAwareDrop => {
                    // Shed the least urgent instance: the one whose
                    // graph release (hence derived deadline) is latest.
                    // Ties keep the older instance (FIFO stability).
                    let fifo = &mut self.token_release[i];
                    fifo.push(graph_release);
                    let mut worst = 0;
                    for k in 1..fifo.len() {
                        if fifo[k] > fifo[worst] {
                            worst = k;
                        }
                    }
                    fifo.remove(worst);
                    self.stats.shed_drops += 1;
                }
            }
        } else {
            self.tokens[i] += 1;
            self.token_release[i].push(graph_release);
        }
    }

    /// Releases instances of `dst` while every input edge holds a token.
    fn try_fire_joins(&mut self, dst: TaskId) {
        loop {
            let n_in = self.in_edges[dst.index()].len();
            let all_present = (0..n_in).all(|k| self.tokens[self.in_edges[dst.index()][k]] > 0);
            if !all_present {
                break;
            }
            // Consume one token per input; the graph release of the
            // new job is the *oldest* input instance (join semantics).
            let mut release = Instant::ZERO;
            for k in 0..n_in {
                let i = self.in_edges[dst.index()][k];
                self.tokens[i] -= 1;
                let r = self.token_release[i].remove(0);
                release = release.max(r);
            }
            self.release_job(dst, release, release);
        }
    }

    /// Applies a DAG token routed from a foreign shard (the receiving
    /// half of a cross-shard edge): books the token on `edge`, releases
    /// the destination if its join is complete, and dispatches.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] when `edge` is out of range or this
    /// engine does not own the edge's destination — driver routing
    /// bugs, not runtime conditions.
    pub fn on_remote_token(
        &mut self,
        edge: u32,
        graph_release: Instant,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        let i = edge as usize;
        if i >= self.taskset.edges().len() {
            return Err(Error::InvalidConfig(format!(
                "remote token names edge {edge} of {}",
                self.taskset.edges().len()
            )));
        }
        let dst = self.taskset.edges()[i].dst;
        // A token racing a tenant retirement (sent before the source
        // shard learned of it) is silently dropped, not a protocol
        // error.
        if self.is_task_retired(dst) {
            return Ok(());
        }
        if !self.owns_task(dst) {
            return Err(Error::InvalidConfig(format!(
                "remote token for edge {edge} routed to a shard not owning {dst}"
            )));
        }
        self.push_token(i, graph_release);
        self.try_fire_joins(dst);
        self.dispatch_round(now, sink);
        Ok(())
    }

    /// Moves every pending [`RemoteActivation`] into `buf` (appended;
    /// the outbox is left empty). Drivers call this after any engine
    /// interaction that may complete jobs and route each entry to the
    /// owning shard. The caller's buffer is reusable, so the steady
    /// state allocates nothing.
    pub fn drain_outbox_into(&mut self, buf: &mut Vec<RemoteActivation>) {
        buf.append(&mut self.outbox);
    }

    /// `true` when cross-shard tokens are waiting to be routed.
    #[must_use]
    pub fn has_outbox(&self) -> bool {
        !self.outbox.is_empty()
    }

    /// A high-priority message was posted to `dst`'s high lane: raises
    /// the task's active ceiling to `min(current, ceiling)` and applies
    /// the boost — the most urgent pending job of `dst` is re-queued at
    /// the ceiling, a running job of `dst` has its effective priority
    /// raised (emitting [`Action::Boost`]), and jobs released while the
    /// lane stays non-empty inherit the ceiling at release. The boost
    /// holds until [`OnlineEngine::on_high_drained_into`] has been
    /// called once per post (depth counting), making message priority a
    /// schedulable quantity, not just queue ordering.
    ///
    /// A dispatch round runs afterwards, so under preemptive configs a
    /// boosted pending job preempts immediately.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownTask`] for an out-of-range task, or
    /// [`Error::InvalidConfig`] when a shard engine receives a post for
    /// a task it does not own — driver routing bugs, not runtime
    /// conditions. Posts for retired-tenant tasks are silently dropped.
    pub fn on_high_posted_into(
        &mut self,
        dst: TaskId,
        ceiling: Priority,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        let ti = dst.index();
        if ti >= self.taskset.len() {
            return Err(Error::UnknownTask(dst));
        }
        if self.is_task_retired(dst) {
            return Ok(());
        }
        if self.shard.is_some() && !self.owns_task(dst) {
            return Err(Error::InvalidConfig(format!(
                "high-priority message for {dst} routed to a shard not owning it"
            )));
        }
        self.high_depth[ti] += 1;
        if ceiling.is_higher_than(self.msg_ceiling[ti]) {
            self.msg_ceiling[ti] = ceiling;
        }
        let active = self.msg_ceiling[ti];
        // Boost the most urgent pending job of `dst` (O(log n) re-queue
        // through the index heap; the scan itself allocates nothing).
        let qi = self.queue_of[ti] as usize;
        let mut target: Option<(Priority, JobId)> = None;
        for j in self.queues[qi].iter() {
            if j.task == dst
                && active.is_higher_than(j.priority)
                && target.is_none_or(|(p, _)| j.priority.is_higher_than(p))
            {
                target = Some((j.priority, j.id));
            }
        }
        if let Some((_, id)) = target {
            let mut job = self.queues[qi].remove(id).expect("job was just iterated");
            job.priority = active;
            let _ = self.queues[qi].push(job);
            self.stats.msg_boosts += 1;
        }
        // Boost a running job of `dst` the way accelerator PIP does:
        // update the slot's effective priority and tell the driver.
        for s in 0..self.running.len() {
            let worker = self.worker_of_slot(s);
            let mut boosted = None;
            if let Some(r) = self.running[s].as_mut() {
                if r.job.task == dst && active.is_higher_than(r.effective_priority) {
                    r.effective_priority = active;
                    boosted = Some(r.job.id);
                }
            }
            if let Some(job) = boosted {
                self.stats.msg_boosts += 1;
                sink.push(Action::Boost {
                    worker,
                    job,
                    priority: active,
                });
            }
        }
        self.dispatch_round(now, sink);
        Ok(())
    }

    /// One high-priority message of `dst` was consumed. When the last
    /// outstanding post drains (depth reaches zero) the boost is
    /// released: pending jobs of `dst` return to their base priority
    /// (recomputed — EDF from the absolute deadline, otherwise the
    /// static task priority), and a running job whose effective priority
    /// equals the released ceiling falls back to base (a concurrent,
    /// more urgent accelerator-PIP boost is left untouched).
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::on_high_posted_into`]. Draining an empty lane
    /// is a protocol error in debug builds and a no-op in release.
    pub fn on_high_drained_into(
        &mut self,
        dst: TaskId,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        let ti = dst.index();
        if ti >= self.taskset.len() {
            return Err(Error::UnknownTask(dst));
        }
        if self.is_task_retired(dst) {
            return Ok(());
        }
        if self.shard.is_some() && !self.owns_task(dst) {
            return Err(Error::InvalidConfig(format!(
                "high-lane drain for {dst} routed to a shard not owning it"
            )));
        }
        debug_assert!(self.high_depth[ti] > 0, "drained an empty high lane");
        self.high_depth[ti] = self.high_depth[ti].saturating_sub(1);
        if self.high_depth[ti] > 0 {
            return Ok(());
        }
        let ceiling = std::mem::replace(&mut self.msg_ceiling[ti], Priority::LOWEST);
        if ceiling == Priority::LOWEST {
            return Ok(());
        }
        // De-boost pending jobs: each restored job stops matching the
        // scan, so the loop terminates after at most one pass per
        // boosted job, allocation-free.
        let qi = self.queue_of[ti] as usize;
        loop {
            let mut found: Option<(JobId, Priority)> = None;
            for j in self.queues[qi].iter() {
                if j.task == dst {
                    let base = self.base_priority_of(j);
                    if j.priority != base {
                        found = Some((j.id, base));
                        break;
                    }
                }
            }
            let Some((id, base)) = found else { break };
            let mut job = self.queues[qi].remove(id).expect("job was just iterated");
            job.priority = base;
            let _ = self.queues[qi].push(job);
        }
        // De-boost a running job only when the message ceiling is the
        // active component of its effective priority.
        for s in 0..self.running.len() {
            let worker = self.worker_of_slot(s);
            let mut restored = None;
            if let Some(r) = self.running[s].as_mut() {
                if r.job.task == dst && r.effective_priority == ceiling {
                    let base = r.job.priority;
                    if base != r.effective_priority {
                        r.effective_priority = base;
                        restored = Some((r.job.id, base));
                    }
                }
            }
            if let Some((job, priority)) = restored {
                sink.push(Action::Boost {
                    worker,
                    job,
                    priority,
                });
            }
        }
        self.dispatch_round(now, sink);
        Ok(())
    }

    /// Outstanding high-priority messages for `task` (posted minus
    /// drained); the message boost is held while this is non-zero.
    #[must_use]
    pub fn high_lane_depth(&self, task: TaskId) -> u32 {
        self.high_depth.get(task.index()).copied().unwrap_or(0)
    }

    /// The ceiling `task` currently inherits from its high message lane,
    /// or `None` when no boost is active.
    #[must_use]
    pub fn active_msg_ceiling(&self, task: TaskId) -> Option<Priority> {
        match self.msg_ceiling.get(task.index()) {
            Some(&c) if c != Priority::LOWEST => Some(c),
            _ => None,
        }
    }

    /// The base (un-boosted) priority of a job under the active policy.
    fn base_priority_of(&self, job: &Job) -> Priority {
        match self.config.priority() {
            PriorityPolicy::EarliestDeadlineFirst => Priority::earliest_deadline(job.abs_deadline),
            _ => self.static_priority[job.task.index()],
        }
    }

    fn release_job(&mut self, task: TaskId, release: Instant, graph_release: Instant) {
        debug_assert!(
            !self.is_task_retired(task),
            "released a job of retired-tenant task {task}"
        );
        let seq = self.activation_seq[task.index()];
        self.activation_seq[task.index()] += 1;
        self.last_activation[task.index()] = Some(release);
        let rel_deadline = self.rel_deadline[task.index()];
        let abs_deadline = if rel_deadline == Duration::MAX {
            Instant::MAX
        } else {
            graph_release + rel_deadline
        };
        let priority = match self.config.priority() {
            PriorityPolicy::EarliestDeadlineFirst => Priority::earliest_deadline(abs_deadline),
            _ => self.static_priority[task.index()],
        };
        // Shedding mode: while the miss trip wire is tripped,
        // `LogOnly`-class tasks release at background priority so the
        // enforced/critical classes get the processor first. The message
        // ceiling below still applies — a control-plane boost outranks
        // the demotion.
        let priority =
            if self.tripped && self.overrun_policy[task.index()] == OverrunPolicy::LogOnly {
                Priority::LOWEST
            } else {
                priority
            };
        // A job released while its task's high message lane is non-empty
        // inherits the active ceiling immediately (message-plane PIP).
        let ceiling = self.msg_ceiling[task.index()];
        let priority = if ceiling.is_higher_than(priority) {
            ceiling
        } else {
            priority
        };
        let job = Job {
            id: JobId::new(self.job_counter),
            task,
            seq,
            release,
            graph_release,
            abs_deadline,
            priority,
            preempted: false,
        };
        self.job_counter += 1;
        let qi = self.queue_index(task);
        if self.queues[qi].push(job).is_err() {
            // A sizing error; surfaced through the stats rather than
            // panicking mid-schedule.
            self.stats.channel_overflows += 1;
        } else {
            self.stats.released += 1;
        }
        self.stats.max_ready = self.stats.max_ready.max(self.ready_len());
    }

    fn queue_index(&self, task: TaskId) -> usize {
        if self.shard.is_some() {
            debug_assert!(self.owns_task(task), "shard released a foreign task");
        }
        self.queue_of[task.index()] as usize
    }

    fn select_ctx(&self) -> SelectCtx {
        SelectCtx {
            // Battery-independent policies get a constant placeholder:
            // probing the battery on every dispatch would both cost a
            // callback and, with a drifting probe, invalidate the rank
            // cache on every call for no behavioural reason.
            battery: if self.policy_uses_battery {
                self.config.read_battery()
            } else {
                BatteryLevel::FULL
            },
            mode: self.mode,
            permissions: self.permissions,
        }
    }

    /// Ensures the rank cache entry for `task` is valid under the
    /// current selection context, recomputing it lazily. The whole cache
    /// is invalidated whenever the context (mode, permissions, battery)
    /// changes; user-defined policies are never cached since the
    /// callback may be stateful.
    #[inline]
    fn refresh_rank_cache(&mut self, task: TaskId) {
        let ctx = self.select_ctx();
        let ti = task.index();
        if ctx == self.cache_ctx {
            if self.policy_cacheable && self.rank_cache[ti].valid {
                return; // steady-state fast path
            }
        } else {
            for e in &mut self.rank_cache {
                e.valid = false;
            }
            self.cache_ctx = ctx;
        }
        let task_ref = &self.taskset.tasks()[ti];
        rank_versions_into(
            self.config.version_policy(),
            &ctx,
            task_ref,
            &mut self.rank_buf,
        );
        let entry = &mut self.rank_cache[ti];
        entry.ids.clear();
        entry.ids.extend(
            self.rank_buf
                .as_slice()
                .iter()
                .map(|&v| (v, task_ref.versions()[v.index()].accel())),
        );
        entry.valid = self.policy_cacheable;
    }

    fn choose_version(&mut self, task: TaskId) -> VersionChoice {
        self.refresh_rank_cache(task);
        let ti = task.index();
        if self.rank_cache[ti].ids.is_empty() {
            return VersionChoice::NoEligible;
        }
        self.wish_buf.clear();
        for &(v, accel) in &self.rank_cache[ti].ids {
            match accel {
                None => return VersionChoice::Run(v, None),
                Some(a) if self.accels.is_free(a) => return VersionChoice::Run(v, Some(a)),
                Some(a) => {
                    if !self.wish_buf.contains(&a) {
                        self.wish_buf.push(a);
                    }
                }
            }
        }
        VersionChoice::Blocked
    }

    fn start_job(
        &mut self,
        worker: WorkerId,
        job: Job,
        version: VersionId,
        accel: Option<AccelId>,
        now: Instant,
        actions: &mut ActionSink,
    ) {
        if let Some(a) = accel {
            self.accels
                .acquire(a, job.id, worker, job.priority)
                .expect("choose_version verified the accelerator is free");
        }
        // The enforcement budget is the selected version's declared
        // WCET, armed from the dispatch instant (a preempted job gets a
        // fresh budget on re-dispatch — its prior slice is not carried).
        let enforce_by = if self.enforce_wcet {
            now + self.taskset.tasks()[job.task.index()].versions()[version.index()].wcet()
        } else {
            Instant::MAX
        };
        let slot = self.slot_of(worker).expect("dispatch targets owned worker");
        self.running[slot] = Some(RunningJob {
            job,
            version,
            accel,
            effective_priority: job.priority,
            enforce_by,
            overrun: false,
            killed: false,
        });
        self.stats.dispatched += 1;
        actions.push(Action::Dispatch {
            worker,
            job,
            version,
        });
    }

    /// Applies PIP to every busy accelerator the blocked job wanted.
    fn apply_pip(&mut self, blocked: &Job, wishes: &[AccelId], actions: &mut ActionSink) {
        for &a in wishes {
            if let Some(holder) = self.accels.boost_holder(a, blocked.priority) {
                if let Some(r) = self
                    .slot_of(holder.worker)
                    .and_then(|s| self.running[s].as_mut())
                {
                    if r.job.id == holder.job {
                        r.effective_priority = holder.priority;
                    }
                }
                self.stats.pip_boosts += 1;
                actions.push(Action::Boost {
                    worker: holder.worker,
                    job: holder.job,
                    priority: holder.priority,
                });
            }
        }
        self.stats.blocked_skips += 1;
    }

    fn workers_fed_by(&self, queue_idx: usize) -> std::ops::Range<usize> {
        match self.config.mapping() {
            MappingScheme::Global => 0..self.running.len(),
            MappingScheme::Partitioned => queue_idx..queue_idx + 1,
        }
    }

    /// Charges the dispatch of `job` with `version` against its
    /// tenant's reservation server, if any. All-or-nothing on the
    /// selected version's WCET; `false` defers the job to a later round
    /// (counted in [`EngineStats::budget_deferrals`]).
    #[inline]
    fn charge_budget(&mut self, job: &Job, version: VersionId, now: Instant) -> bool {
        let tenant = self.tenant_of[job.task.index()] as usize;
        let Some(server) = self.tenants[tenant].server.as_mut() else {
            return true;
        };
        let wcet = self.taskset.tasks()[job.task.index()].versions()[version.index()].wcet();
        if server.try_charge(now, wcet) {
            true
        } else {
            self.stats.budget_deferrals += 1;
            false
        }
    }

    fn dispatch_round(&mut self, now: Instant, actions: &mut ActionSink) {
        for qi in 0..self.queues.len() {
            self.fill_idle_workers(qi, now, actions);
            if self.config.preemption() {
                self.preempt_round(qi, now, actions);
            }
        }
    }

    fn fill_idle_workers(&mut self, qi: usize, now: Instant, actions: &mut ActionSink) {
        let mut blocked = std::mem::take(&mut self.blocked_buf);
        blocked.clear();
        loop {
            let idle = self.workers_fed_by(qi).find(|&w| self.running[w].is_none());
            let Some(w) = idle else { break };
            let Some(job) = self.queues[qi].pop() else {
                break;
            };
            match self.choose_version(job.task) {
                VersionChoice::Run(v, a) => {
                    if !self.charge_budget(&job, v, now) {
                        blocked.push(job);
                        continue;
                    }
                    let worker = self.worker_of_slot(w);
                    self.start_job(worker, job, v, a, now, actions);
                }
                VersionChoice::Blocked => {
                    let wishes = std::mem::take(&mut self.wish_buf);
                    self.apply_pip(&job, &wishes, actions);
                    self.wish_buf = wishes;
                    blocked.push(job);
                }
                VersionChoice::NoEligible => {
                    self.stats.blocked_skips += 1;
                    blocked.push(job);
                }
            }
        }
        for j in blocked.drain(..) {
            let _ = self.queues[qi].push(j);
        }
        self.blocked_buf = blocked;
    }

    fn preempt_round(&mut self, qi: usize, now: Instant, actions: &mut ActionSink) {
        let mut blocked = std::mem::take(&mut self.blocked_buf);
        blocked.clear();
        // The no-preempt fast path compares priorities only, through the
        // heap root's key — the queued job's payload is read just when a
        // preemption actually proceeds.
        while let Some(top_priority) = self.queues[qi].peek_priority() {
            // Least-urgent preemptable running job fed by this queue;
            // accelerator holders are not preemptable.
            let victim = self
                .workers_fed_by(qi)
                .filter_map(|w| {
                    self.running[w]
                        .as_ref()
                        .filter(|r| r.accel.is_none())
                        .map(|r| (w, r.effective_priority))
                })
                .max_by_key(|&(w, p)| (p, w));
            let Some((w, victim_prio)) = victim else {
                break;
            };
            if !top_priority.is_higher_than(victim_prio) {
                break;
            }
            let top = *self.queues[qi].peek().expect("priority was peeked");
            match self.choose_version(top.task) {
                VersionChoice::Run(v, a) => {
                    let job = self.queues[qi].pop().expect("peeked job present");
                    if !self.charge_budget(&job, v, now) {
                        blocked.push(job);
                        continue;
                    }
                    let mut old = self.running[w].take().expect("victim present").job;
                    old.preempted = true;
                    let worker = self.worker_of_slot(w);
                    actions.push(Action::Preempt {
                        worker,
                        job: old.id,
                    });
                    self.stats.preempted += 1;
                    let _ = self.queues[qi].push(old);
                    self.start_job(worker, job, v, a, now, actions);
                }
                VersionChoice::Blocked => {
                    let job = self.queues[qi].pop().expect("peeked job present");
                    let wishes = std::mem::take(&mut self.wish_buf);
                    self.apply_pip(&job, &wishes, actions);
                    self.wish_buf = wishes;
                    blocked.push(job);
                }
                VersionChoice::NoEligible => {
                    let job = self.queues[qi].pop().expect("peeked job present");
                    self.stats.blocked_skips += 1;
                    blocked.push(job);
                }
            }
        }
        for j in blocked.drain(..) {
            let _ = self.queues[qi].push(j);
        }
        self.blocked_buf = blocked;
    }
}

#[cfg(test)]
mod tests {
    // The deprecated Vec-returning wrappers stay exercised here until
    // they are removed outright.
    #![allow(deprecated)]

    use super::*;
    use yasmin_core::config::VersionPolicy;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn at(v: u64) -> Instant {
        Instant::from_nanos(v * 1_000_000)
    }

    fn two_task_set() -> Arc<TaskSet> {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let a = b.task_decl(TaskSpec::periodic("a", ms(10))).unwrap();
        let c = b.task_decl(TaskSpec::periodic("c", ms(20))).unwrap();
        b.version_decl(a, VersionSpec::new("a", ms(2))).unwrap();
        b.version_decl(c, VersionSpec::new("c", ms(5))).unwrap();
        Arc::new(b.build().unwrap())
    }

    fn edf_config(workers: usize) -> Config {
        Config::builder()
            .workers(workers)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap()
    }

    #[test]
    fn tick_is_gcd_of_periods() {
        let e = OnlineEngine::new(two_task_set(), edf_config(1)).unwrap();
        assert_eq!(e.tick_period(), ms(10));
    }

    #[test]
    fn start_releases_and_dispatches_by_deadline_order() {
        let mut e = OnlineEngine::new(two_task_set(), edf_config(1)).unwrap();
        let actions = e.start(Instant::ZERO).unwrap();
        // Both release at 0; EDF picks the 10ms-deadline task first on the
        // single worker.
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            Action::Dispatch { worker, job, .. } => {
                assert_eq!(*worker, WorkerId::new(0));
                assert_eq!(job.task, TaskId::new(0));
                assert_eq!(job.abs_deadline, at(10));
            }
            other => panic!("expected dispatch, got {other:?}"),
        }
        assert_eq!(e.ready_len(), 1);
        assert_eq!(e.stats().released, 2);
    }

    #[test]
    fn completion_dispatches_next() {
        let mut e = OnlineEngine::new(two_task_set(), edf_config(1)).unwrap();
        let a0 = e.start(Instant::ZERO).unwrap();
        let first = match &a0[0] {
            Action::Dispatch { job, .. } => job.id,
            _ => unreachable!(),
        };
        let a1 = e.on_job_completed(WorkerId::new(0), first, at(2)).unwrap();
        assert_eq!(a1.len(), 1);
        match &a1[0] {
            Action::Dispatch { job, .. } => assert_eq!(job.task, TaskId::new(1)),
            other => panic!("expected dispatch, got {other:?}"),
        }
        assert!(e.running(WorkerId::new(0)).is_some());
        assert_eq!(e.ready_len(), 0);
    }

    #[test]
    fn batch_completion_retires_all_then_dispatches_once() {
        // fork -> (left, right) -> join: completing left and right in
        // ONE batch must fire the join inside the same call — the single
        // dispatch round runs after every completion retired.
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let fork = b.task_decl(TaskSpec::periodic("fork", ms(100))).unwrap();
        let left = b.task_decl(TaskSpec::graph_node("left")).unwrap();
        let right = b.task_decl(TaskSpec::graph_node("right")).unwrap();
        let join = b.task_decl(TaskSpec::graph_node("join")).unwrap();
        for t in [fork, left, right, join] {
            b.version_decl(t, VersionSpec::new("v", ms(1))).unwrap();
        }
        let c1 = b.channel_decl("fl", 1, 1);
        let c2 = b.channel_decl("fr", 1, 1);
        let c3 = b.channel_decl("lj", 1, 1);
        let c4 = b.channel_decl("rj", 1, 1);
        b.channel_connect(fork, left, c1).unwrap();
        b.channel_connect(fork, right, c2).unwrap();
        b.channel_connect(left, join, c3).unwrap();
        b.channel_connect(right, join, c4).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let mut e = OnlineEngine::new(ts, edf_config(2)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let fork_id = e.running(WorkerId::new(0)).unwrap().job.id;
        let _ = e
            .on_job_completed(WorkerId::new(0), fork_id, at(1))
            .unwrap();
        let batch = [
            (
                WorkerId::new(0),
                e.running(WorkerId::new(0)).unwrap().job.id,
            ),
            (
                WorkerId::new(1),
                e.running(WorkerId::new(1)).unwrap().job.id,
            ),
        ];
        let acts = e.on_jobs_completed(&batch, at(2)).unwrap();
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::Dispatch { job, .. } if job.task == join)),
            "join fires within the batch call: {acts:?}"
        );
        assert_eq!(e.stats().completed, 3);
    }

    #[test]
    fn batch_completion_error_keeps_retired_prefix() {
        let mut e = OnlineEngine::new(two_task_set(), edf_config(2)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let good = e.running(WorkerId::new(0)).unwrap().job.id;
        let batch = [
            (WorkerId::new(0), good),
            (WorkerId::new(1), JobId::new(999)), // protocol violation
        ];
        let err = e.on_jobs_completed(&batch, at(1));
        assert!(err.is_err());
        // The valid prefix was retired (worker 0 freed, completion
        // counted); the offender's worker still runs its job.
        assert_eq!(e.stats().completed, 1);
        assert!(e.running(WorkerId::new(1)).is_some());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut e = OnlineEngine::new(two_task_set(), edf_config(2)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let acts = e.on_jobs_completed(&[], at(1)).unwrap();
        assert!(acts.is_empty());
        assert_eq!(e.stats().completed, 0);
    }

    #[test]
    fn wrong_completion_is_protocol_error() {
        let mut e = OnlineEngine::new(two_task_set(), edf_config(1)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        assert!(e
            .on_job_completed(WorkerId::new(0), JobId::new(999), at(1))
            .is_err());
        assert!(e
            .on_job_completed(WorkerId::new(1), JobId::new(0), at(1))
            .is_err());
    }

    #[test]
    fn periodic_rereleases_on_tick() {
        let mut e = OnlineEngine::new(two_task_set(), edf_config(2)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        // Finish both first jobs.
        let r0 = e.running(WorkerId::new(0)).unwrap().job.id;
        let r1 = e.running(WorkerId::new(1)).unwrap().job.id;
        let _ = e.on_job_completed(WorkerId::new(0), r0, at(2)).unwrap();
        let _ = e.on_job_completed(WorkerId::new(1), r1, at(5)).unwrap();
        // Tick at 10ms: only task a (period 10) re-releases.
        let acts = e.on_tick(at(10));
        assert_eq!(acts.len(), 1);
        match &acts[0] {
            Action::Dispatch { job, .. } => {
                assert_eq!(job.task, TaskId::new(0));
                assert_eq!(job.seq, 1);
                assert_eq!(job.release, at(10));
            }
            other => panic!("{other:?}"),
        }
        // Tick at 20ms: task a again + task c.
        let r0 = e.running(WorkerId::new(0)).unwrap().job.id;
        let _ = e.on_job_completed(WorkerId::new(0), r0, at(12)).unwrap();
        let acts = e.on_tick(at(20));
        assert_eq!(acts.len(), 2);
        assert_eq!(e.stats().released, 5);
    }

    #[test]
    fn preemption_on_more_urgent_release() {
        // One worker; long low-urgency job running, then an urgent one
        // arrives at the next tick.
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let slow = b.task_decl(TaskSpec::periodic("slow", ms(100))).unwrap();
        let fast = b
            .task_decl(
                TaskSpec::periodic("fast", ms(100))
                    .with_release_offset(ms(10))
                    .with_constrained_deadline(ms(20)),
            )
            .unwrap();
        b.version_decl(slow, VersionSpec::new("s", ms(50))).unwrap();
        b.version_decl(fast, VersionSpec::new("f", ms(5))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let mut e = OnlineEngine::new(ts, edf_config(1)).unwrap();
        let a0 = e.start(Instant::ZERO).unwrap();
        assert_eq!(a0.len(), 1); // slow dispatched
        let acts = e.on_tick(at(10));
        // fast (deadline 30ms) preempts slow (deadline 100ms).
        assert!(matches!(acts[0], Action::Preempt { .. }), "{acts:?}");
        match &acts[1] {
            Action::Dispatch { job, .. } => assert_eq!(job.task, fast),
            other => panic!("{other:?}"),
        }
        assert_eq!(e.stats().preempted, 1);
        // The preempted job is ready again, marked preempted.
        assert_eq!(e.ready_len(), 1);
        // Completing fast resumes slow.
        let fast_id = e.running(WorkerId::new(0)).unwrap().job.id;
        let acts = e
            .on_job_completed(WorkerId::new(0), fast_id, at(15))
            .unwrap();
        match &acts[0] {
            Action::Dispatch { job, .. } => {
                assert_eq!(job.task, slow);
                assert!(job.preempted);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_preemption_when_disabled() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let slow = b.task_decl(TaskSpec::periodic("slow", ms(100))).unwrap();
        let fast = b
            .task_decl(
                TaskSpec::periodic("fast", ms(100))
                    .with_release_offset(ms(10))
                    .with_constrained_deadline(ms(20)),
            )
            .unwrap();
        b.version_decl(slow, VersionSpec::new("s", ms(50))).unwrap();
        b.version_decl(fast, VersionSpec::new("f", ms(5))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let cfg = Config::builder()
            .workers(1)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .preemption(false)
            .build()
            .unwrap();
        let mut e = OnlineEngine::new(ts, cfg).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let acts = e.on_tick(at(10));
        assert!(acts.is_empty(), "{acts:?}");
        assert_eq!(e.stats().preempted, 0);
    }

    #[test]
    fn partitioned_requires_assignments() {
        let cfg = Config::builder()
            .workers(2)
            .mapping(MappingScheme::Partitioned)
            .build()
            .unwrap();
        assert!(matches!(
            OnlineEngine::new(two_task_set(), cfg),
            Err(Error::MissingPartition(_))
        ));
    }

    #[test]
    fn partitioned_respects_assignment() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let a = b
            .task_decl(TaskSpec::periodic("a", ms(10)).on_worker(WorkerId::new(1)))
            .unwrap();
        b.version_decl(a, VersionSpec::new("a", ms(1))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let cfg = Config::builder()
            .workers(2)
            .mapping(MappingScheme::Partitioned)
            .build()
            .unwrap();
        let mut e = OnlineEngine::new(ts, cfg).unwrap();
        let acts = e.start(Instant::ZERO).unwrap();
        match &acts[0] {
            Action::Dispatch { worker, .. } => assert_eq!(*worker, WorkerId::new(1)),
            other => panic!("{other:?}"),
        }
        assert!(e.running(WorkerId::new(0)).is_none());
    }

    #[test]
    fn dag_successors_fire_after_completion() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let fork = b.task_decl(TaskSpec::periodic("fork", ms(100))).unwrap();
        let left = b.task_decl(TaskSpec::graph_node("left")).unwrap();
        let right = b.task_decl(TaskSpec::graph_node("right")).unwrap();
        let join = b.task_decl(TaskSpec::graph_node("join")).unwrap();
        for t in [fork, left, right, join] {
            b.version_decl(t, VersionSpec::new("v", ms(1))).unwrap();
        }
        let c1 = b.channel_decl("fl", 1, 1);
        let c2 = b.channel_decl("fr", 1, 1);
        let c3 = b.channel_decl("lj", 1, 1);
        let c4 = b.channel_decl("rj", 1, 1);
        b.channel_connect(fork, left, c1).unwrap();
        b.channel_connect(fork, right, c2).unwrap();
        b.channel_connect(left, join, c3).unwrap();
        b.channel_connect(right, join, c4).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let mut e = OnlineEngine::new(ts, edf_config(2)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let fork_id = e.running(WorkerId::new(0)).unwrap().job.id;
        let acts = e
            .on_job_completed(WorkerId::new(0), fork_id, at(1))
            .unwrap();
        // left and right both released and dispatched on the two workers.
        let dispatched: Vec<TaskId> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Dispatch { job, .. } => Some(job.task),
                _ => None,
            })
            .collect();
        assert_eq!(dispatched.len(), 2);
        assert!(dispatched.contains(&left) && dispatched.contains(&right));
        // Join waits for both.
        let left_id = e.running(WorkerId::new(0)).unwrap().job.id;
        let acts = e
            .on_job_completed(WorkerId::new(0), left_id, at(2))
            .unwrap();
        assert!(acts.is_empty(), "join must wait for right: {acts:?}");
        let right_id = e.running(WorkerId::new(1)).unwrap().job.id;
        let acts = e
            .on_job_completed(WorkerId::new(1), right_id, at(3))
            .unwrap();
        let join_dispatch = acts
            .iter()
            .any(|a| matches!(a, Action::Dispatch { job, .. } if job.task == join));
        assert!(join_dispatch, "{acts:?}");
        // Graph-level deadline: join inherits fork's release + 100ms.
        let j = e.running(WorkerId::new(0)).unwrap().job;
        assert_eq!(j.abs_deadline, at(100));
        assert_eq!(j.graph_release, Instant::ZERO);
    }

    #[test]
    fn accel_contention_uses_cpu_fallback_and_pip() {
        // Two tasks, both with GPU + CPU versions; one GPU.
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        let t1 = b.task_decl(TaskSpec::periodic("t1", ms(100))).unwrap();
        let t2 = b
            .task_decl(TaskSpec::periodic("t2", ms(100)).with_constrained_deadline(ms(50)))
            .unwrap();
        b.version_decl(t1, VersionSpec::new("gpu", ms(10)).with_accel(gpu))
            .unwrap();
        b.version_decl(t1, VersionSpec::new("cpu", ms(30))).unwrap();
        b.version_decl(t2, VersionSpec::new("gpu", ms(10)).with_accel(gpu))
            .unwrap();
        b.version_decl(t2, VersionSpec::new("cpu", ms(30))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let mut e = OnlineEngine::new(ts, edf_config(2)).unwrap();
        let acts = e.start(Instant::ZERO).unwrap();
        // t2 (tighter deadline) gets the GPU; t1 falls back to CPU.
        let mut gpu_user = None;
        let mut cpu_user = None;
        for a in &acts {
            if let Action::Dispatch { job, version, .. } = a {
                if version.index() == 0 {
                    gpu_user = Some(job.task);
                } else {
                    cpu_user = Some(job.task);
                }
            }
        }
        assert_eq!(gpu_user, Some(t2));
        assert_eq!(cpu_user, Some(t1));
    }

    #[test]
    fn gpu_only_task_blocks_and_boosts() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        // Low-urgency holder (long deadline), urgent GPU-only task later.
        let hold = b.task_decl(TaskSpec::periodic("hold", ms(200))).unwrap();
        let urgent = b
            .task_decl(
                TaskSpec::periodic("urgent", ms(200))
                    .with_release_offset(ms(10))
                    .with_constrained_deadline(ms(30)),
            )
            .unwrap();
        b.version_decl(hold, VersionSpec::new("gpu", ms(50)).with_accel(gpu))
            .unwrap();
        b.version_decl(urgent, VersionSpec::new("gpu", ms(5)).with_accel(gpu))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let mut e = OnlineEngine::new(ts, edf_config(2)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let acts = e.on_tick(at(10));
        // urgent is blocked on the GPU -> PIP boost of the holder.
        let boost = acts.iter().find_map(|a| match a {
            Action::Boost { priority, .. } => Some(*priority),
            _ => None,
        });
        assert_eq!(boost, Some(Priority::earliest_deadline(at(40))));
        assert_eq!(e.stats().pip_boosts, 1);
        assert_eq!(e.ready_len(), 1, "urgent stays ready");
        // Holder's effective priority is boosted.
        let holder = e.running(WorkerId::new(0)).unwrap();
        assert_eq!(
            holder.effective_priority,
            Priority::earliest_deadline(at(40))
        );
        // When the holder finishes, urgent gets the GPU.
        let hold_id = holder.job.id;
        let acts = e
            .on_job_completed(WorkerId::new(0), hold_id, at(50))
            .unwrap();
        assert!(acts.iter().any(|a| matches!(
            a,
            Action::Dispatch { job, .. } if job.task == urgent
        )));
    }

    #[test]
    fn accel_holder_not_preempted() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        let hold = b.task_decl(TaskSpec::periodic("hold", ms(200))).unwrap();
        let urgent = b
            .task_decl(
                TaskSpec::periodic("urgent", ms(200))
                    .with_release_offset(ms(10))
                    .with_constrained_deadline(ms(20)),
            )
            .unwrap();
        b.version_decl(hold, VersionSpec::new("gpu", ms(100)).with_accel(gpu))
            .unwrap();
        b.version_decl(urgent, VersionSpec::new("cpu", ms(5)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let mut e = OnlineEngine::new(ts, edf_config(1)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let acts = e.on_tick(at(10));
        // The only worker runs the GPU holder; urgent must NOT preempt it.
        assert!(
            !acts.iter().any(|a| matches!(a, Action::Preempt { .. })),
            "{acts:?}"
        );
        assert_eq!(e.ready_len(), 1);
    }

    #[test]
    fn aperiodic_activation() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let p = b.task_decl(TaskSpec::periodic("p", ms(10))).unwrap();
        let a = b.task_decl(TaskSpec::aperiodic("a")).unwrap();
        b.version_decl(p, VersionSpec::new("p", ms(1))).unwrap();
        b.version_decl(a, VersionSpec::new("a", ms(1))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let mut e = OnlineEngine::new(ts, edf_config(2)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let acts = e.activate(a, at(3)).unwrap();
        assert!(acts.iter().any(|x| matches!(
            x,
            Action::Dispatch { job, .. } if job.task == a
        )));
        // Periodic tasks cannot be activated by hand.
        assert!(e.activate(p, at(4)).is_err());
    }

    #[test]
    fn sporadic_min_interarrival_violation_counted() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let s = b.task_decl(TaskSpec::sporadic("s", ms(10))).unwrap();
        b.version_decl(s, VersionSpec::new("s", ms(1))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let cfg = Config::builder()
            .workers(1)
            .tick(ms(10))
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap();
        let mut e = OnlineEngine::new(ts, cfg).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let _ = e.activate(s, at(0)).unwrap();
        let _ = e.activate(s, at(5)).unwrap(); // violates T=10
        assert_eq!(e.stats().sporadic_violations, 1);
        let _ = e.activate(s, at(20)).unwrap();
        assert_eq!(e.stats().sporadic_violations, 1);
    }

    #[test]
    fn stop_drains() {
        let mut e = OnlineEngine::new(two_task_set(), edf_config(2)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        e.stop();
        let acts = e.on_tick(at(10));
        assert!(acts.is_empty(), "no releases after stop: {acts:?}");
        assert!(!e.is_idle());
        let r0 = e.running(WorkerId::new(0)).unwrap().job.id;
        let r1 = e.running(WorkerId::new(1)).unwrap().job.id;
        let _ = e.on_job_completed(WorkerId::new(0), r0, at(11)).unwrap();
        let _ = e.on_job_completed(WorkerId::new(1), r1, at(12)).unwrap();
        assert!(e.is_idle());
    }

    #[test]
    fn double_start_rejected_until_stop() {
        let mut e = OnlineEngine::new(two_task_set(), edf_config(1)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        assert!(matches!(e.start(at(1)), Err(Error::ScheduleRunning)));
        e.stop();
        // Multi-mode scheduling: resume after stop (§3.1).
        assert!(e.start(at(100)).is_ok());
    }

    #[test]
    fn rank_cache_invalidated_on_mode_switch() {
        // Mode policy: the cached ranking must be recomputed when the
        // execution mode changes, or the wrong version would dispatch.
        use yasmin_core::version::ModeMask;
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let t = b.task_decl(TaskSpec::periodic("enc", ms(10))).unwrap();
        b.version_decl(
            t,
            VersionSpec::new("plain", ms(1)).with_modes(ModeMask::only(ExecMode::NORMAL)),
        )
        .unwrap();
        b.version_decl(
            t,
            VersionSpec::new("secure", ms(2)).with_modes(ModeMask::only(ExecMode::new(1))),
        )
        .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let cfg = Config::builder()
            .workers(1)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .version_policy(VersionPolicy::Mode)
            .build()
            .unwrap();
        let mut e = OnlineEngine::new(ts, cfg).unwrap();
        let acts = e.start(Instant::ZERO).unwrap();
        match &acts[0] {
            Action::Dispatch { version, .. } => assert_eq!(version.index(), 0),
            other => panic!("{other:?}"),
        }
        let id = e.running(WorkerId::new(0)).unwrap().job.id;
        let _ = e.on_job_completed(WorkerId::new(0), id, at(1)).unwrap();
        // Switch mode; the next release must pick the secure version.
        e.set_mode(ExecMode::new(1));
        let acts = e.on_tick(at(10));
        match &acts[0] {
            Action::Dispatch { version, .. } => {
                assert_eq!(version.index(), 1, "cache must refresh on mode switch")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn energy_policy_tracks_battery_probe_through_cache() {
        // The rank cache must refresh when the probe's reading changes —
        // and only the Energy (and user-defined) policies pay the probe.
        use std::sync::atomic::{AtomicU32, Ordering};
        use yasmin_core::energy::{BatteryLevel, Energy};
        let level = Arc::new(AtomicU32::new(1000));
        let probe = Arc::clone(&level);
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let t = b.task_decl(TaskSpec::periodic("t", ms(10))).unwrap();
        b.version_decl(
            t,
            VersionSpec::new("cheap", ms(2))
                .with_energy(Energy::from_millijoules(5))
                .with_energy_budget(Energy::from_millijoules(5)),
        )
        .unwrap();
        b.version_decl(
            t,
            VersionSpec::new("hungry", ms(1))
                .with_energy(Energy::from_millijoules(12))
                .with_energy_budget(Energy::from_millijoules(12)),
        )
        .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let cfg = Config::builder()
            .workers(1)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .version_policy(VersionPolicy::Energy)
            .battery_source(move || {
                BatteryLevel::from_permille(probe.load(Ordering::Relaxed) as u16)
            })
            .build()
            .unwrap();
        let mut e = OnlineEngine::new(ts, cfg).unwrap();
        let acts = e.start(Instant::ZERO).unwrap();
        match &acts[0] {
            Action::Dispatch { version, .. } => {
                assert_eq!(version.index(), 1, "full battery affords hungry")
            }
            other => panic!("{other:?}"),
        }
        let id = e.running(WorkerId::new(0)).unwrap().job.id;
        let _ = e.on_job_completed(WorkerId::new(0), id, at(1)).unwrap();
        // Battery collapses; the next dispatch must degrade.
        level.store(100, Ordering::Relaxed);
        let acts = e.on_tick(at(10));
        match &acts[0] {
            Action::Dispatch { version, .. } => {
                assert_eq!(version.index(), 0, "cache must refresh on battery change")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn into_api_appends_without_clearing() {
        let mut e = OnlineEngine::new(two_task_set(), edf_config(2)).unwrap();
        let mut sink = crate::sink::ActionSink::new();
        e.start_into(Instant::ZERO, &mut sink).unwrap();
        let after_start = sink.len();
        assert_eq!(after_start, 2, "both tasks dispatch on two workers");
        // A completion appended into the same sink keeps prior actions.
        let id = e.running(WorkerId::new(0)).unwrap().job.id;
        e.on_job_completed_into(WorkerId::new(0), id, at(2), &mut sink)
            .unwrap();
        assert!(sink.len() >= after_start);
        sink.clear();
        e.on_tick_into(at(10), &mut sink);
        assert_eq!(sink.len(), 1, "task a re-releases and dispatches");
    }

    #[test]
    fn cull_missed_removes_expired_ready_jobs_on_tick() {
        // One worker, two tasks with constrained deadlines: the job that
        // loses the first dispatch sits ready past its deadline and must
        // be culled at the next tick — via ReadyQueue::remove, counted
        // in stats.culled, never dispatched.
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let winner = b
            .task_decl(TaskSpec::periodic("winner", ms(100)).with_constrained_deadline(ms(30)))
            .unwrap();
        let loser = b
            .task_decl(TaskSpec::periodic("loser", ms(100)).with_constrained_deadline(ms(40)))
            .unwrap();
        b.version_decl(winner, VersionSpec::new("w", ms(60)))
            .unwrap();
        b.version_decl(loser, VersionSpec::new("l", ms(10)))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let cfg = Config::builder()
            .workers(1)
            .tick(ms(10))
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .preemption(false)
            .cull_missed(true)
            .build()
            .unwrap();
        let mut e = OnlineEngine::new(ts, cfg).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        assert_eq!(e.running(WorkerId::new(0)).unwrap().job.task, winner);
        assert_eq!(e.ready_len(), 1, "loser queued");
        // Ticks before the loser's deadline (40ms) keep it queued.
        let _ = e.on_tick(at(30));
        assert_eq!(e.ready_len(), 1);
        assert_eq!(e.stats().culled, 0);
        // First tick past the deadline culls it.
        let _ = e.on_tick(at(50));
        assert_eq!(e.ready_len(), 0);
        assert_eq!(e.stats().culled, 1);
        // The culled job never dispatches: completing the winner leaves
        // the worker idle.
        let w = e.running(WorkerId::new(0)).unwrap().job.id;
        let acts = e.on_job_completed(WorkerId::new(0), w, at(60)).unwrap();
        assert!(acts.is_empty(), "{acts:?}");
        assert!(e.running(WorkerId::new(0)).is_none());
        assert_eq!(e.stats().dispatched, 1);
    }

    #[test]
    fn shortest_wcet_policy_picks_gpu_when_free() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        let t = b.task_decl(TaskSpec::periodic("t", ms(100))).unwrap();
        b.version_decl(t, VersionSpec::new("cpu", ms(30))).unwrap();
        b.version_decl(t, VersionSpec::new("gpu", ms(10)).with_accel(gpu))
            .unwrap();
        let ts = Arc::new(b.build().unwrap());
        let cfg = Config::builder()
            .workers(1)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .version_policy(VersionPolicy::ShortestWcet)
            .build()
            .unwrap();
        let mut e = OnlineEngine::new(ts, cfg).unwrap();
        let acts = e.start(Instant::ZERO).unwrap();
        match &acts[0] {
            Action::Dispatch { version, .. } => assert_eq!(version.index(), 1),
            other => panic!("{other:?}"),
        }
    }

    /// Non-preemptive EDF — the thread runtime's semantics, which keeps
    /// the message-boost tests about queue ordering, not preemption.
    fn edf_np_config(workers: usize) -> Config {
        Config::builder()
            .workers(workers)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .preemption(false)
            .build()
            .unwrap()
    }

    fn three_task_set() -> Arc<TaskSet> {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let a = b.task_decl(TaskSpec::periodic("a", ms(10))).unwrap();
        let c = b.task_decl(TaskSpec::periodic("c", ms(20))).unwrap();
        let r = b.task_decl(TaskSpec::periodic("r", ms(40))).unwrap();
        for (t, w) in [(a, 2), (c, 2), (r, 2)] {
            b.version_decl(t, VersionSpec::new("v", ms(w))).unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn high_post_boosts_pending_job_ahead_of_more_urgent_competitor() {
        // One worker, EDF. At start: a (deadline 10) runs, c (20) and
        // r (40) queue — c is the more urgent competitor. A high post
        // for r must re-queue r's pending job at the ceiling so it
        // dispatches ahead of c when the worker frees; after the lane
        // drains, the order reverts to plain EDF.
        let ts = three_task_set();
        let receiver = TaskId::new(2);
        let mut e = OnlineEngine::new(ts, edf_np_config(1)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let mut sink = ActionSink::new();
        e.on_high_posted_into(receiver, Priority::HIGHEST, at(1), &mut sink)
            .unwrap();
        assert!(sink.is_empty(), "no worker freed, no action yet");
        assert_eq!(e.high_lane_depth(receiver), 1);
        assert_eq!(e.active_msg_ceiling(receiver), Some(Priority::HIGHEST));
        assert_eq!(e.stats().msg_boosts, 1);

        let running = e.running(WorkerId::new(0)).unwrap().job.id;
        sink.clear();
        e.on_job_completed_into(WorkerId::new(0), running, at(2), &mut sink)
            .unwrap();
        match sink.as_slice() {
            [Action::Dispatch { job, .. }] => {
                assert_eq!(job.task, receiver, "boosted receiver dispatches first");
                assert_eq!(job.priority, Priority::HIGHEST);
            }
            other => panic!("expected one dispatch, got {other:?}"),
        }

        // Drain while the receiver runs: its slot effective priority
        // falls back to base and c wins the next free worker.
        sink.clear();
        e.on_high_drained_into(receiver, at(3), &mut sink).unwrap();
        assert_eq!(e.high_lane_depth(receiver), 0);
        assert_eq!(e.active_msg_ceiling(receiver), None);
        let receiver_job = e.running(WorkerId::new(0)).unwrap().job.id;
        sink.clear();
        e.on_job_completed_into(WorkerId::new(0), receiver_job, at(4), &mut sink)
            .unwrap();
        match sink.as_slice() {
            [Action::Dispatch { job, .. }] => assert_eq!(job.task, TaskId::new(1)),
            other => panic!("expected one dispatch, got {other:?}"),
        }
    }

    #[test]
    fn high_post_boosts_running_job_and_drain_restores_base() {
        let ts = three_task_set();
        let mut e = OnlineEngine::new(ts, edf_np_config(1)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        // a runs with its EDF base priority (deadline at 10ms).
        let base = e.running(WorkerId::new(0)).unwrap().effective_priority;
        assert_eq!(base, Priority::earliest_deadline(at(10)));
        let mut sink = ActionSink::new();
        e.on_high_posted_into(TaskId::new(0), Priority::new(7), at(1), &mut sink)
            .unwrap();
        let boosted = e.running(WorkerId::new(0)).unwrap();
        assert_eq!(boosted.effective_priority, Priority::new(7));
        assert!(
            sink.as_slice().iter().any(|a| matches!(
                a,
                Action::Boost { worker, priority, .. }
                    if *worker == WorkerId::new(0) && *priority == Priority::new(7)
            )),
            "driver is told about the boost: {:?}",
            sink.as_slice()
        );
        sink.clear();
        e.on_high_drained_into(TaskId::new(0), at(2), &mut sink)
            .unwrap();
        assert_eq!(
            e.running(WorkerId::new(0)).unwrap().effective_priority,
            base
        );
        assert!(
            sink.as_slice().iter().any(|a| matches!(
                a,
                Action::Boost { priority, .. } if *priority == base
            )),
            "release is visible too: {:?}",
            sink.as_slice()
        );
    }

    #[test]
    fn release_during_active_ceiling_inherits_it() {
        // Post the high message while no job of the receiver is pending:
        // the job released at the next tick must inherit the ceiling.
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let a = b.task_decl(TaskSpec::periodic("a", ms(40))).unwrap();
        let r = b.task_decl(TaskSpec::periodic("r", ms(40))).unwrap();
        b.version_decl(a, VersionSpec::new("v", ms(2))).unwrap();
        b.version_decl(r, VersionSpec::new("v", ms(2))).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let receiver = r;
        let mut e = OnlineEngine::new(ts, edf_np_config(2)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        // Both tasks run; complete both so the next releases are fresh.
        let mut sink = ActionSink::new();
        for w in [0, 1] {
            let id = e.running(WorkerId::new(w)).unwrap().job.id;
            e.on_job_completed_into(WorkerId::new(w), id, at(6), &mut sink)
                .unwrap();
        }
        e.on_high_posted_into(receiver, Priority::HIGHEST, at(7), &mut sink)
            .unwrap();
        assert_eq!(e.stats().msg_boosts, 0, "nothing pending or running yet");
        sink.clear();
        e.on_tick_into(at(40), &mut sink);
        let (rw, rj) = sink
            .as_slice()
            .iter()
            .find_map(|a| match a {
                Action::Dispatch { worker, job, .. } if job.task == receiver => {
                    Some((*worker, *job))
                }
                _ => None,
            })
            .expect("receiver released and dispatched at t=40");
        assert_eq!(rj.priority, Priority::HIGHEST, "release inherits ceiling");
        // Drain, finish the cycle: the next release is back to base.
        e.on_high_drained_into(receiver, at(41), &mut sink).unwrap();
        sink.clear();
        e.on_job_completed_into(rw, rj.id, at(42), &mut sink)
            .unwrap();
        let aw = if rw == WorkerId::new(0) { 1 } else { 0 };
        let aj = e.running(WorkerId::new(aw)).unwrap().job.id;
        e.on_job_completed_into(WorkerId::new(aw), aj, at(43), &mut sink)
            .unwrap();
        sink.clear();
        e.on_tick_into(at(80), &mut sink);
        let rj2 = sink
            .as_slice()
            .iter()
            .find_map(|a| match a {
                Action::Dispatch { job, .. } if job.task == receiver => Some(*job),
                _ => None,
            })
            .expect("receiver released at t=80");
        assert_eq!(rj2.priority, Priority::earliest_deadline(at(120)));
    }

    #[test]
    fn ceiling_tightens_and_holds_until_all_posts_drain() {
        let ts = three_task_set();
        let receiver = TaskId::new(2);
        let mut e = OnlineEngine::new(ts, edf_np_config(1)).unwrap();
        let _ = e.start(Instant::ZERO).unwrap();
        let mut sink = ActionSink::new();
        e.on_high_posted_into(receiver, Priority::new(9), at(1), &mut sink)
            .unwrap();
        e.on_high_posted_into(receiver, Priority::new(3), at(1), &mut sink)
            .unwrap();
        // A less urgent later post does not loosen the ceiling.
        e.on_high_posted_into(receiver, Priority::new(100), at(1), &mut sink)
            .unwrap();
        assert_eq!(e.high_lane_depth(receiver), 3);
        assert_eq!(e.active_msg_ceiling(receiver), Some(Priority::new(3)));
        e.on_high_drained_into(receiver, at(2), &mut sink).unwrap();
        e.on_high_drained_into(receiver, at(2), &mut sink).unwrap();
        assert_eq!(e.active_msg_ceiling(receiver), Some(Priority::new(3)));
        e.on_high_drained_into(receiver, at(2), &mut sink).unwrap();
        assert_eq!(e.active_msg_ceiling(receiver), None);
        assert_eq!(e.high_lane_depth(receiver), 0);
    }

    #[test]
    fn post_for_unknown_task_is_rejected() {
        let mut e = OnlineEngine::new(two_task_set(), edf_config(1)).unwrap();
        let mut sink = ActionSink::new();
        assert!(matches!(
            e.on_high_posted_into(TaskId::new(9), Priority::HIGHEST, at(0), &mut sink),
            Err(Error::UnknownTask(_))
        ));
        assert!(matches!(
            e.on_high_drained_into(TaskId::new(9), at(0), &mut sink),
            Err(Error::UnknownTask(_))
        ));
    }
}
