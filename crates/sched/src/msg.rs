//! Typed priority message plane between tasks — **the channel-priority
//! spec**.
//!
//! The paper frames tasks as communicating real-time components; this
//! module supplies the application-facing data plane over the static
//! channel descriptions in [`yasmin_core::channel`]. It follows the
//! prioritized-channel model of Paikan et al. (channel prioritization in
//! a publish-subscribe architecture): every typed channel is a pair of
//! wait-free SPSC lanes from `yasmin_sync::spsc` —
//!
//! * a **normal lane** of the declared capacity, FIFO, and
//! * an optional **high-priority lane**, always drained first by the
//!   receiver.
//!
//! ## Lane layout
//!
//! A [`Sender<T>`]/[`Receiver<T>`] pair owns both lanes behind
//! uncontended mutexes (task bodies are shared `Fn` closures, so the
//! endpoints take `&self`; the SPSC discipline — one producing task, one
//! consuming task — means the locks never block in a well-formed
//! application). All ring storage is allocated at construction; the
//! steady-state send/receive path performs **no heap allocation**.
//!
//! ## Priority-boost protocol
//!
//! A channel may declare a *ceiling* priority (smaller = more urgent)
//! via [`ChannelSpec::with_high_lane`] or [`ChannelBuilder::high_lane`].
//! The protocol then makes message priority a **schedulable quantity**:
//!
//! 1. [`Sender::send_high`] posts to the high lane and emits
//!    [`MsgEvent::HighPosted`] through the channel's notify hook;
//! 2. the driver forwards the event to
//!    [`OnlineEngine::on_high_posted_into`]: the receiving task's
//!    pending job is re-queued at `min(base, ceiling)`, a running job
//!    has its effective priority raised (the same mechanism as
//!    accelerator PIP), and jobs released while the lane is non-empty
//!    inherit the ceiling at release;
//! 3. each high-lane pop by [`Receiver::recv`] emits
//!    [`MsgEvent::HighDrained`]; when posts and drains balance (the lane
//!    is empty again) [`OnlineEngine::on_high_drained_into`] restores
//!    base priorities.
//!
//! The ceiling can only tighten while the lane stays non-empty: with
//! several prioritized channels into one task, the task holds the most
//! urgent posted ceiling until *all* high lanes drain. A high lane
//! without a ceiling still orders delivery (drained first) but is
//! invisible to the scheduler.
//!
//! ## Cross-shard routing
//!
//! In the sharded runtime the notify events ride the same per-peer
//! mailbox lanes as `CrossActivate` tokens: the sending worker hands
//! the event to its own shard's scheduler, which applies it locally
//! when it owns the receiver and otherwise forwards it as a
//! [`crate::shard::ShardCmd::MsgHigh`]/[`crate::shard::ShardCmd::MsgDrained`]
//! to the owning shard. The simulator applies the same commands at
//! event boundaries, so delivery is deterministic and trace-identical
//! across single-owner and sharded runs.
//!
//! ## Declaring channels
//!
//! * **Edge-bound**: [`channel`] builds endpoints for a DAG channel
//!   declared with `TaskSetBuilder::channel_decl` /
//!   `channel_decl_prioritized`, validating the element type's size and
//!   the capacity against the [`ChannelSpec`] at build time.
//! * **Standalone**: [`ChannelBuilder`] declares a channel outside the
//!   task graph (no precedence edge, no token firing) — only the
//!   receiving task must be named, so control planes can cut across the
//!   DAG.

use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use yasmin_core::channel::ChannelSpec;
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{ChannelId, TaskId};
use yasmin_core::priority::Priority;
use yasmin_sync::spsc::{self, Consumer, Producer};

#[cfg(doc)]
use crate::engine::OnlineEngine;

/// A scheduler-visible message-plane event, emitted by the endpoints
/// through the channel's notify hook (see the module docs for the full
/// protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgEvent {
    /// A message entered the high lane of a channel with a declared
    /// ceiling: the receiving task should inherit `ceiling` until the
    /// lane drains.
    HighPosted {
        /// The receiving task.
        dst: TaskId,
        /// The channel's declared ceiling (smaller = more urgent).
        ceiling: Priority,
    },
    /// One high-lane message was consumed; posts and drains balance
    /// when the lane is empty.
    HighDrained {
        /// The receiving task.
        dst: TaskId,
    },
}

/// The hook a driver attaches to observe [`MsgEvent`]s. Invoked inline
/// on the sending/receiving thread, so it must be cheap and must not
/// allocate on the steady path.
pub type MsgNotify = Arc<dyn Fn(MsgEvent) + Send + Sync>;

/// Send failed: the target lane is full. Carries the rejected value
/// back (wait-free channels never block).
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("message lane full")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// State shared by both endpoints of one channel: identity, the
/// declared ceiling, and the driver's notify hook.
struct LaneShared {
    /// The bound DAG channel, `None` for standalone channels.
    channel: Option<ChannelId>,
    /// The receiving task (boost target).
    dst: TaskId,
    /// Declared ceiling; `None` = the high lane (if any) is invisible
    /// to the scheduler.
    ceiling: Option<Priority>,
    /// Driver hook, set once at runtime build; events before a hook is
    /// attached are dropped (setup phase).
    notify: OnceLock<MsgNotify>,
}

impl std::fmt::Debug for LaneShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LaneShared")
            .field("channel", &self.channel)
            .field("dst", &self.dst)
            .field("ceiling", &self.ceiling)
            .field("notify", &self.notify.get().map(|_| "<hook>"))
            .finish()
    }
}

impl LaneShared {
    #[inline]
    fn emit(&self, ev: MsgEvent) {
        if let Some(f) = self.notify.get() {
            f(ev);
        }
    }
}

/// A cloneable, type-erased handle to one channel's shared state — what
/// runtime builders keep to wire the notify hook and route boosts
/// without knowing the element type.
#[derive(Debug, Clone)]
pub struct NotifyHandle {
    shared: Arc<LaneShared>,
}

impl NotifyHandle {
    /// The receiving task of the channel.
    #[must_use]
    pub fn dst(&self) -> TaskId {
        self.shared.dst
    }

    /// The bound DAG channel, `None` for standalone channels.
    #[must_use]
    pub fn channel(&self) -> Option<ChannelId> {
        self.shared.channel
    }

    /// The declared ceiling, `None` when the channel is invisible to
    /// the scheduler.
    #[must_use]
    pub fn ceiling(&self) -> Option<Priority> {
        self.shared.ceiling
    }

    /// Attaches the driver hook. Returns `false` (and leaves the
    /// existing hook) if one was already set.
    pub fn set_notify(&self, f: MsgNotify) -> bool {
        self.shared.notify.set(f).is_ok()
    }
}

/// The producing endpoint of a typed channel (see the module docs).
///
/// `&self` methods: the endpoint is captured by a shared task-body
/// closure; the internal mutexes are uncontended under the SPSC
/// discipline.
#[derive(Debug)]
pub struct Sender<T: Send> {
    normal: Mutex<Producer<T>>,
    high: Option<Mutex<Producer<T>>>,
    shared: Arc<LaneShared>,
}

impl<T: Send> Sender<T> {
    /// Sends on the normal lane.
    ///
    /// # Errors
    ///
    /// [`SendError`] with the value when the lane is full.
    pub fn send(&self, value: T) -> std::result::Result<(), SendError<T>> {
        self.normal
            .lock()
            .push(value)
            .map_err(|full| SendError(full.0))
    }

    /// Sends on the high-priority lane and, when the channel declares a
    /// ceiling, notifies the scheduler ([`MsgEvent::HighPosted`]).
    ///
    /// # Errors
    ///
    /// [`SendError`] with the value when the high lane is full or the
    /// channel declared no high lane.
    pub fn send_high(&self, value: T) -> std::result::Result<(), SendError<T>> {
        let Some(high) = &self.high else {
            return Err(SendError(value));
        };
        // Post the boost event *before* the value becomes visible: the
        // notify path and the receiver's drain events share one FIFO
        // command stream per channel, so emitting first guarantees the
        // scheduler never sees a drain overtake its post (the receiver
        // can only pop — and notify — after the push below).
        if let Some(ceiling) = self.shared.ceiling {
            self.shared.emit(MsgEvent::HighPosted {
                dst: self.shared.dst,
                ceiling,
            });
        }
        match high.lock().push(value) {
            Ok(()) => Ok(()),
            Err(full) => {
                // Nothing was delivered: balance the speculative post so
                // the boost does not stick.
                if self.shared.ceiling.is_some() {
                    self.shared.emit(MsgEvent::HighDrained {
                        dst: self.shared.dst,
                    });
                }
                Err(SendError(full.0))
            }
        }
    }

    /// Buffered messages on the normal lane.
    #[must_use]
    pub fn len(&self) -> usize {
        self.normal.lock().len()
    }

    /// `true` when the normal lane is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.normal.lock().is_empty()
    }

    /// The channel's shared-state handle (for driver wiring).
    #[must_use]
    pub fn notify_handle(&self) -> NotifyHandle {
        NotifyHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// The consuming endpoint of a typed channel (see the module docs).
#[derive(Debug)]
pub struct Receiver<T: Send> {
    normal: Mutex<Consumer<T>>,
    high: Option<Mutex<Consumer<T>>>,
    shared: Arc<LaneShared>,
}

impl<T: Send> Receiver<T> {
    /// Receives the next message: the high lane is always drained
    /// first. Popping a high message on a ceiling channel notifies the
    /// scheduler ([`MsgEvent::HighDrained`]).
    pub fn recv(&self) -> Option<T> {
        if let Some(v) = self.recv_high() {
            return Some(v);
        }
        self.normal.lock().pop()
    }

    /// Receives from the high lane only.
    pub fn recv_high(&self) -> Option<T> {
        let high = self.high.as_ref()?;
        let v = high.lock().pop()?;
        if self.shared.ceiling.is_some() {
            self.shared.emit(MsgEvent::HighDrained {
                dst: self.shared.dst,
            });
        }
        Some(v)
    }

    /// Buffered messages across both lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.high.as_ref().map_or(0, |h| h.lock().len()) + self.normal.lock().len()
    }

    /// `true` when both lanes are empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Buffered messages on the high lane.
    #[must_use]
    pub fn high_len(&self) -> usize {
        self.high.as_ref().map_or(0, |h| h.lock().len())
    }

    /// The channel's shared-state handle (for driver wiring).
    #[must_use]
    pub fn notify_handle(&self) -> NotifyHandle {
        NotifyHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

fn make_endpoints<T: Send>(
    channel: Option<ChannelId>,
    dst: TaskId,
    capacity: usize,
    high_capacity: usize,
    ceiling: Option<Priority>,
) -> (Sender<T>, Receiver<T>) {
    let (ntx, nrx) = spsc::channel::<T>(capacity);
    let (high_tx, high_rx) = if high_capacity > 0 {
        let (tx, rx) = spsc::channel::<T>(high_capacity);
        (Some(Mutex::new(tx)), Some(Mutex::new(rx)))
    } else {
        (None, None)
    };
    let shared = Arc::new(LaneShared {
        channel,
        dst,
        ceiling,
        notify: OnceLock::new(),
    });
    (
        Sender {
            normal: Mutex::new(ntx),
            high: high_tx,
            shared: Arc::clone(&shared),
        },
        Receiver {
            normal: Mutex::new(nrx),
            high: high_rx,
            shared,
        },
    )
}

/// Validates `T` against a channel's static description: the element
/// type must fit the declared element size, and the channel must buffer
/// data (capacity > 0).
///
/// # Errors
///
/// [`Error::InvalidConfig`] naming the violated bound.
fn validate_spec<T>(spec: &ChannelSpec) -> Result<()> {
    if spec.is_precedence_only() {
        return Err(Error::InvalidConfig(format!(
            "channel {} ({}) is precedence-only (capacity 0): it carries no data",
            spec.id(),
            spec.name()
        )));
    }
    let have = std::mem::size_of::<T>();
    if have > spec.elem_bytes() {
        return Err(Error::InvalidConfig(format!(
            "element type of {} bytes exceeds the {} bytes declared for channel {} ({})",
            have,
            spec.elem_bytes(),
            spec.id(),
            spec.name()
        )));
    }
    Ok(())
}

/// Builds the typed endpoints for a DAG channel of `taskset`: capacity,
/// element size and the high lane all come from the [`ChannelSpec`]
/// declared on the builder, and the receiving task is the channel's
/// connected consumer.
///
/// # Errors
///
/// [`Error::UnknownChannel`] for an undeclared id,
/// [`Error::ChannelNotConnected`] when no edge uses the channel (so no
/// receiver exists), or [`Error::InvalidConfig`] when `T` does not fit
/// the declared element size or the channel is precedence-only.
pub fn channel<T: Send>(taskset: &TaskSet, id: ChannelId) -> Result<(Sender<T>, Receiver<T>)> {
    let spec = taskset
        .channels()
        .get(id.index())
        .ok_or(Error::UnknownChannel(id))?;
    validate_spec::<T>(spec)?;
    let edge = taskset
        .edges()
        .iter()
        .find(|e| e.channel == id)
        .ok_or(Error::ChannelNotConnected(id))?;
    Ok(make_endpoints(
        Some(id),
        edge.dst,
        spec.capacity(),
        spec.high_capacity(),
        spec.high_ceiling(),
    ))
}

/// Declares a **standalone** typed channel — one that exists outside
/// the task graph (no precedence edge, no token firing), e.g. a control
/// plane cutting across the DAG. Only the receiving task is named; the
/// element size is implied by `T`.
///
/// ```
/// use yasmin_core::ids::TaskId;
/// use yasmin_core::priority::Priority;
/// use yasmin_sched::msg::ChannelBuilder;
///
/// let (tx, rx) = ChannelBuilder::standalone("ctrl", TaskId::new(1))
///     .capacity(8)
///     .high_lane(2, Priority::new(0))
///     .build::<u64>()
///     .unwrap();
/// tx.send_high(7).unwrap();
/// assert_eq!(rx.recv(), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct ChannelBuilder {
    name: String,
    dst: TaskId,
    capacity: usize,
    high_capacity: usize,
    ceiling: Option<Priority>,
}

impl ChannelBuilder {
    /// Starts a standalone channel named `name` delivering to `dst`.
    #[must_use]
    pub fn standalone(name: impl Into<String>, dst: TaskId) -> Self {
        ChannelBuilder {
            name: name.into(),
            dst,
            capacity: 16,
            high_capacity: 0,
            ceiling: None,
        }
    }

    /// Sets the normal-lane capacity (default 16; must be non-zero).
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Adds a high lane of `capacity` slots whose non-empty state
    /// boosts the receiver to `ceiling` (see the module docs).
    #[must_use]
    pub fn high_lane(mut self, capacity: usize, ceiling: Priority) -> Self {
        self.high_capacity = capacity;
        self.ceiling = Some(ceiling);
        self
    }

    /// Builds the typed endpoints.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for a zero normal-lane capacity.
    pub fn build<T: Send>(self) -> Result<(Sender<T>, Receiver<T>)> {
        if self.capacity == 0 {
            return Err(Error::InvalidConfig(format!(
                "standalone channel {} needs a non-zero capacity",
                self.name
            )));
        }
        Ok(make_endpoints(
            None,
            self.dst,
            self.capacity,
            self.high_capacity,
            self.ceiling,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::time::Duration;
    use yasmin_core::version::VersionSpec;

    fn pipeline_set(high: bool) -> (TaskSet, TaskId, TaskId, ChannelId) {
        let mut b = TaskSetBuilder::new();
        let src = b
            .task_decl(TaskSpec::periodic("src", Duration::from_millis(10)))
            .unwrap();
        let dst = b.task_decl(TaskSpec::graph_node("dst")).unwrap();
        for t in [src, dst] {
            b.version_decl(t, VersionSpec::new("v", Duration::from_micros(10)))
                .unwrap();
        }
        let c = if high {
            b.channel_decl_prioritized("c", 4, 8, 2, Priority::new(1))
        } else {
            b.channel_decl("c", 4, 8)
        };
        b.channel_connect(src, dst, c).unwrap();
        (b.build().unwrap(), src, dst, c)
    }

    #[test]
    fn normal_lane_is_fifo_and_bounded() {
        let (ts, _, _, c) = pipeline_set(false);
        let (tx, rx) = channel::<u64>(&ts, c).unwrap();
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(tx.send(4), Err(SendError(4)));
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn high_lane_is_drained_first() {
        let (ts, _, _, c) = pipeline_set(true);
        let (tx, rx) = channel::<u64>(&ts, c).unwrap();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        tx.send_high(99).unwrap();
        assert_eq!(rx.high_len(), 1);
        assert_eq!(rx.recv(), Some(99));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
    }

    #[test]
    fn send_high_without_high_lane_is_rejected() {
        let (ts, _, _, c) = pipeline_set(false);
        let (tx, _rx) = channel::<u64>(&ts, c).unwrap();
        assert_eq!(tx.send_high(1), Err(SendError(1)));
    }

    #[test]
    fn ceiling_channel_emits_post_and_drain_events() {
        let (ts, _, dst, c) = pipeline_set(true);
        let (tx, rx) = channel::<u64>(&ts, c).unwrap();
        let posted = Arc::new(AtomicUsize::new(0));
        let drained = Arc::new(AtomicUsize::new(0));
        let (p, d) = (Arc::clone(&posted), Arc::clone(&drained));
        assert!(tx.notify_handle().set_notify(Arc::new(move |ev| match ev {
            MsgEvent::HighPosted { dst: t, ceiling } => {
                assert_eq!(t, dst);
                assert_eq!(ceiling, Priority::new(1));
                p.fetch_add(1, Ordering::SeqCst);
            }
            MsgEvent::HighDrained { dst: t } => {
                assert_eq!(t, dst);
                d.fetch_add(1, Ordering::SeqCst);
            }
        })));
        // A second hook is refused.
        assert!(!rx.notify_handle().set_notify(Arc::new(|_| {})));
        tx.send(7).unwrap();
        assert_eq!(posted.load(Ordering::SeqCst), 0); // normal lane: no event
        tx.send_high(8).unwrap();
        tx.send_high(9).unwrap();
        assert_eq!(posted.load(Ordering::SeqCst), 2);
        assert_eq!(rx.recv(), Some(8));
        assert_eq!(rx.recv(), Some(9));
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(drained.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn build_time_validation() {
        let (ts, _, _, c) = pipeline_set(false);
        // 16-byte element vs the declared 8.
        assert!(matches!(
            channel::<[u64; 2]>(&ts, c),
            Err(Error::InvalidConfig(_))
        ));
        assert!(matches!(
            channel::<u64>(&ts, ChannelId::new(9)),
            Err(Error::UnknownChannel(_))
        ));
        // Precedence-only channels carry no data. An unconnected channel
        // cannot come out of build() (it rejects those), so that arm is
        // covered via a hand-built spec path in `validate_spec`.
        let mut b = TaskSetBuilder::new();
        let a = b
            .task_decl(TaskSpec::periodic("a", Duration::from_millis(1)))
            .unwrap();
        let z = b.task_decl(TaskSpec::graph_node("z")).unwrap();
        for t in [a, z] {
            b.version_decl(t, VersionSpec::new("v", Duration::from_micros(1)))
                .unwrap();
        }
        let pc = b.channel_decl("p", 0, 0);
        b.channel_connect(a, z, pc).unwrap();
        let ts2 = b.build().unwrap();
        assert!(matches!(
            channel::<u64>(&ts2, pc),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn standalone_builder_validates_and_delivers() {
        assert!(ChannelBuilder::standalone("bad", TaskId::new(0))
            .capacity(0)
            .build::<u8>()
            .is_err());
        let (tx, rx) = ChannelBuilder::standalone("ctrl", TaskId::new(3))
            .capacity(2)
            .high_lane(1, Priority::new(0))
            .build::<&'static str>()
            .unwrap();
        assert_eq!(tx.notify_handle().dst(), TaskId::new(3));
        assert_eq!(tx.notify_handle().ceiling(), Some(Priority::new(0)));
        assert_eq!(rx.notify_handle().channel(), None);
        tx.send("data").unwrap();
        tx.send_high("ctrl").unwrap();
        assert_eq!(rx.recv(), Some("ctrl"));
        assert_eq!(rx.recv(), Some("data"));
        assert!(rx.is_empty());
    }
}
