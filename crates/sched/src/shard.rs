//! Per-worker engine shards (partitioned mapping, PR 3; cross-shard
//! activation routing and work stealing, PR 5).
//!
//! Under [`MappingScheme::Partitioned`] every worker already has its own
//! ready queue (Fig. 1b) — yet the classic [`OnlineEngine`] funnels all
//! of them through one owner, capping the system at a single scheduler
//! thread. An [`EngineShard`] is the slice of the engine belonging to
//! exactly one worker: its own [`crate::ReadyQueue`], running slot, rank
//! cache and scratch buffers, with **zero mutable state shared between
//! shards** (the task set is shared immutably through an `Arc`). One
//! scheduler thread per core can then drive its shard independently,
//! fed through the lock-free command mailbox in `yasmin-sync`.
//!
//! ## What may cross shards, and how
//!
//! * **DAG edges** may span workers. Every edge's activation-token
//!   state is owned by the shard owning the edge's *destination* task;
//!   a completion whose out-edge points at a foreign destination lands
//!   in the shard's **outbox** as a
//!   [`crate::engine::RemoteActivation`], which the driver drains
//!   ([`EngineShard::drain_outbox_into`]) and routes to the owning
//!   shard's mailbox as a [`ShardCmd::CrossActivate`]. Because only the
//!   destination's owner ever touches an edge's tokens, two shards
//!   never race on them — ownership, not exclusion.
//! * **Ready jobs** may migrate once, via work stealing: an idle shard
//!   probes a victim ([`EngineShard::try_steal`], an O(1) shared-ref
//!   peek through the index-tracked queue), the victim detaches the
//!   hinted job ([`EngineShard::release_stolen`], an O(log n)
//!   [`crate::ReadyQueue::remove`]) and the thief adopts it
//!   ([`EngineShard::adopt_stolen`]), running it on its own worker with
//!   the thief's global [`WorkerId`] in every action. A stolen job
//!   completes on the thief; any successors it fires are routed by
//!   destination ownership exactly as above, so stealing composes with
//!   cross-shard edges.
//!
//! ## Batch steals (PR 10)
//!
//! One request/grant round-trip may move up to
//! [`crate::MAX_STEAL_BATCH`] jobs instead of one. The protocol is the
//! single steal's, widened:
//!
//! 1. The thief asks for `k` jobs (sized from the load gap on the
//!    `yasmin_sync::steal::LoadBoard`); the victim's driver collects up
//!    to `k` hints with [`EngineShard::try_steal_batch`] — a
//!    **non-mutating ordered scan** of the ready queue
//!    ([`crate::ReadyQueue::scan_in_order`]) that stops at the first
//!    job in key order that cannot migrate, so a thief never skips
//!    more-urgent local-only work to take less-urgent jobs behind it.
//! 2. The victim detaches all still-fresh hinted jobs **atomically with
//!    respect to its own scheduling** — the driver owns the shard, so
//!    no dispatch can interleave — via
//!    [`EngineShard::release_stolen_batch`], which packs them into a
//!    `Copy` [`JobBatch`] that rides a peer lane by value. Stale hints
//!    are skipped, never errors.
//! 3. One [`ShardCmd::StolenBatch`] ack lands the whole batch on the
//!    thief, which adopts and runs **one dispatch round for all of
//!    them** ([`EngineShard::adopt_stolen_batch`]).
//!
//! The **migrate-at-most-once** invariant is enforced on both sides:
//! the victim's scan refuses jobs whose task is not homed on the
//! victim's own worker (i.e. jobs it previously adopted from someone
//! else), and the thief's adopt rejects any batch containing a job the
//! thief's shard already owns. A job therefore moves shards at most
//! once in its lifetime, and tenant-budget charging stays what PR 8
//! fixed: the charge lands on the **thief's** replica at dispatch.
//!
//! ## What still cannot cross shards, and why
//!
//! * **Accelerator bindings.** [`EngineShard::build_all`] rejects a
//!   task set whose accelerator is referenced from tasks of more than
//!   one worker, and the steal path refuses to migrate any job of a
//!   task with an accelerator-bound version
//!   ([`EngineShard::try_steal`] returns no hint for them). Each shard
//!   arbitrates its accelerators locally — holders, PIP boosts, free
//!   lists — with no cross-shard view; migrating an accelerator user
//!   would let two shards grant the same device concurrently.
//! * **Worker slots.** A shard dispatches onto exactly its own worker;
//!   stealing moves the *job* to the thief's shard rather than letting
//!   a shard dispatch onto a foreign worker, so the "one owner per
//!   running slot" invariant survives.
//!
//! The remaining contract, enforced by [`EngineShard::build_all`]: the
//! configuration opts in via `Config::sharded_dispatch` (which itself
//! requires partitioned mapping), every task carries a worker
//! assignment, and accelerators stay within one worker (above).
//!
//! Job ids are stamped with the shard's worker index in their high bits,
//! so ids stay unique across shards numbering concurrently — and stay
//! meaningful when a job migrates to a thief; per-task sequence numbers
//! (`Job::seq`) are identical to the single-owner engine's, which is
//! what trace cross-checks compare on.

use crate::engine::{EngineStats, OnlineEngine, RemoteActivation, RunningJob, StealHint};
use crate::job::Job;
use crate::server::{ReservationServer, TenantBudget};
use crate::sink::ActionSink;
use std::sync::Arc;
use yasmin_core::config::{Config, MappingScheme};
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{JobId, TaskId, TenantId, WorkerId};
use yasmin_core::priority::Priority;
use yasmin_core::time::{Duration, Instant};
use yasmin_core::version::ExecMode;

/// A command fed to an [`EngineShard`] by its mailbox producers.
///
/// Each variant carries the (driver-supplied) time it takes effect, so a
/// shard owner can drain several producers and process commands in a
/// deterministic time order (see `yasmin_sim::par` for the protocol
/// loop that exploits this, and the sharded runtime in `yasmin-rt` for
/// the free-running equivalent).
///
/// Commands travel three kinds of mailbox lanes: the *worker* lane
/// (completions), the *control* lane (ticks, stop, admission) and
/// *peer* lanes (cross-shard tokens and steal traffic). The admission
/// variants ([`ShardCmd::AdmitTasks`] / [`ShardCmd::CommitTenant`] /
/// [`ShardCmd::RetireTenant`]) are control-lane commands: rare,
/// allocation-tolerant, and ordered with the ticks around them.
///
/// Not `Copy`: [`ShardCmd::AdmitTasks`] carries the merged task set by
/// `Arc`, which every shard must adopt *by reference* (the whole point
/// of splicing is that shards share one immutable merged set).
// StolenBatch carries its jobs inline in the fixed-size `JobBatch`
// rather than boxing them: the command rides preallocated mailbox
// lanes, and a `Box` would put an allocation + free on the steal hot
// path that `tests/zero_alloc.rs` scenario 13 forbids. The widened
// enum only grows those preallocated slots.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ShardCmd {
    /// Explicit activation of a sporadic/aperiodic task owned by the
    /// shard (the paper's `yas_task_activate`).
    Activate {
        /// The task to activate.
        task: TaskId,
        /// Activation time.
        at: Instant,
    },
    /// A worker finished a job the shard dispatched.
    JobCompleted {
        /// The worker that ran the job (must be the shard's worker).
        worker: WorkerId,
        /// The completed job.
        job: JobId,
        /// Completion time.
        at: Instant,
    },
    /// A worker's job body failed (panicked); the shard retires the job
    /// without firing successors unless the task's overrun policy is
    /// `LogOnly` (see [`OnlineEngine::on_job_failed_into`]).
    JobFailed {
        /// The worker that ran the job (must be the shard's worker).
        worker: WorkerId,
        /// The failed job.
        job: JobId,
        /// Failure time.
        at: Instant,
    },
    /// A scheduler-thread tick: release periodic jobs due by `at`.
    Tick {
        /// The tick instant.
        at: Instant,
    },
    /// A DAG activation token routed from a foreign shard: a
    /// predecessor on another worker completed and this shard owns the
    /// edge's destination (see [`EngineShard::drain_outbox_into`]).
    CrossActivate {
        /// Index of the edge in the task set's edge list.
        edge: u32,
        /// Graph release carried by the token (join semantics).
        graph_release: Instant,
        /// The predecessor's completion time.
        at: Instant,
    },
    /// A high-priority message was posted to a channel whose receiving
    /// task this shard owns (see [`yasmin_sched::msg`](crate::msg)).
    /// Routed like [`ShardCmd::CrossActivate`] when the sender runs on
    /// a foreign shard: the sender's shard forwards it over the
    /// per-peer lane to the owner, which applies
    /// [`OnlineEngine::on_high_posted_into`].
    MsgHigh {
        /// The receiving task (owned by this shard).
        dst: TaskId,
        /// The channel's declared priority ceiling.
        ceiling: Priority,
        /// Post time.
        at: Instant,
    },
    /// A high-priority message was consumed from a channel whose
    /// receiving task this shard owns; applies
    /// [`OnlineEngine::on_high_drained_into`], releasing the boost once
    /// the last outstanding high post drains.
    MsgDrained {
        /// The receiving task (owned by this shard).
        dst: TaskId,
        /// Drain time.
        at: Instant,
    },
    /// An idle thief shard asks this shard for a ready job. Drivers
    /// answer it themselves (via [`EngineShard::try_steal`] /
    /// [`EngineShard::release_stolen`] and a [`ShardCmd::Stolen`] or
    /// [`ShardCmd::StealDeny`] reply) — it is the one command
    /// [`EngineShard::process_into`] rejects, because a reply needs the
    /// driver's reverse lane.
    StealRequest {
        /// The requesting shard's worker.
        thief: WorkerId,
        /// Request time.
        at: Instant,
    },
    /// A victim's grant: the detached ready job for the thief to adopt.
    Stolen {
        /// The stolen job (already removed from the victim's queue).
        job: Job,
        /// Grant time.
        at: Instant,
    },
    /// A victim's batch grant: up to [`crate::MAX_STEAL_BATCH`] detached
    /// ready jobs in one ack, most urgent first (see the module docs on
    /// batch steals). The thief adopts them all with **one** dispatch
    /// round ([`EngineShard::adopt_stolen_batch`]).
    StolenBatch {
        /// The stolen jobs (already removed from the victim's queue).
        jobs: crate::job::JobBatch,
        /// Grant time.
        at: Instant,
    },
    /// A victim's refusal (nothing stealable); the thief may re-probe.
    StealDeny {
        /// Refusal time.
        at: Instant,
    },
    /// Phase one of a two-phase tenant admission: adopt the merged task
    /// set produced by `yasmin_sched::admission` with the new tenant's
    /// releases still **disarmed** (see
    /// [`OnlineEngine::splice_taskset`]). The driver broadcasts this to
    /// every shard and must wait for all of them to apply it before
    /// sending [`ShardCmd::CommitTenant`] — otherwise a committed
    /// shard could complete a tenant job and route a cross-shard token
    /// to a shard that has never heard of the edge.
    AdmitTasks {
        /// The merged (live + tenant) task set, shared across shards.
        taskset: Arc<TaskSet>,
        /// The tenant's budget; each shard instantiates its own
        /// [`ReservationServer`] replica anchored at `at`, so the
        /// budget is a per-worker guarantee under sharding.
        budget: Option<TenantBudget>,
        /// Admission time (anchors budget replenishment).
        at: Instant,
    },
    /// Phase two of a tenant admission: arm the tenant's periodic
    /// releases at `at` (see [`OnlineEngine::commit_tenant_into`]).
    /// Safe to send only after every shard applied the matching
    /// [`ShardCmd::AdmitTasks`].
    CommitTenant {
        /// The tenant assigned by the splice.
        tenant: TenantId,
        /// Commit instant — the tenant's release origin.
        at: Instant,
    },
    /// Quiesce a tenant: disarm future releases, cull its ready jobs,
    /// drop its pending DAG tokens; in-flight jobs finish but fire no
    /// successors (see [`OnlineEngine::retire_tenant_into`]). Racing
    /// cross-shard tokens for a retired tenant are discarded silently,
    /// so shards may retire in any order.
    RetireTenant {
        /// The tenant to retire (tenant 0 is refused).
        tenant: TenantId,
        /// Retirement time.
        at: Instant,
    },
    /// Stop releasing periodic jobs; in-flight work drains.
    Stop,
}

impl ShardCmd {
    /// The simulated/driver time the command takes effect, if it
    /// carries one (`Stop` is timeless).
    #[must_use]
    pub fn at(&self) -> Option<Instant> {
        match *self {
            ShardCmd::Activate { at, .. }
            | ShardCmd::JobCompleted { at, .. }
            | ShardCmd::JobFailed { at, .. }
            | ShardCmd::Tick { at }
            | ShardCmd::CrossActivate { at, .. }
            | ShardCmd::MsgHigh { at, .. }
            | ShardCmd::MsgDrained { at, .. }
            | ShardCmd::StealRequest { at, .. }
            | ShardCmd::Stolen { at, .. }
            | ShardCmd::StolenBatch { at, .. }
            | ShardCmd::StealDeny { at }
            | ShardCmd::AdmitTasks { at, .. }
            | ShardCmd::CommitTenant { at, .. }
            | ShardCmd::RetireTenant { at, .. } => Some(at),
            ShardCmd::Stop => None,
        }
    }
}

/// The independent slice of the scheduling engine owned by one worker.
///
/// Construction goes through [`EngineShard::build_all`], which validates
/// the sharding contract for the whole task set. All scheduling entry
/// points mirror [`OnlineEngine`]'s zero-allocation `*_into` API and
/// report the shard's **global** [`WorkerId`] in every action.
#[derive(Debug)]
pub struct EngineShard {
    engine: OnlineEngine,
    worker: WorkerId,
}

/// Checks the sharding contract for `taskset` under `config`; see the
/// module docs. Cross-shard DAG edges are **accepted** (their tokens
/// are owned by the destination's shard and routed through the
/// outbox/mailbox); cross-shard accelerator bindings are still
/// rejected, because each shard arbitrates its accelerators with no
/// view of foreign holders.
///
/// # Errors
///
/// [`Error::InvalidConfig`] naming the violated rule; partition errors
/// ([`Error::MissingPartition`] / [`Error::UnknownWorker`]) as in
/// [`OnlineEngine::new`].
pub fn validate_sharding(taskset: &TaskSet, config: &Config) -> Result<()> {
    if !config.sharded_dispatch() {
        return Err(Error::InvalidConfig(
            "enable Config::sharded_dispatch to build engine shards".into(),
        ));
    }
    debug_assert_eq!(config.mapping(), MappingScheme::Partitioned);
    let assigned = |t: TaskId| -> Result<WorkerId> {
        match taskset.tasks()[t.index()].spec().assigned_worker() {
            None => Err(Error::MissingPartition(t)),
            Some(w) if w.index() >= config.workers() => Err(Error::UnknownWorker(w)),
            Some(w) => Ok(w),
        }
    };
    for e in taskset.edges() {
        // Both endpoints must be assigned (and in range); the edge
        // itself may cross shards.
        let _ = (assigned(e.src)?, assigned(e.dst)?);
    }
    let mut accel_owner = vec![None; taskset.accels().len()];
    for t in taskset.tasks() {
        let w = assigned(t.id())?;
        for v in t.versions() {
            if let Some(a) = v.accel() {
                match accel_owner[a.index()] {
                    None => accel_owner[a.index()] = Some(w),
                    Some(prev) if prev == w => {}
                    Some(prev) => {
                        return Err(Error::InvalidConfig(format!(
                            "accelerator {a} is used from workers {prev} and {w}: \
                             shards arbitrate accelerators independently"
                        )));
                    }
                }
            }
        }
    }
    Ok(())
}

impl EngineShard {
    /// Builds one shard per worker, validating the sharding contract
    /// once for the whole set. The returned vector is indexed by worker.
    ///
    /// # Errors
    ///
    /// See [`validate_sharding`] and [`OnlineEngine::new`].
    pub fn build_all(taskset: &Arc<TaskSet>, config: &Config) -> Result<Vec<EngineShard>> {
        validate_sharding(taskset, config)?;
        (0..config.workers())
            .map(|w| {
                let worker = WorkerId::new(w as u16);
                Ok(EngineShard {
                    engine: OnlineEngine::new_shard(Arc::clone(taskset), config.clone(), worker)?,
                    worker,
                })
            })
            .collect()
    }

    /// The worker this shard owns.
    #[must_use]
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// Applies one mailbox command, appending resulting actions to
    /// `sink` (which is **not** cleared — the caller batches).
    ///
    /// # Errors
    ///
    /// The underlying engine call's errors — e.g. a `JobCompleted` for a
    /// foreign worker, an `Activate` of a task the shard does not own,
    /// or a `CrossActivate` routed to the wrong shard. Those are driver
    /// protocol violations, not runtime conditions.
    /// [`ShardCmd::StealRequest`] is also an error here: answering it
    /// needs the driver's reverse lane, so drivers handle it themselves
    /// with [`EngineShard::try_steal`] / [`EngineShard::release_stolen`].
    pub fn process_into(&mut self, cmd: ShardCmd, sink: &mut ActionSink) -> Result<()> {
        match cmd {
            ShardCmd::Activate { task, at } => self.engine.activate_into(task, at, sink),
            ShardCmd::JobCompleted { worker, job, at } => {
                self.engine.on_job_completed_into(worker, job, at, sink)
            }
            ShardCmd::JobFailed { worker, job, at } => {
                self.engine.on_job_failed_into(worker, job, at, sink)
            }
            ShardCmd::Tick { at } => {
                self.engine.on_tick_into(at, sink);
                Ok(())
            }
            ShardCmd::CrossActivate {
                edge,
                graph_release,
                at,
            } => self.engine.on_remote_token(edge, graph_release, at, sink),
            ShardCmd::MsgHigh { dst, ceiling, at } => {
                self.engine.on_high_posted_into(dst, ceiling, at, sink)
            }
            ShardCmd::MsgDrained { dst, at } => self.engine.on_high_drained_into(dst, at, sink),
            ShardCmd::Stolen { job, at } => self.engine.adopt_stolen(job, at, sink),
            ShardCmd::StolenBatch { jobs, at } => {
                self.engine.adopt_stolen_batch(jobs.as_slice(), at, sink)
            }
            ShardCmd::StealDeny { .. } => Ok(()),
            ShardCmd::AdmitTasks {
                taskset,
                budget,
                at,
            } => self.admit_tasks(taskset, budget, at).map(|_| ()),
            ShardCmd::CommitTenant { tenant, at } => {
                self.engine.commit_tenant_into(tenant, at, sink)
            }
            ShardCmd::RetireTenant { tenant, at } => {
                self.engine.retire_tenant_into(tenant, at, sink)
            }
            ShardCmd::StealRequest { thief, .. } => Err(Error::InvalidConfig(format!(
                "StealRequest from {thief} reached process_into: the driver must \
                 answer steal requests itself (try_steal/release_stolen)"
            ))),
            ShardCmd::Stop => {
                self.engine.stop();
                Ok(())
            }
        }
    }

    /// Starts the shard's schedule at `now`; see
    /// [`OnlineEngine::start_into`].
    ///
    /// # Errors
    ///
    /// [`Error::ScheduleRunning`] if already started.
    pub fn start_into(&mut self, now: Instant, sink: &mut ActionSink) -> Result<()> {
        self.engine.start_into(now, sink)
    }

    /// One scheduler tick; see [`OnlineEngine::on_tick_into`].
    pub fn on_tick_into(&mut self, now: Instant, sink: &mut ActionSink) {
        self.engine.on_tick_into(now, sink);
    }

    /// Explicit activation; see [`OnlineEngine::activate_into`].
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::activate_into`], plus a protocol error when
    /// the task is not assigned to this shard's worker.
    pub fn activate_into(
        &mut self,
        task: TaskId,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.engine.activate_into(task, now, sink)
    }

    /// Completion hand-back; see [`OnlineEngine::on_job_completed_into`].
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::on_job_completed_into`]; `worker` must be this
    /// shard's worker.
    pub fn on_job_completed_into(
        &mut self,
        worker: WorkerId,
        job: JobId,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.engine.on_job_completed_into(worker, job, now, sink)
    }

    /// Failed-job hand-back (worker body panicked or was reported as
    /// failed by a fault injector); see
    /// [`OnlineEngine::on_job_failed_into`].
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::on_job_failed_into`]; `worker` must be this
    /// shard's worker.
    pub fn on_job_failed_into(
        &mut self,
        worker: WorkerId,
        job: JobId,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.engine.on_job_failed_into(worker, job, now, sink)
    }

    /// Forces an overrun on the shard's running job of `task` (fault
    /// injection); see [`OnlineEngine::force_overrun`]. Returns `false`
    /// when no such job is running.
    pub fn force_overrun(&mut self, task: TaskId, now: Instant, sink: &mut ActionSink) -> bool {
        self.engine.force_overrun(task, now, sink)
    }

    /// `true` while the shard's deadline-miss trip wire is tripped.
    #[must_use]
    pub fn is_tripped(&self) -> bool {
        self.engine.is_tripped()
    }

    /// Batched completion hand-back: a mailbox drain that finds several
    /// pending `JobCompleted` commands coalesces them into one call, so
    /// the shard pays a single dispatch round for the whole burst; see
    /// [`OnlineEngine::on_jobs_completed_into`].
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::on_jobs_completed_into`]; every worker in the
    /// batch must be this shard's worker.
    pub fn on_jobs_completed_into(
        &mut self,
        completions: &[(WorkerId, JobId)],
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.engine.on_jobs_completed_into(completions, now, sink)
    }

    /// Coalesced wake: retires `completions` and performs the tick at
    /// `now` with one dispatch round for both; see
    /// [`OnlineEngine::advance_into`].
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::advance_into`].
    pub fn advance_into(
        &mut self,
        completions: &[(WorkerId, JobId)],
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.engine.advance_into(completions, now, sink)
    }

    /// Applies a DAG token routed from a foreign shard; see
    /// [`OnlineEngine::on_remote_token`].
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::on_remote_token`].
    pub fn on_remote_token(
        &mut self,
        edge: u32,
        graph_release: Instant,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.engine.on_remote_token(edge, graph_release, now, sink)
    }

    /// Moves pending cross-shard activations into `buf` (appended);
    /// see [`OnlineEngine::drain_outbox_into`]. Drivers call this after
    /// every interaction that can complete jobs and route each entry to
    /// the shard owning `entry.worker`.
    pub fn drain_outbox_into(&mut self, buf: &mut Vec<RemoteActivation>) {
        self.engine.drain_outbox_into(buf);
    }

    /// `true` when cross-shard tokens await routing.
    #[must_use]
    pub fn has_outbox(&self) -> bool {
        self.engine.has_outbox()
    }

    /// An O(1) shared-reference steal probe: the most urgent ready job,
    /// unless it belongs to an accelerator-bound task (those never
    /// migrate); see [`OnlineEngine::steal_hint`].
    #[must_use]
    pub fn try_steal(&self) -> Option<StealHint> {
        self.engine.steal_hint()
    }

    /// Victim side of a steal: detaches the hinted job from the ready
    /// queue (O(log n)) and returns it for the thief; `None` when the
    /// hint went stale. See [`OnlineEngine::release_stolen`].
    pub fn release_stolen(&mut self, hint: StealHint) -> Option<Job> {
        self.engine.release_stolen(hint)
    }

    /// Thief side of a steal: adopts `job` into the local queue and
    /// dispatches, reporting this shard's global [`WorkerId`]; see
    /// [`OnlineEngine::adopt_stolen`].
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::adopt_stolen`].
    pub fn adopt_stolen(&mut self, job: Job, now: Instant, sink: &mut ActionSink) -> Result<()> {
        self.engine.adopt_stolen(job, now, sink)
    }

    /// Batch steal probe: collects up to `k` hints (most urgent first)
    /// into `out` via a non-mutating ordered scan of the ready queue,
    /// stopping at the first job in key order that cannot migrate;
    /// returns the hint count. See [`OnlineEngine::steal_hints`] and the
    /// module docs on batch steals.
    pub fn try_steal_batch(&mut self, k: usize, out: &mut Vec<StealHint>) -> usize {
        self.engine.steal_hints(k, out)
    }

    /// Victim side of a batch steal: detaches every still-fresh hinted
    /// job and appends it to `out`, most urgent first; stale hints are
    /// skipped. Returns the number of jobs released. See
    /// [`OnlineEngine::release_stolen_batch`].
    pub fn release_stolen_batch(
        &mut self,
        hints: &[StealHint],
        out: &mut crate::job::JobBatch,
    ) -> usize {
        self.engine.release_stolen_batch(hints, out)
    }

    /// Thief side of a batch steal: adopts every job in `jobs` into the
    /// local queue, then runs **one** dispatch round for the whole
    /// batch; see [`OnlineEngine::adopt_stolen_batch`].
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::adopt_stolen_batch`] — the batch is rejected
    /// whole if any job already belongs to this shard.
    pub fn adopt_stolen_batch(
        &mut self,
        jobs: &[Job],
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.engine.adopt_stolen_batch(jobs, now, sink)
    }

    /// Phase one of a tenant admission on this shard: adopts `merged`
    /// (releases disarmed) and, when a budget is requested, builds this
    /// shard's own [`ReservationServer`] replica anchored at `at`.
    /// Returns the tenant id the splice assigned — identical on every
    /// shard, since all of them splice the same merged set in the same
    /// admission order.
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::splice_taskset`] — the merged set must be an
    /// append-only extension of the shard's current set, with every new
    /// task partitioned and every new period a multiple of the tick.
    pub fn admit_tasks(
        &mut self,
        merged: Arc<TaskSet>,
        budget: Option<TenantBudget>,
        at: Instant,
    ) -> Result<TenantId> {
        let tenant = TenantId::new(self.engine.tenant_count() as u32);
        let server = budget.map(|b| ReservationServer::new(tenant, b, at));
        self.engine.splice_taskset(merged, server)
    }

    /// Phase two of a tenant admission: arms the tenant's releases; see
    /// [`OnlineEngine::commit_tenant_into`].
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::commit_tenant_into`].
    pub fn commit_tenant_into(
        &mut self,
        tenant: TenantId,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.engine.commit_tenant_into(tenant, now, sink)
    }

    /// Phase two with the release anchor pinned to this shard's tick
    /// grid; see [`OnlineEngine::commit_tenant_anchored_into`]. The
    /// sharded thread runtime passes its next local tick edge so the
    /// tenant's releases coincide with dispatch edges.
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::commit_tenant_into`].
    pub fn commit_tenant_anchored_into(
        &mut self,
        tenant: TenantId,
        anchor: Instant,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.engine
            .commit_tenant_anchored_into(tenant, anchor, now, sink)
    }

    /// Quiesces a tenant on this shard; see
    /// [`OnlineEngine::retire_tenant_into`].
    ///
    /// # Errors
    ///
    /// As [`OnlineEngine::retire_tenant_into`].
    pub fn retire_tenant_into(
        &mut self,
        tenant: TenantId,
        now: Instant,
        sink: &mut ActionSink,
    ) -> Result<()> {
        self.engine.retire_tenant_into(tenant, now, sink)
    }

    /// Number of tenants this shard knows (including tenant 0 and
    /// retired ones — tenant ids are never reused).
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.engine.tenant_count()
    }

    /// This shard's replica of a tenant's reservation server, if the
    /// tenant carries a budget. Stolen jobs charge the **thief** shard's
    /// replica on dispatch — the budget follows the tenant, not the
    /// shard the task was partitioned onto.
    #[must_use]
    pub fn tenant_server(&self, tenant: TenantId) -> Option<&crate::server::ReservationServer> {
        self.engine.tenant_server(tenant)
    }

    /// Stops releasing periodic jobs; in-flight work drains.
    pub fn stop(&mut self) {
        self.engine.stop();
    }

    /// Switches the execution mode (shard-local; a driver broadcasting a
    /// mode switch sends it to every shard).
    pub fn set_mode(&mut self, mode: ExecMode) {
        self.engine.set_mode(mode);
    }

    /// The scheduler-thread period (identical across shards: gcd over
    /// the *whole* task set, so shard ticks stay aligned).
    #[must_use]
    pub fn tick_period(&self) -> Duration {
        self.engine.tick_period()
    }

    /// The shared (immutable) task set.
    #[must_use]
    pub fn taskset(&self) -> &TaskSet {
        self.engine.taskset()
    }

    /// Shard counters (merge with [`EngineStats::merge`] for a global
    /// view).
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        self.engine.stats()
    }

    /// What the shard's worker is currently executing.
    #[must_use]
    pub fn running(&self) -> Option<&RunningJob> {
        self.engine.running(self.worker)
    }

    /// Ready (not running) jobs queued in this shard.
    #[must_use]
    pub fn ready_len(&self) -> usize {
        self.engine.ready_len()
    }

    /// `true` when the queue is empty and the worker idle.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.engine.is_idle()
    }

    /// The most urgent ready job, O(1) through a shared reference
    /// (telemetry, future work-stealing probes) — the index-tracked
    /// [`crate::ReadyQueue`] peeks without any side effect.
    #[must_use]
    pub fn peek_hint(&self) -> Option<&Job> {
        self.engine.most_urgent_hint()
    }

    /// Unwraps the inner shard-view engine, for drivers that embed the
    /// shard in their own event loop (the simulator does this).
    #[must_use]
    pub fn into_inner(self) -> OnlineEngine {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Action;
    use yasmin_core::priority::PriorityPolicy;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn at(v: u64) -> Instant {
        Instant::from_nanos(v * 1_000_000)
    }

    fn partitioned_config(workers: usize) -> Config {
        Config::builder()
            .workers(workers)
            .mapping(MappingScheme::Partitioned)
            .sharded_dispatch(true)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap()
    }

    /// Two workers, two tasks each.
    fn two_worker_set() -> Arc<TaskSet> {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        for (name, period, w) in [("a0", 10, 0), ("a1", 20, 0), ("b0", 10, 1), ("b1", 40, 1)] {
            let t = b
                .task_decl(TaskSpec::periodic(name, ms(period)).on_worker(WorkerId::new(w)))
                .unwrap();
            b.version_decl(t, VersionSpec::new(name, ms(2))).unwrap();
        }
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn build_all_yields_one_shard_per_worker() {
        let shards = EngineShard::build_all(&two_worker_set(), &partitioned_config(2)).unwrap();
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].worker(), WorkerId::new(0));
        assert_eq!(shards[1].worker(), WorkerId::new(1));
        assert_eq!(shards[0].tick_period(), shards[1].tick_period());
    }

    #[test]
    fn requires_sharded_dispatch_opt_in() {
        let cfg = Config::builder()
            .workers(2)
            .mapping(MappingScheme::Partitioned)
            .build()
            .unwrap();
        assert!(matches!(
            EngineShard::build_all(&two_worker_set(), &cfg),
            Err(Error::InvalidConfig(_))
        ));
    }

    #[test]
    fn shards_release_only_their_own_tasks_with_global_worker_ids() {
        let ts = two_worker_set();
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let mut sink = ActionSink::new();
        for shard in &mut shards {
            sink.clear();
            shard.start_into(Instant::ZERO, &mut sink).unwrap();
            assert_eq!(sink.len(), 1, "one dispatch per shard worker");
            match sink.as_slice()[0] {
                Action::Dispatch { worker, job, .. } => {
                    assert_eq!(worker, shard.worker(), "global id in actions");
                    assert_eq!(
                        ts.tasks()[job.task.index()].spec().assigned_worker(),
                        Some(shard.worker())
                    );
                }
                other => panic!("{other:?}"),
            }
            assert_eq!(shard.ready_len(), 1, "second own task queued");
        }
    }

    #[test]
    fn job_ids_are_disjoint_across_shards() {
        let ts = two_worker_set();
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let mut sink = ActionSink::new();
        let mut ids = Vec::new();
        for shard in &mut shards {
            sink.clear();
            shard.start_into(Instant::ZERO, &mut sink).unwrap();
            ids.push(shard.running().unwrap().job.id);
        }
        assert_ne!(ids[0], ids[1]);
        assert_eq!(ids[1].raw() >> 48, 1, "shard index in the high bits");
    }

    #[test]
    fn foreign_completion_and_activation_rejected() {
        let ts = two_worker_set();
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let mut sink = ActionSink::new();
        shards[0].start_into(Instant::ZERO, &mut sink).unwrap();
        let job = shards[0].running().unwrap().job.id;
        // Completion reported by the wrong worker id.
        assert!(shards[0]
            .on_job_completed_into(WorkerId::new(1), job, at(1), &mut sink)
            .is_err());
        // Activation of a task owned by the other shard.
        let foreign = ts
            .tasks()
            .iter()
            .find(|t| t.spec().assigned_worker() == Some(WorkerId::new(1)))
            .unwrap()
            .id();
        assert!(shards[0].activate_into(foreign, at(1), &mut sink).is_err());
    }

    #[test]
    fn process_into_drives_the_full_cycle() {
        let ts = two_worker_set();
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let shard = &mut shards[0];
        let mut sink = ActionSink::new();
        shard.start_into(Instant::ZERO, &mut sink).unwrap();
        let first = shard.running().unwrap().job;
        sink.clear();
        shard
            .process_into(
                ShardCmd::JobCompleted {
                    worker: shard.worker(),
                    job: first.id,
                    at: at(2),
                },
                &mut sink,
            )
            .unwrap();
        assert_eq!(sink.len(), 1, "next own task dispatches");
        sink.clear();
        shard
            .process_into(ShardCmd::Tick { at: at(10) }, &mut sink)
            .unwrap();
        assert_eq!(shard.stats().released, 3, "period-10 task re-released");
        shard.process_into(ShardCmd::Stop, &mut sink).unwrap();
        sink.clear();
        shard
            .process_into(ShardCmd::Tick { at: at(20) }, &mut sink)
            .unwrap();
        assert_eq!(shard.stats().released, 3, "no releases after stop");
        assert_eq!(ShardCmd::Stop.at(), None);
        assert_eq!(ShardCmd::Tick { at: at(20) }.at(), Some(at(20)));
    }

    #[test]
    fn batched_completion_matches_sequential_on_a_shard() {
        let ts = two_worker_set();
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let shard = &mut shards[0];
        let mut sink = ActionSink::new();
        shard.start_into(Instant::ZERO, &mut sink).unwrap();
        let first = shard.running().unwrap().job.id;
        sink.clear();
        shard
            .on_jobs_completed_into(&[(shard.worker(), first)], at(2), &mut sink)
            .unwrap();
        assert_eq!(sink.len(), 1, "next own task dispatches from the batch");
        // A batch naming a foreign worker is a protocol error.
        let second = shard.running().unwrap().job.id;
        assert!(shard
            .on_jobs_completed_into(&[(WorkerId::new(1), second)], at(3), &mut sink)
            .is_err());
    }

    /// src (periodic, worker 0) -> dst (graph node, worker 1).
    fn cross_shard_pipeline() -> (Arc<TaskSet>, TaskId, TaskId) {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let src = b
            .task_decl(TaskSpec::periodic("src", ms(10)).on_worker(WorkerId::new(0)))
            .unwrap();
        let dst = b
            .task_decl(TaskSpec::graph_node("dst").on_worker(WorkerId::new(1)))
            .unwrap();
        b.version_decl(src, VersionSpec::new("s", ms(1))).unwrap();
        b.version_decl(dst, VersionSpec::new("d", ms(1))).unwrap();
        let c = b.channel_decl("c", 1, 1);
        b.channel_connect(src, dst, c).unwrap();
        (Arc::new(b.build().unwrap()), src, dst)
    }

    #[test]
    fn cross_shard_edge_routes_through_the_outbox() {
        let (ts, src, dst) = cross_shard_pipeline();
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let mut sink = ActionSink::new();
        shards[0].start_into(Instant::ZERO, &mut sink).unwrap();
        shards[1].start_into(Instant::ZERO, &mut sink).unwrap();
        assert_eq!(sink.len(), 1, "only src dispatches at start");
        let s = shards[0].running().unwrap().job.id;
        sink.clear();
        shards[0]
            .on_job_completed_into(WorkerId::new(0), s, at(1), &mut sink)
            .unwrap();
        assert!(
            !sink
                .as_slice()
                .iter()
                .any(|a| matches!(a, Action::Dispatch { job, .. } if job.task == dst)),
            "the successor must not fire on the src shard"
        );
        assert!(shards[0].has_outbox());
        let mut outbox = Vec::new();
        shards[0].drain_outbox_into(&mut outbox);
        assert!(!shards[0].has_outbox(), "outbox drained");
        assert_eq!(outbox.len(), 1);
        let ra = outbox[0];
        assert_eq!(ra.worker, WorkerId::new(1));
        assert_eq!(ra.graph_release, Instant::ZERO);
        assert_eq!(ts.edges()[ra.edge as usize].src, src);
        assert_eq!(shards[0].stats().cross_activations, 1);

        // Route it (what a driver does) via the ShardCmd path.
        sink.clear();
        shards[1]
            .process_into(
                ShardCmd::CrossActivate {
                    edge: ra.edge,
                    graph_release: ra.graph_release,
                    at: at(1),
                },
                &mut sink,
            )
            .unwrap();
        match sink.as_slice()[0] {
            Action::Dispatch { worker, job, .. } => {
                assert_eq!(worker, WorkerId::new(1));
                assert_eq!(job.task, dst);
                assert_eq!(
                    job.graph_release,
                    Instant::ZERO,
                    "join inherits the root release"
                );
            }
            other => panic!("{other:?}"),
        }
        // Routing it to the wrong shard is a protocol error.
        assert!(shards[0]
            .on_remote_token(ra.edge, ra.graph_release, at(1), &mut sink)
            .is_err());
        assert!(shards[1]
            .on_remote_token(999, ra.graph_release, at(1), &mut sink)
            .is_err());
    }

    #[test]
    fn steal_cycle_moves_a_ready_job_to_the_thief() {
        // Both tasks live on worker 0; worker 1's shard is idle.
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        for name in ["a0", "a1"] {
            let t = b
                .task_decl(TaskSpec::periodic(name, ms(10)).on_worker(WorkerId::new(0)))
                .unwrap();
            b.version_decl(t, VersionSpec::new(name, ms(2))).unwrap();
        }
        let ts = Arc::new(b.build().unwrap());
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let mut sink = ActionSink::new();
        shards[0].start_into(Instant::ZERO, &mut sink).unwrap();
        shards[1].start_into(Instant::ZERO, &mut sink).unwrap();
        assert!(shards[1].is_idle());
        assert_eq!(
            shards[0].ready_len(),
            1,
            "one job queued behind the running one"
        );

        let hint = shards[0].try_steal().expect("victim has a stealable job");
        let job = shards[0].release_stolen(hint).expect("hint is fresh");
        assert_eq!(shards[0].ready_len(), 0);
        assert_eq!(shards[0].stats().donated, 1);

        sink.clear();
        shards[1].adopt_stolen(job, at(1), &mut sink).unwrap();
        match sink.as_slice()[0] {
            Action::Dispatch { worker, job: j, .. } => {
                assert_eq!(worker, WorkerId::new(1), "thief reports its global id");
                assert_eq!(j.id, job.id);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(shards[1].stats().stolen, 1);
        // The stolen job completes on the thief like any local job.
        sink.clear();
        shards[1]
            .on_job_completed_into(WorkerId::new(1), job.id, at(2), &mut sink)
            .unwrap();
        assert_eq!(shards[1].stats().completed, 1);
        // A stale hint (already released) yields nothing.
        assert!(shards[0].release_stolen(hint).is_none());
        // Adopting a job the shard already owns is a protocol error.
        let own = Job {
            task: job.task,
            ..job
        };
        assert!(shards[0].adopt_stolen(own, at(2), &mut sink).is_err());
        // StealRequest must be answered by the driver, not process_into.
        assert!(shards[0]
            .process_into(
                ShardCmd::StealRequest {
                    thief: WorkerId::new(1),
                    at: at(2),
                },
                &mut sink,
            )
            .is_err());
        // StealDeny is a no-op.
        shards[1]
            .process_into(ShardCmd::StealDeny { at: at(2) }, &mut sink)
            .unwrap();
    }

    #[test]
    fn stolen_job_charges_the_thief_shard_tenant_replica() {
        // Base: one task per worker, so both shards build and start.
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        for (name, w) in [("base0", 0), ("base1", 1)] {
            let t = b
                .task_decl(TaskSpec::periodic(name, ms(40)).on_worker(WorkerId::new(w)))
                .unwrap();
            b.version_decl(t, VersionSpec::new(name, ms(1))).unwrap();
        }
        let live = Arc::new(b.build().unwrap());
        let mut shards = EngineShard::build_all(&live, &partitioned_config(2)).unwrap();
        let mut sink = ActionSink::new();
        shards[0].start_into(Instant::ZERO, &mut sink).unwrap();
        shards[1].start_into(Instant::ZERO, &mut sink).unwrap();

        // Guest tenant: two tasks on worker 0, budgeted. Every shard
        // splices its own server replica.
        let mut g = yasmin_core::graph::TaskSetBuilder::new();
        for name in ["g0", "g1"] {
            let t = g
                .task_decl(TaskSpec::periodic(name, ms(40)).on_worker(WorkerId::new(0)))
                .unwrap();
            g.version_decl(t, VersionSpec::new(name, ms(4))).unwrap();
        }
        let merged = Arc::new(live.extended(&g.build().unwrap()).unwrap());
        // Capacity covers one guest WCET (4ms) but not two: the second
        // stolen job must defer on the thief's replica.
        let budget = crate::server::TenantBudget::deferrable(ms(6), ms(40));
        let tenant = shards[0]
            .admit_tasks(Arc::clone(&merged), Some(budget), Instant::ZERO)
            .unwrap();
        assert_eq!(
            shards[1]
                .admit_tasks(merged, Some(budget), Instant::ZERO)
                .unwrap(),
            tenant
        );
        sink.clear();
        for s in shards.iter_mut() {
            s.commit_tenant_into(tenant, Instant::ZERO, &mut sink)
                .unwrap();
        }
        // Worker 0 runs base0; both guest jobs queue behind it. Worker 1
        // finishes base1 and goes idle — the steal scenario.
        assert_eq!(shards[0].ready_len(), 2);
        let b1 = shards[1].running().expect("base1 runs").job.id;
        sink.clear();
        shards[1]
            .on_job_completed_into(WorkerId::new(1), b1, at(1), &mut sink)
            .unwrap();
        assert!(shards[1].is_idle());

        let hint = shards[0].try_steal().expect("guest job is stealable");
        let job = shards[0].release_stolen(hint).expect("hint is fresh");
        sink.clear();
        shards[1].adopt_stolen(job, at(1), &mut sink).unwrap();
        assert!(
            matches!(sink.as_slice()[0], Action::Dispatch { job: j, .. } if j.id == job.id),
            "{:?}",
            sink.as_slice()
        );

        // The dispatch charged the *thief's* replica with the guest
        // version's WCET; the victim's replica is untouched (its guest
        // job is still queued behind base0).
        let thief = shards[1].tenant_server(tenant).expect("replica spliced");
        assert_eq!(thief.total_charged(), ms(4));
        let victim = shards[0].tenant_server(tenant).expect("replica spliced");
        assert_eq!(victim.total_charged(), Duration::ZERO);

        // Steal the second guest job too. Migrating cannot mint budget:
        // once the first job completes, the thief's replica (2ms left)
        // refuses the 4ms charge and the job defers instead of running.
        let hint2 = shards[0].try_steal().expect("second guest job queued");
        let job2 = shards[0].release_stolen(hint2).expect("hint is fresh");
        sink.clear();
        shards[1].adopt_stolen(job2, at(2), &mut sink).unwrap();
        shards[1]
            .on_job_completed_into(WorkerId::new(1), job.id, at(5), &mut sink)
            .unwrap();
        assert!(
            shards[1].running().is_none(),
            "deferred job must not dispatch"
        );
        assert_eq!(shards[1].ready_len(), 1, "it stays queued instead");
        assert!(shards[1].stats().budget_deferrals >= 1);
        assert_eq!(
            shards[1]
                .tenant_server(tenant)
                .expect("replica spliced")
                .total_charged(),
            ms(4),
            "no charge beyond the replica's capacity"
        );
    }

    #[test]
    fn accel_bound_tasks_are_never_hinted_for_stealing() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        for (name, accel) in [("plain", false), ("gpu0", true), ("gpu1", true)] {
            let t = b
                .task_decl(TaskSpec::periodic(name, ms(10)).on_worker(WorkerId::new(0)))
                .unwrap();
            let v = VersionSpec::new(name, ms(1));
            let v = if accel { v.with_accel(gpu) } else { v };
            b.version_decl(t, v).unwrap();
        }
        let ts = Arc::new(b.build().unwrap());
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let mut sink = ActionSink::new();
        shards[0].start_into(Instant::ZERO, &mut sink).unwrap();
        // EDF ties break by release then id: the running job is "plain",
        // the queue holds gpu0 then gpu1 — both accelerator-bound.
        assert_eq!(shards[0].ready_len(), 2);
        assert!(
            shards[0].try_steal().is_none(),
            "accelerator-bound jobs never migrate"
        );
    }

    #[test]
    fn batch_steal_cycle_moves_k_jobs_in_one_exchange() {
        // Five tasks on worker 0: one runs, four queue — all stealable.
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        for i in 0..5u64 {
            let t = b
                .task_decl(
                    TaskSpec::periodic(format!("a{i}"), ms(10 * (i + 1)))
                        .on_worker(WorkerId::new(0)),
                )
                .unwrap();
            b.version_decl(t, VersionSpec::new(format!("a{i}"), ms(1)))
                .unwrap();
        }
        let ts = Arc::new(b.build().unwrap());
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let mut sink = ActionSink::new();
        shards[0].start_into(Instant::ZERO, &mut sink).unwrap();
        shards[1].start_into(Instant::ZERO, &mut sink).unwrap();
        assert_eq!(shards[0].ready_len(), 4);
        assert!(shards[1].is_idle());

        // Probe for up to 8: the victim offers all four ready jobs, most
        // urgent first (EDF: ascending deadline).
        let mut hints = Vec::new();
        assert_eq!(shards[0].try_steal_batch(8, &mut hints), 4);
        assert!(
            hints.windows(2).all(|w| w[0].priority <= w[1].priority),
            "hints come in ascending key order"
        );
        // A smaller k takes a prefix.
        let mut two = Vec::new();
        assert_eq!(shards[0].try_steal_batch(2, &mut two), 2);
        assert_eq!(&hints[..2], &two[..]);

        // The probe detached nothing: the queue is intact.
        assert_eq!(shards[0].ready_len(), 4);

        let mut batch = crate::job::JobBatch::new();
        assert_eq!(shards[0].release_stolen_batch(&hints, &mut batch), 4);
        assert_eq!(shards[0].ready_len(), 0);
        assert_eq!(shards[0].stats().donated, 4);
        // Re-releasing the same hints finds them all stale.
        let mut empty = crate::job::JobBatch::new();
        assert_eq!(shards[0].release_stolen_batch(&hints, &mut empty), 0);

        // One StolenBatch ack lands all four on the thief.
        sink.clear();
        shards[1]
            .process_into(
                ShardCmd::StolenBatch {
                    jobs: batch,
                    at: at(1),
                },
                &mut sink,
            )
            .unwrap();
        let dispatches = sink
            .as_slice()
            .iter()
            .filter(|a| matches!(a, Action::Dispatch { .. }))
            .count();
        assert_eq!(dispatches, 1, "one dispatch round for the whole batch");
        assert_eq!(shards[1].stats().stolen, 4);
        assert_eq!(shards[1].stats().stolen_batch, 1);
        assert_eq!(shards[1].stats().steal_batch_len[3], 1, "len-4 bucket");
        assert_eq!(shards[1].ready_len(), 3);
        match sink.as_slice()[0] {
            Action::Dispatch { worker, job, .. } => {
                assert_eq!(worker, WorkerId::new(1), "thief reports its global id");
                assert_eq!(job.id, batch.as_slice()[0].id, "most urgent runs first");
            }
            other => panic!("{other:?}"),
        }

        // Migrate-at-most-once: the thief never re-offers adopted jobs.
        let mut again = Vec::new();
        assert_eq!(shards[1].try_steal_batch(8, &mut again), 0);
        assert!(shards[1].try_steal().is_none());

        // A batch containing a job the shard already owns is rejected
        // whole — nothing enqueued.
        let own = batch.as_slice()[1];
        assert!(shards[0]
            .adopt_stolen_batch(&[own], at(2), &mut sink)
            .is_err());
        assert_eq!(shards[0].stats().stolen, 0);
        // An empty batch is a no-op, not an error.
        shards[1].adopt_stolen_batch(&[], at(2), &mut sink).unwrap();
        assert_eq!(shards[1].stats().stolen_batch, 1);
    }

    #[test]
    fn batch_scan_stops_at_the_first_non_stealable_job() {
        // EDF order on worker 0's queue: p1 (deadline 20) < gpu (40) <
        // p2 (80). The scan must offer p1 and stop at gpu — it may not
        // skip over the pinned job to reach p2.
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        for (name, period, accel) in [
            ("p0", 10, false),
            ("p1", 20, false),
            ("g", 40, true),
            ("p2", 80, false),
        ] {
            let t = b
                .task_decl(TaskSpec::periodic(name, ms(period)).on_worker(WorkerId::new(0)))
                .unwrap();
            let v = VersionSpec::new(name, ms(1));
            let v = if accel { v.with_accel(gpu) } else { v };
            b.version_decl(t, v).unwrap();
        }
        let ts = Arc::new(b.build().unwrap());
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let mut sink = ActionSink::new();
        shards[0].start_into(Instant::ZERO, &mut sink).unwrap();
        assert_eq!(shards[0].ready_len(), 3, "p0 runs; p1, g, p2 queue");
        let mut hints = Vec::new();
        assert_eq!(shards[0].try_steal_batch(8, &mut hints), 1);
        assert_eq!(ts.tasks()[hints[0].task.index()].spec().name(), "p1");
    }

    #[test]
    fn stolen_batch_charges_the_thief_replica_like_single_steals() {
        // Same scenario as stolen_job_charges_the_thief_shard_tenant_replica,
        // but both guest jobs migrate in ONE batch exchange: budgets must
        // still charge the thief's replica per-dispatch, not per-adopt.
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        for (name, w) in [("base0", 0), ("base1", 1)] {
            let t = b
                .task_decl(TaskSpec::periodic(name, ms(40)).on_worker(WorkerId::new(w)))
                .unwrap();
            b.version_decl(t, VersionSpec::new(name, ms(1))).unwrap();
        }
        let live = Arc::new(b.build().unwrap());
        let mut shards = EngineShard::build_all(&live, &partitioned_config(2)).unwrap();
        let mut sink = ActionSink::new();
        shards[0].start_into(Instant::ZERO, &mut sink).unwrap();
        shards[1].start_into(Instant::ZERO, &mut sink).unwrap();

        let mut g = yasmin_core::graph::TaskSetBuilder::new();
        for name in ["g0", "g1"] {
            let t = g
                .task_decl(TaskSpec::periodic(name, ms(40)).on_worker(WorkerId::new(0)))
                .unwrap();
            g.version_decl(t, VersionSpec::new(name, ms(4))).unwrap();
        }
        let merged = Arc::new(live.extended(&g.build().unwrap()).unwrap());
        let budget = crate::server::TenantBudget::deferrable(ms(6), ms(40));
        let tenant = shards[0]
            .admit_tasks(Arc::clone(&merged), Some(budget), Instant::ZERO)
            .unwrap();
        shards[1]
            .admit_tasks(merged, Some(budget), Instant::ZERO)
            .unwrap();
        sink.clear();
        for s in shards.iter_mut() {
            s.commit_tenant_into(tenant, Instant::ZERO, &mut sink)
                .unwrap();
        }
        let b1 = shards[1].running().expect("base1 runs").job.id;
        sink.clear();
        shards[1]
            .on_job_completed_into(WorkerId::new(1), b1, at(1), &mut sink)
            .unwrap();
        assert!(shards[1].is_idle());

        // Both guest jobs leave in one exchange.
        let mut hints = Vec::new();
        assert_eq!(shards[0].try_steal_batch(8, &mut hints), 2);
        let mut batch = crate::job::JobBatch::new();
        assert_eq!(shards[0].release_stolen_batch(&hints, &mut batch), 2);
        sink.clear();
        shards[1]
            .adopt_stolen_batch(batch.as_slice(), at(1), &mut sink)
            .unwrap();

        // The single dispatch charged one WCET on the thief; adoption of
        // the still-queued second job charged nothing.
        let thief = shards[1].tenant_server(tenant).expect("replica spliced");
        assert_eq!(thief.total_charged(), ms(4));
        let victim = shards[0].tenant_server(tenant).expect("replica spliced");
        assert_eq!(victim.total_charged(), Duration::ZERO);

        // When the first stolen job completes, the replica (2ms left)
        // refuses the second 4ms charge: defer, never mint budget by
        // migrating.
        let first = batch.as_slice()[0].id;
        sink.clear();
        shards[1]
            .on_job_completed_into(WorkerId::new(1), first, at(5), &mut sink)
            .unwrap();
        assert!(shards[1].running().is_none(), "deferred, not dispatched");
        assert_eq!(shards[1].ready_len(), 1);
        assert!(shards[1].stats().budget_deferrals >= 1);
        assert_eq!(
            shards[1]
                .tenant_server(tenant)
                .expect("replica spliced")
                .total_charged(),
            ms(4)
        );
    }

    #[test]
    fn advance_into_matches_separate_completion_and_tick_rounds() {
        let ts = two_worker_set();
        let mut split = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let mut fused = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let mut sink_a = ActionSink::new();
        let mut sink_b = ActionSink::new();
        split[0].start_into(Instant::ZERO, &mut sink_a).unwrap();
        fused[0].start_into(Instant::ZERO, &mut sink_b).unwrap();
        for tick in 1..=6u64 {
            let done_a = split[0].running().map(|r| (split[0].worker(), r.job.id));
            let done_b = fused[0].running().map(|r| (fused[0].worker(), r.job.id));
            assert_eq!(done_a.map(|d| d.1), done_b.map(|d| d.1));
            let now = at(tick * 10);
            sink_a.clear();
            if let Some(d) = done_a {
                split[0]
                    .on_jobs_completed_into(&[d], now, &mut sink_a)
                    .unwrap();
            }
            split[0].on_tick_into(now, &mut sink_a);
            sink_b.clear();
            let batch: Vec<_> = done_b.into_iter().collect();
            fused[0].advance_into(&batch, now, &mut sink_b).unwrap();
            // The fused round may merge two dispatch rounds into one,
            // but the dispatched jobs and engine counters must agree.
            // (`max_ready` legitimately differs: the fused round sees
            // fresh releases queued before the first pop.)
            let mut sa = split[0].stats().clone();
            let mut sb = fused[0].stats().clone();
            sa.max_ready = 0;
            sb.max_ready = 0;
            assert_eq!(sa, sb, "tick {tick}");
            assert_eq!(
                split[0].running().map(|r| r.job.id),
                fused[0].running().map(|r| r.job.id)
            );
        }
    }

    #[test]
    fn cross_shard_accelerator_rejected() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        for w in 0..2u16 {
            let t = b
                .task_decl(TaskSpec::periodic(format!("t{w}"), ms(10)).on_worker(WorkerId::new(w)))
                .unwrap();
            b.version_decl(t, VersionSpec::new("g", ms(1)).with_accel(gpu))
                .unwrap();
        }
        let ts = Arc::new(b.build().unwrap());
        let err = EngineShard::build_all(&ts, &partitioned_config(2));
        assert!(matches!(err, Err(Error::InvalidConfig(msg)) if msg.contains("accelerator")));
    }

    #[test]
    fn intra_shard_dag_fires_locally() {
        let mut b = yasmin_core::graph::TaskSetBuilder::new();
        let w = WorkerId::new(1);
        let src = b
            .task_decl(TaskSpec::periodic("src", ms(10)).on_worker(w))
            .unwrap();
        let dst = b
            .task_decl(TaskSpec::graph_node("dst").on_worker(w))
            .unwrap();
        b.version_decl(src, VersionSpec::new("s", ms(1))).unwrap();
        b.version_decl(dst, VersionSpec::new("d", ms(1))).unwrap();
        let c = b.channel_decl("c", 1, 1);
        b.channel_connect(src, dst, c).unwrap();
        let ts = Arc::new(b.build().unwrap());
        let mut shards = EngineShard::build_all(&ts, &partitioned_config(2)).unwrap();
        let shard = &mut shards[1];
        let mut sink = ActionSink::new();
        shard.start_into(Instant::ZERO, &mut sink).unwrap();
        let s = shard.running().unwrap().job.id;
        sink.clear();
        shard.on_job_completed_into(w, s, at(1), &mut sink).unwrap();
        assert!(
            sink.as_slice()
                .iter()
                .any(|a| matches!(a, Action::Dispatch { job, .. } if job.task == dst)),
            "successor fires inside the shard: {:?}",
            sink.as_slice()
        );
        // Shard 0 owns nothing: starting it dispatches nothing.
        let mut empty_sink = ActionSink::new();
        shards[0]
            .start_into(Instant::ZERO, &mut empty_sink)
            .unwrap();
        assert!(empty_sink.is_empty());
        assert!(shards[0].is_idle());
        assert!(shards[0].peek_hint().is_none());
    }

    #[test]
    fn shard_matches_single_owner_dispatch_order() {
        // The load-bearing equivalence: per worker, the shard emits the
        // same (task, seq, version) dispatch sequence as the single-owner
        // partitioned engine driven identically.
        let ts = two_worker_set();
        let sharded_cfg = partitioned_config(2);
        let single_cfg = Config::builder()
            .workers(2)
            .mapping(MappingScheme::Partitioned)
            .priority(PriorityPolicy::EarliestDeadlineFirst)
            .build()
            .unwrap();
        let mut single = OnlineEngine::new(Arc::clone(&ts), single_cfg).unwrap();
        let mut shards = EngineShard::build_all(&ts, &sharded_cfg).unwrap();

        // Drive both for 8 ticks, completing everything mid-tick.
        let mut single_log: Vec<(u16, u32, u64)> = Vec::new();
        let mut shard_log: Vec<(u16, u32, u64)> = Vec::new();
        let log_actions = |log: &mut Vec<(u16, u32, u64)>, actions: &[Action]| {
            for a in actions {
                if let Action::Dispatch { worker, job, .. } = a {
                    log.push((worker.raw(), job.task.raw(), job.seq));
                }
            }
        };
        let mut sink = ActionSink::new();
        single.start_into(Instant::ZERO, &mut sink).unwrap();
        log_actions(&mut single_log, sink.as_slice());
        for shard in &mut shards {
            sink.clear();
            shard.start_into(Instant::ZERO, &mut sink).unwrap();
            log_actions(&mut shard_log, sink.as_slice());
        }
        for tick in 1..=8u64 {
            let mid = at(tick * 10 - 5);
            for w in 0..2u16 {
                let worker = WorkerId::new(w);
                if let Some(r) = single.running(worker) {
                    let id = r.job.id;
                    sink.clear();
                    single
                        .on_job_completed_into(worker, id, mid, &mut sink)
                        .unwrap();
                    log_actions(&mut single_log, sink.as_slice());
                }
                if let Some(r) = shards[w as usize].running() {
                    let id = r.job.id;
                    sink.clear();
                    shards[w as usize]
                        .on_job_completed_into(worker, id, mid, &mut sink)
                        .unwrap();
                    log_actions(&mut shard_log, sink.as_slice());
                }
            }
            sink.clear();
            single.on_tick_into(at(tick * 10), &mut sink);
            log_actions(&mut single_log, sink.as_slice());
            for shard in &mut shards {
                sink.clear();
                shard.on_tick_into(at(tick * 10), &mut sink);
                log_actions(&mut shard_log, sink.as_slice());
            }
        }
        // Compare per-worker subsequences (global interleaving across
        // workers is driver-defined, not engine-defined).
        for w in 0..2u16 {
            let s: Vec<_> = single_log.iter().filter(|e| e.0 == w).collect();
            let p: Vec<_> = shard_log.iter().filter(|e| e.0 == w).collect();
            assert_eq!(s, p, "worker {w} dispatch sequence diverged");
        }
        let mut merged = EngineStats::default();
        for shard in &shards {
            merged.merge(shard.stats());
        }
        assert_eq!(merged.released, single.stats().released);
        assert_eq!(merged.dispatched, single.stats().dispatched);
        assert_eq!(merged.completed, single.stats().completed);
    }
}
