//! Jobs: single activations of tasks.

use yasmin_core::ids::{JobId, TaskId};
use yasmin_core::priority::Priority;
use yasmin_core::time::Instant;

/// One activation (job) of a task, as tracked by the scheduling engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    /// Globally unique job identifier.
    pub id: JobId,
    /// The task this job activates.
    pub task: TaskId,
    /// Per-task activation sequence number (job *i* of the task).
    pub seq: u64,
    /// When this job was released.
    pub release: Instant,
    /// Release of the *graph instance* this job belongs to: equals
    /// `release` for root tasks, and is inherited from the predecessor for
    /// inner DAG nodes — deadlines are "described at the graph level" (§2).
    pub graph_release: Instant,
    /// Absolute deadline (`Instant::MAX` when unconstrained).
    pub abs_deadline: Instant,
    /// Scheduling priority (smaller = more urgent); fixed at release for
    /// static policies, the absolute deadline under EDF.
    pub priority: Priority,
    /// `true` once the job has been preempted at least once.
    pub preempted: bool,
}

impl Job {
    /// `true` if the job's deadline has passed at `now`.
    #[must_use]
    pub fn deadline_missed_at(&self, now: Instant) -> bool {
        self.abs_deadline != Instant::MAX && now > self.abs_deadline
    }

    /// The key that orders jobs in ready queues: priority first, then
    /// release time, then job id — a deterministic total order.
    #[must_use]
    pub fn queue_key(&self) -> (Priority, Instant, JobId) {
        (self.priority, self.release, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::time::Duration;

    fn job(id: u64, prio: u64, release_ns: u64) -> Job {
        Job {
            id: JobId::new(id),
            task: TaskId::new(0),
            seq: 0,
            release: Instant::from_nanos(release_ns),
            graph_release: Instant::from_nanos(release_ns),
            abs_deadline: Instant::from_nanos(release_ns) + Duration::from_millis(10),
            priority: Priority::new(prio),
            preempted: false,
        }
    }

    #[test]
    fn queue_key_orders_by_priority_then_release_then_id() {
        let a = job(1, 5, 100);
        let b = job(2, 3, 200);
        let c = job(3, 5, 50);
        let mut v = [a, b, c];
        v.sort_by_key(Job::queue_key);
        assert_eq!(v[0].id, JobId::new(2)); // most urgent priority 3
        assert_eq!(v[1].id, JobId::new(3)); // prio 5, earlier release
        assert_eq!(v[2].id, JobId::new(1));
    }

    #[test]
    fn deadline_miss_detection() {
        let j = job(1, 1, 0);
        assert!(!j.deadline_missed_at(Instant::from_nanos(10_000_000)));
        assert!(j.deadline_missed_at(Instant::from_nanos(10_000_001)));
        let unconstrained = Job {
            abs_deadline: Instant::MAX,
            ..j
        };
        assert!(!unconstrained.deadline_missed_at(Instant::MAX));
    }
}
