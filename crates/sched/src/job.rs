//! Jobs: single activations of tasks.

use yasmin_core::ids::{JobId, TaskId};
use yasmin_core::priority::Priority;
use yasmin_core::time::Instant;

/// One activation (job) of a task, as tracked by the scheduling engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Job {
    /// Globally unique job identifier.
    pub id: JobId,
    /// The task this job activates.
    pub task: TaskId,
    /// Per-task activation sequence number (job *i* of the task).
    pub seq: u64,
    /// When this job was released.
    pub release: Instant,
    /// Release of the *graph instance* this job belongs to: equals
    /// `release` for root tasks, and is inherited from the predecessor for
    /// inner DAG nodes — deadlines are "described at the graph level" (§2).
    pub graph_release: Instant,
    /// Absolute deadline (`Instant::MAX` when unconstrained).
    pub abs_deadline: Instant,
    /// Scheduling priority (smaller = more urgent); fixed at release for
    /// static policies, the absolute deadline under EDF.
    pub priority: Priority,
    /// `true` once the job has been preempted at least once.
    pub preempted: bool,
}

impl Job {
    /// `true` if the job's deadline has passed at `now`.
    #[must_use]
    pub fn deadline_missed_at(&self, now: Instant) -> bool {
        self.abs_deadline != Instant::MAX && now > self.abs_deadline
    }

    /// The key that orders jobs in ready queues: priority first, then
    /// release time, then job id — a deterministic total order.
    #[must_use]
    pub fn queue_key(&self) -> (Priority, Instant, JobId) {
        (self.priority, self.release, self.id)
    }
}

/// Most jobs a single batch-steal exchange may hand over. Also the cap
/// on the adaptive batch size thieves derive from the load board: large
/// enough to amortize the request/deny round-trip at k = 8, small
/// enough that a [`JobBatch`] stays a cheap `Copy` payload on the
/// fixed-capacity mailbox lanes.
pub const MAX_STEAL_BATCH: usize = 8;

/// A fixed-capacity, `Copy` batch of jobs — the payload of one
/// batch-steal grant. Inline storage (no heap) keeps the hand-off
/// allocation-free and lets the batch ride the wait-free SPSC command
/// lanes by value, exactly like a single stolen [`Job`] does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobBatch {
    jobs: [Job; MAX_STEAL_BATCH],
    len: u8,
}

impl JobBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        // Placeholder payload for the unused tail slots; never observable
        // through `as_slice`.
        let blank = Job {
            id: JobId::new(0),
            task: TaskId::new(0),
            seq: 0,
            release: Instant::ZERO,
            graph_release: Instant::ZERO,
            abs_deadline: Instant::ZERO,
            priority: Priority::new(0),
            preempted: false,
        };
        JobBatch {
            jobs: [blank; MAX_STEAL_BATCH],
            len: 0,
        }
    }

    /// Appends a job; `false` (and no change) when the batch is full.
    pub fn push(&mut self, job: Job) -> bool {
        if (self.len as usize) < MAX_STEAL_BATCH {
            self.jobs[self.len as usize] = job;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// The batched jobs, in the order they were pushed (most urgent
    /// first for batches built by the victim-side release).
    #[must_use]
    pub fn as_slice(&self) -> &[Job] {
        &self.jobs[..self.len as usize]
    }

    /// Number of jobs in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no jobs were pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all jobs, keeping the (inline) storage.
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl Default for JobBatch {
    fn default() -> Self {
        JobBatch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::time::Duration;

    fn job(id: u64, prio: u64, release_ns: u64) -> Job {
        Job {
            id: JobId::new(id),
            task: TaskId::new(0),
            seq: 0,
            release: Instant::from_nanos(release_ns),
            graph_release: Instant::from_nanos(release_ns),
            abs_deadline: Instant::from_nanos(release_ns) + Duration::from_millis(10),
            priority: Priority::new(prio),
            preempted: false,
        }
    }

    #[test]
    fn queue_key_orders_by_priority_then_release_then_id() {
        let a = job(1, 5, 100);
        let b = job(2, 3, 200);
        let c = job(3, 5, 50);
        let mut v = [a, b, c];
        v.sort_by_key(Job::queue_key);
        assert_eq!(v[0].id, JobId::new(2)); // most urgent priority 3
        assert_eq!(v[1].id, JobId::new(3)); // prio 5, earlier release
        assert_eq!(v[2].id, JobId::new(1));
    }

    #[test]
    fn job_batch_is_bounded_and_ordered() {
        let mut b = JobBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.as_slice(), &[]);
        for i in 0..MAX_STEAL_BATCH {
            assert!(b.push(job(i as u64, i as u64, 0)));
        }
        assert!(!b.push(job(99, 99, 0)), "batch refuses past capacity");
        assert_eq!(b.len(), MAX_STEAL_BATCH);
        let ids: Vec<u64> = b.as_slice().iter().map(|j| j.id.raw()).collect();
        assert_eq!(ids, (0..MAX_STEAL_BATCH as u64).collect::<Vec<_>>());
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn deadline_miss_detection() {
        let j = job(1, 1, 0);
        assert!(!j.deadline_missed_at(Instant::from_nanos(10_000_000)));
        assert!(j.deadline_missed_at(Instant::from_nanos(10_000_001)));
        let unconstrained = Job {
            abs_deadline: Instant::MAX,
            ..j
        };
        assert!(!unconstrained.deadline_missed_at(Instant::MAX));
    }
}
