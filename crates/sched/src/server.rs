//! Aperiodic servers — the paper's first future-work item (§7):
//! "improve the management of real-time tasks with arbitrary activation
//! patterns by using recurring servers, e.g. [Ghazalie & Baker 1995]".
//!
//! A server reserves `(budget C_s, period T_s)` of processor time for
//! aperiodic work so it can be accounted for like one more periodic task
//! in any schedulability analysis, while aperiodic jobs get bounded
//! service. Two classic disciplines:
//!
//! * **Polling server** — budget exists only at replenishment instants;
//!   if no aperiodic work is pending, the budget is lost immediately.
//! * **Deferrable server** — the budget persists through the period
//!   (bandwidth-preserving), replenished to full every `T_s`.
//!
//! [`AperiodicServer`] is pure accounting: the driver asks how much
//! budget is available at `now`, reports consumption, and the server
//! tracks replenishments. This composes with the engine by modelling the
//! server as a periodic task whose job "body" serves the aperiodic
//! queue.
//!
//! [`ReservationServer`] builds on the same accounting to give an
//! *admitted tenant* (see `yasmin_sched::admission`) a processor-time
//! reservation: every dispatch of one of the tenant's jobs is charged
//! against the server, and a tenant whose budget is exhausted has its
//! jobs deferred — not dropped — until the next replenishment.

use yasmin_core::ids::TenantId;
use yasmin_core::time::{Duration, Instant};

/// Which replenishment discipline the server follows.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ServerKind {
    /// Budget is lost if unused when the server is polled.
    Polling,
    /// Budget persists until consumed or replenished (deferrable).
    Deferrable,
}

/// Budget accounting for one aperiodic server.
#[derive(Clone, Debug)]
pub struct AperiodicServer {
    kind: ServerKind,
    capacity: Duration,
    period: Duration,
    budget: Duration,
    next_replenish: Instant,
    served: Duration,
    replenishments: u64,
}

impl AperiodicServer {
    /// Creates a server with full initial budget, first replenishment at
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `period` is zero, or `capacity > period`.
    #[must_use]
    pub fn new(kind: ServerKind, capacity: Duration, period: Duration) -> Self {
        AperiodicServer::new_at(kind, capacity, period, Instant::ZERO)
    }

    /// Creates a server whose replenishment schedule is anchored at
    /// `start` (first replenishment at `start + period`). On-line
    /// admission uses this so a tenant admitted mid-run replenishes
    /// relative to its admission instant, not the schedule epoch.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `period` is zero, or `capacity > period`.
    #[must_use]
    pub fn new_at(kind: ServerKind, capacity: Duration, period: Duration, start: Instant) -> Self {
        assert!(!capacity.is_zero(), "server capacity must be positive");
        assert!(!period.is_zero(), "server period must be positive");
        assert!(capacity <= period, "capacity cannot exceed the period");
        AperiodicServer {
            kind,
            capacity,
            period,
            budget: capacity,
            next_replenish: start + period,
            served: Duration::ZERO,
            replenishments: 0,
        }
    }

    /// The discipline.
    #[must_use]
    pub fn kind(&self) -> ServerKind {
        self.kind
    }

    /// The reserved budget per period.
    #[must_use]
    pub fn capacity(&self) -> Duration {
        self.capacity
    }

    /// The replenishment period (also the server's RM/DM period when
    /// folded into the task set).
    #[must_use]
    pub fn period(&self) -> Duration {
        self.period
    }

    /// The server's utilisation `C_s / T_s`.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        self.capacity.as_nanos() as f64 / self.period.as_nanos() as f64
    }

    /// Advances the accounting to `now`, applying any replenishments
    /// that are due, and returns the budget available for aperiodic
    /// service.
    pub fn available_at(&mut self, now: Instant) -> Duration {
        while self.next_replenish <= now {
            self.budget = self.capacity;
            self.next_replenish += self.period;
            self.replenishments += 1;
        }
        self.budget
    }

    /// Serves aperiodic work for up to `demand` at `now`; returns how
    /// much was actually granted (bounded by the available budget).
    pub fn serve(&mut self, now: Instant, demand: Duration) -> Duration {
        let available = self.available_at(now);
        let granted = demand.min(available);
        self.budget -= granted;
        self.served += granted;
        granted
    }

    /// For a polling server: called when the server is activated and
    /// finds no pending work — the remaining budget is discarded
    /// ("budget exists only at the instants the server polls").
    pub fn poll_idle(&mut self, now: Instant) {
        let _ = self.available_at(now);
        if self.kind == ServerKind::Polling {
            self.budget = Duration::ZERO;
        }
    }

    /// Total aperiodic time served so far.
    #[must_use]
    pub fn total_served(&self) -> Duration {
        self.served
    }

    /// Replenishments applied so far.
    #[must_use]
    pub fn replenishment_count(&self) -> u64 {
        self.replenishments
    }

    /// Worst-case response-time bound for an aperiodic job of execution
    /// time `c` arriving at the worst instant, assuming the server runs
    /// at top priority: the job may wait one full period before service
    /// starts (just-missed replenishment) and needs `⌈c/C_s⌉` periods of
    /// budget.
    #[must_use]
    pub fn response_bound(&self, c: Duration) -> Duration {
        let full_periods = c.as_nanos().div_ceil(self.capacity.as_nanos());
        self.period * full_periods + self.period
    }
}

/// The processor-time reservation requested for a tenant at admission.
///
/// Budget semantics (see `yasmin_sched::admission` for the full tenancy
/// model): the engine charges the *selected version's WCET* against the
/// tenant's [`ReservationServer`] when a job is dispatched. The charge is
/// all-or-nothing — a job whose full WCET does not fit in the remaining
/// budget is deferred to a later dispatch round instead of running with a
/// partial reservation. Charges are never refunded when a job finishes
/// early, so the reservation is conservative. Under sharded scheduling
/// every shard holds its own replica of the server, making the budget a
/// *per-worker* reservation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantBudget {
    /// Replenishment discipline ([`ServerKind::Deferrable`] is the usual
    /// choice — budget persists until consumed).
    pub kind: ServerKind,
    /// Processor time granted per replenishment period.
    pub capacity: Duration,
    /// Replenishment period (also the utilisation the tenant's server
    /// contributes to admission analysis: `capacity / period`).
    pub period: Duration,
}

impl TenantBudget {
    /// A deferrable reservation of `capacity` every `period`.
    #[must_use]
    pub fn deferrable(capacity: Duration, period: Duration) -> Self {
        TenantBudget {
            kind: ServerKind::Deferrable,
            capacity,
            period,
        }
    }

    /// The server utilisation `capacity / period` this budget folds into
    /// schedulability analysis.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        self.capacity.as_nanos() as f64 / self.period.as_nanos() as f64
    }
}

/// A per-tenant reservation server: [`AperiodicServer`] accounting tagged
/// with the owning [`TenantId`] and an all-or-nothing charge interface
/// used by the engine's dispatch path.
#[derive(Clone, Debug)]
pub struct ReservationServer {
    tenant: TenantId,
    server: AperiodicServer,
    deferrals: u64,
    overrun_charges: u64,
}

impl ReservationServer {
    /// Creates the reservation for `tenant` from its admitted `budget`,
    /// with the replenishment schedule anchored at `start` (the admission
    /// instant).
    ///
    /// # Panics
    ///
    /// Panics on a zero-capacity/period budget or `capacity > period`
    /// (admission validates budgets before constructing servers).
    #[must_use]
    pub fn new(tenant: TenantId, budget: TenantBudget, start: Instant) -> Self {
        ReservationServer {
            tenant,
            server: AperiodicServer::new_at(budget.kind, budget.capacity, budget.period, start),
            deferrals: 0,
            overrun_charges: 0,
        }
    }

    /// The tenant this reservation belongs to.
    #[must_use]
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The budget replenished each period.
    #[must_use]
    pub fn capacity(&self) -> Duration {
        self.server.capacity()
    }

    /// The replenishment period.
    #[must_use]
    pub fn period(&self) -> Duration {
        self.server.period()
    }

    /// The reservation's utilisation `C_s / T_s`.
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        self.server.utilisation()
    }

    /// Charges `demand` (a dispatched job's selected-version WCET)
    /// against the budget at `now`. All-or-nothing: returns `true` and
    /// consumes `demand` if it fits in the budget available at `now`,
    /// otherwise consumes nothing, counts a deferral and returns `false`
    /// (the engine requeues the job for a later round).
    pub fn try_charge(&mut self, now: Instant, demand: Duration) -> bool {
        if self.server.available_at(now) >= demand {
            let granted = self.server.serve(now, demand);
            debug_assert_eq!(granted, demand);
            true
        } else {
            self.deferrals += 1;
            false
        }
    }

    /// Charges a WCET *overrun* against the budget at `now`: the job
    /// already ran `overage` beyond what `try_charge` reserved at
    /// dispatch, so that extra time is billed to this tenant —
    /// unconditionally, clamped to the budget that remains — instead of
    /// silently eating other tenants' reservations. Returns how much was
    /// actually recovered from the remaining budget.
    pub fn charge_overrun(&mut self, now: Instant, overage: Duration) -> Duration {
        self.overrun_charges += 1;
        self.server.serve(now, overage)
    }

    /// How many overruns were billed against this reservation.
    #[must_use]
    pub fn overrun_count(&self) -> u64 {
        self.overrun_charges
    }

    /// Total processor time charged so far.
    #[must_use]
    pub fn total_charged(&self) -> Duration {
        self.server.total_served()
    }

    /// How many dispatch attempts were deferred for lack of budget.
    #[must_use]
    pub fn deferral_count(&self) -> u64 {
        self.deferrals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn at(v: u64) -> Instant {
        Instant::ZERO + ms(v)
    }

    #[test]
    fn deferrable_budget_persists() {
        let mut s = AperiodicServer::new(ServerKind::Deferrable, ms(2), ms(10));
        assert_eq!(s.available_at(at(0)), ms(2));
        // Nothing served; budget still there late in the period.
        assert_eq!(s.available_at(at(9)), ms(2));
        assert_eq!(s.serve(at(9), ms(1)), ms(1));
        assert_eq!(s.available_at(at(9)), ms(1));
        // Replenished to full at t=10.
        assert_eq!(s.available_at(at(10)), ms(2));
        assert_eq!(s.replenishment_count(), 1);
    }

    #[test]
    fn polling_budget_is_lost_when_idle() {
        let mut s = AperiodicServer::new(ServerKind::Polling, ms(2), ms(10));
        s.poll_idle(at(0));
        assert_eq!(s.available_at(at(5)), Duration::ZERO, "discarded");
        // Back at the next replenishment.
        assert_eq!(s.available_at(at(10)), ms(2));
    }

    #[test]
    fn service_is_budget_bounded() {
        let mut s = AperiodicServer::new(ServerKind::Deferrable, ms(3), ms(10));
        assert_eq!(s.serve(at(1), ms(5)), ms(3), "capped at the budget");
        assert_eq!(s.serve(at(2), ms(5)), Duration::ZERO, "exhausted");
        // Next period: more budget.
        assert_eq!(s.serve(at(11), ms(5)), ms(3));
        assert_eq!(s.total_served(), ms(6));
    }

    #[test]
    fn multiple_missed_replenishments_catch_up() {
        let mut s = AperiodicServer::new(ServerKind::Deferrable, ms(2), ms(10));
        let _ = s.serve(at(0), ms(2));
        // Jump far ahead: budget refilled (once, not accumulated).
        assert_eq!(s.available_at(at(55)), ms(2));
        assert_eq!(s.replenishment_count(), 5);
    }

    #[test]
    fn utilisation_and_bounds() {
        let s = AperiodicServer::new(ServerKind::Deferrable, ms(2), ms(10));
        assert!((s.utilisation() - 0.2).abs() < 1e-12);
        // c = 5ms needs ceil(5/2)=3 periods + 1 waiting = 40ms.
        assert_eq!(s.response_bound(ms(5)), ms(40));
        // Tiny job: 1 period of service + 1 waiting.
        assert_eq!(s.response_bound(ms(1)), ms(20));
    }

    #[test]
    #[should_panic(expected = "capacity cannot exceed")]
    fn capacity_over_period_rejected() {
        let _ = AperiodicServer::new(ServerKind::Polling, ms(11), ms(10));
    }

    #[test]
    fn anchored_server_replenishes_from_start() {
        let mut s = AperiodicServer::new_at(ServerKind::Deferrable, ms(2), ms(10), at(25));
        let _ = s.serve(at(26), ms(2));
        assert_eq!(s.available_at(at(34)), Duration::ZERO);
        // First replenishment at 25 + 10 = 35, not at 30.
        assert_eq!(s.available_at(at(35)), ms(2));
    }

    #[test]
    fn reservation_charge_is_all_or_nothing() {
        let budget = TenantBudget::deferrable(ms(3), ms(10));
        assert!((budget.utilisation() - 0.3).abs() < 1e-12);
        let mut r = ReservationServer::new(TenantId::new(1), budget, at(0));
        assert_eq!(r.tenant(), TenantId::new(1));
        assert!(r.try_charge(at(1), ms(2)));
        // 1ms left: a 2ms demand must consume nothing.
        assert!(!r.try_charge(at(2), ms(2)));
        assert_eq!(r.deferral_count(), 1);
        assert!(
            r.try_charge(at(3), ms(1)),
            "untouched remainder still serves"
        );
        // Replenished for the next period.
        assert!(r.try_charge(at(10), ms(3)));
        assert_eq!(r.total_charged(), ms(6));
    }

    #[test]
    fn overrun_charge_is_clamped_but_always_counted() {
        let mut r = ReservationServer::new(
            TenantId::new(2),
            TenantBudget::deferrable(ms(3), ms(10)),
            at(0),
        );
        assert!(r.try_charge(at(0), ms(2)));
        // 1ms budget left; a 4ms overrun recovers only that 1ms.
        assert_eq!(r.charge_overrun(at(1), ms(4)), ms(1));
        assert_eq!(r.overrun_count(), 1);
        // Budget now exhausted: further dispatches defer.
        assert!(!r.try_charge(at(2), ms(1)));
        // Overrun with nothing left recovers zero but is still counted.
        assert_eq!(r.charge_overrun(at(3), ms(1)), Duration::ZERO);
        assert_eq!(r.overrun_count(), 2);
        // Replenishment restores normal service.
        assert!(r.try_charge(at(10), ms(3)));
    }
}
