//! Reusable action buffers for the allocation-free dispatch path.
//!
//! Every engine entry point historically returned a fresh
//! `Vec<Action>`, which put one heap allocation (often more, after
//! growth) on every scheduler interaction — exactly the path whose
//! latency the paper's Figure 2 measures. An [`ActionSink`] is a
//! caller-owned buffer the engine appends into instead: the driver
//! clears and re-passes the same sink each interaction, so in steady
//! state the dispatch path performs no heap allocation at all.

use crate::engine::Action;

/// A reusable buffer of scheduling [`Action`]s.
///
/// The engine's `*_into` entry points **append** to the sink (they do
/// not clear it), so a driver may batch several engine calls into one
/// sink and apply the actions once. Call [`ActionSink::clear`] between
/// interactions to reuse the storage.
///
/// ## Batch-completion contract
///
/// `OnlineEngine::on_jobs_completed_into` retires **all** completions
/// of a burst before its single dispatch round, and the actions of
/// that round land in the sink **in one contiguous run** at the end:
/// every `Dispatch`/`Preempt`/`Boost` appended by the batch call
/// already accounts for the whole burst (freed workers, released
/// accelerators, fired DAG successors). A driver must therefore apply
/// a sink's actions only *after* the engine call that appended them
/// returns — never interleave application with further completions of
/// the same burst — and must not assume one action run per completion:
/// a batch of N completions may append anywhere from zero to more than
/// N actions, in selection order, not completion order.
#[derive(Debug, Default, Clone)]
pub struct ActionSink {
    actions: Vec<Action>,
}

impl ActionSink {
    /// An empty sink; storage grows on first use and is then retained.
    #[must_use]
    pub fn new() -> Self {
        ActionSink::default()
    }

    /// A sink pre-sized for `n` actions.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        ActionSink {
            actions: Vec::with_capacity(n),
        }
    }

    /// Appends one action.
    #[inline]
    pub fn push(&mut self, action: Action) {
        self.actions.push(action);
    }

    /// The buffered actions, in emission order.
    #[must_use]
    pub fn as_slice(&self) -> &[Action] {
        &self.actions
    }

    /// Number of buffered actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// `true` when no actions are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Empties the sink, retaining its storage.
    pub fn clear(&mut self) {
        self.actions.clear();
    }

    /// Removes and yields the buffered actions, retaining storage.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Action> {
        self.actions.drain(..)
    }

    /// Consumes the sink into a plain `Vec` (the allocating legacy
    /// representation).
    #[must_use]
    pub fn into_vec(self) -> Vec<Action> {
        self.actions
    }
}

impl Extend<Action> for ActionSink {
    fn extend<T: IntoIterator<Item = Action>>(&mut self, iter: T) {
        self.actions.extend(iter);
    }
}

impl<'a> IntoIterator for &'a ActionSink {
    type Item = &'a Action;
    type IntoIter = std::slice::Iter<'a, Action>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::ids::{JobId, WorkerId};

    #[test]
    fn push_clear_retains_capacity() {
        let mut s = ActionSink::with_capacity(4);
        s.push(Action::Preempt {
            worker: WorkerId::new(0),
            job: JobId::new(1),
        });
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        let cap_ptr = s.as_slice().as_ptr();
        s.clear();
        assert!(s.is_empty());
        s.push(Action::Preempt {
            worker: WorkerId::new(1),
            job: JobId::new(2),
        });
        assert_eq!(s.as_slice().as_ptr(), cap_ptr, "storage reused");
    }

    #[test]
    fn drain_yields_in_order_and_retains_storage() {
        let mut s = ActionSink::new();
        for i in 0..3 {
            s.push(Action::Preempt {
                worker: WorkerId::new(i),
                job: JobId::new(u64::from(i)),
            });
        }
        let jobs: Vec<JobId> = s
            .drain()
            .map(|a| match a {
                Action::Preempt { job, .. } => job,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(jobs, vec![JobId::new(0), JobId::new(1), JobId::new(2)]);
        assert!(s.is_empty());
    }
}
