//! # yasmin-sched
//!
//! The scheduling engine of YASMIN (Rouxel, Altmeyer & Grelck,
//! Middleware 2021): pure scheduling logic with no threads and no clock,
//! driven by events and answering with actions. Both the discrete-event
//! simulator (`yasmin-sim`) and the real-thread runtime (`yasmin-rt`)
//! drive this same engine.
//!
//! * [`job`] — jobs (task activations) and their queue ordering;
//! * [`queue`] — bounded priority-ordered ready queues (Fig. 1a/1b);
//! * [`select`] — the multi-version selection engine (§3.2): energy,
//!   energy/time trade-off, mode, permission mask, user-defined, and the
//!   shortest-WCET default;
//! * [`accel`] — accelerator arbitration with Priority Inheritance;
//! * [`engine`] — the on-line global/partitioned scheduler (§3.3);
//! * [`shard`] — per-worker engine shards for partitioned mapping: one
//!   independent scheduler state per worker, fed through the lock-free
//!   command mailbox (`yasmin_sync::mailbox`);
//! * [`msg`] — the typed priority message plane: dual-lane
//!   (normal/high) channels over the wait-free SPSC rings, whose high
//!   lane boosts the receiving task through the engine's PIP machinery;
//! * [`offline`] — off-line table synthesis, validation, and the run-time
//!   dispatcher (§3.4, Fig. 1c);
//! * [`server`] — polling/deferrable aperiodic servers (the paper's §7
//!   future-work item, implemented), plus per-tenant reservation
//!   servers backing admission budgets;
//! * [`admission`] — on-line admission control: schedulability-checks an
//!   arriving tenant against the live set and produces the merged task
//!   set to splice into a running engine, with structured refusals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod admission;
pub mod engine;
pub mod job;
pub mod msg;
pub mod offline;
pub mod queue;
pub mod select;
pub mod server;
pub mod shard;
pub mod sink;

pub use accel::AccelManager;
pub use admission::{AdmissionControl, AdmissionError, BoundViolation};
pub use engine::{
    Action, EngineStats, JobOutcome, OnlineEngine, RemoteActivation, RunningJob, StealHint,
};
pub use job::{Job, JobBatch, MAX_STEAL_BATCH};
pub use msg::{ChannelBuilder, MsgEvent, MsgNotify, NotifyHandle, Receiver, SendError, Sender};
pub use offline::{
    synthesize, synthesize_strict, OfflineDispatcher, ScheduleTable, SynthesisOptions,
};
pub use queue::ReadyQueue;
pub use select::{rank_versions, rank_versions_into, RankBuf};
pub use server::{AperiodicServer, ReservationServer, ServerKind, TenantBudget};
pub use shard::{validate_sharding, EngineShard, ShardCmd};
pub use sink::ActionSink;
