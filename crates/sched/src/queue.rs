//! Priority-ordered ready queues.
//!
//! With global scheduling "all worker threads share a common ready queue,
//! whereas with partitioned scheduling each worker thread has its own
//! ready queue" (§3.3, Fig. 1a/1b). The queue is a binary heap over
//! [`Job::queue_key`] with a fixed capacity decided at `start()` — no
//! allocation on the hot path.
//!
//! Cancellation uses *tombstones* (lazy deletion): [`ReadyQueue::remove`]
//! marks the job id dead in O(n) scan time without disturbing the heap,
//! and [`ReadyQueue::pop`]/[`ReadyQueue::peek`] discard dead entries as
//! they surface — amortised O(log n) per pop, instead of the former
//! whole-heap rebuild (O(n log n)) on every removal.

use crate::job::Job;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use yasmin_core::error::{Error, Result};
use yasmin_core::ids::JobId;

/// A bounded, priority-ordered job queue (smaller priority value pops
/// first; ties broken by release time, then job id).
#[derive(Debug)]
pub struct ReadyQueue {
    heap: BinaryHeap<Reverse<OrderedJob>>,
    /// Ids removed but still physically present in `heap` (lazy delete).
    tombstones: Vec<JobId>,
    capacity: usize,
    pushes: u64,
    pops: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OrderedJob(Job);

impl Ord for OrderedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.queue_key().cmp(&other.0.queue_key())
    }
}

impl PartialOrd for OrderedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl ReadyQueue {
    /// Creates a queue bounded to `capacity` pending jobs, pre-allocating
    /// the backing storage.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ReadyQueue {
            heap: BinaryHeap::with_capacity(capacity),
            tombstones: Vec::new(),
            capacity,
            pushes: 0,
            pops: 0,
        }
    }

    /// Inserts a job.
    ///
    /// # Errors
    ///
    /// [`Error::CapacityExceeded`] when the bound would be crossed — a
    /// sizing error, not a runtime condition to paper over.
    #[inline]
    pub fn push(&mut self, job: Job) -> Result<()> {
        if self.len() >= self.capacity {
            return Err(Error::CapacityExceeded {
                what: "ready queue",
                capacity: self.capacity,
            });
        }
        if !self.tombstones.is_empty()
            && (self.heap.len() >= self.capacity || self.tombstones.contains(&job.id))
        {
            // Compact (rare) when dead entries would either grow the
            // pre-allocated heap past its bound, or when the pushed id
            // matches a tombstone — re-pushing a previously removed id
            // must not let the tombstone swallow the new live entry.
            self.compact();
        }
        self.heap.push(Reverse(OrderedJob(job)));
        self.pushes += 1;
        Ok(())
    }

    /// Removes and returns the most urgent job, discarding tombstoned
    /// entries as they surface (amortised O(log n)).
    #[inline]
    pub fn pop(&mut self) -> Option<Job> {
        if self.tombstones.is_empty() {
            // Fast path: no pending lazy deletions.
            let j = self.heap.pop().map(|Reverse(OrderedJob(j))| j);
            if j.is_some() {
                self.pops += 1;
            }
            return j;
        }
        while let Some(Reverse(OrderedJob(j))) = self.heap.pop() {
            if self.clear_tombstone(j.id) {
                continue;
            }
            self.pops += 1;
            return Some(j);
        }
        None
    }

    /// The most urgent job without removing it. Takes `&mut self` to
    /// purge tombstoned entries off the top of the heap.
    #[inline]
    #[must_use]
    pub fn peek(&mut self) -> Option<&Job> {
        if !self.tombstones.is_empty() {
            while let Some(Reverse(OrderedJob(j))) = self.heap.peek() {
                if self.tombstones.contains(&j.id) {
                    let Some(Reverse(OrderedJob(dead))) = self.heap.pop() else {
                        unreachable!("peek returned Some")
                    };
                    self.clear_tombstone(dead.id);
                } else {
                    break;
                }
            }
        }
        self.heap.peek().map(|Reverse(OrderedJob(j))| j)
    }

    /// The most urgent live job **without** mutating the queue.
    ///
    /// [`ReadyQueue::peek`] takes `&mut self` because it purges
    /// tombstoned entries off the top of the heap as a side effect —
    /// that contract leaks into APIs (like the engine shards) that want
    /// to inspect a queue through a shared reference. `peek_hint` is the
    /// immutable alternative: it scans the live entries in O(n) instead
    /// of compacting, so it is for introspection (telemetry, work
    /// stealing candidates), not the dispatch hot path.
    #[must_use]
    pub fn peek_hint(&self) -> Option<&Job> {
        self.iter().min_by_key(|j| j.queue_key())
    }

    /// Removes a specific job by tombstoning it: the heap entry stays in
    /// place and is discarded when it reaches the top (used when
    /// cancelling).
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        if self.tombstones.contains(&id) {
            return None;
        }
        let found = self
            .heap
            .iter()
            .map(|Reverse(OrderedJob(j))| j)
            .find(|j| j.id == id)
            .copied();
        if found.is_some() {
            self.tombstones.push(id);
        }
        found
    }

    /// Drops `id` from the tombstone list; `true` if it was present.
    fn clear_tombstone(&mut self, id: JobId) -> bool {
        if let Some(pos) = self.tombstones.iter().position(|&t| t == id) {
            self.tombstones.swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Rebuilds the heap without its tombstoned entries (rare: only when
    /// dead entries block a push at the physical capacity bound).
    fn compact(&mut self) {
        let mut items = std::mem::take(&mut self.heap).into_vec();
        items.retain(|Reverse(OrderedJob(j))| !self.tombstones.contains(&j.id));
        self.tombstones.clear();
        self.heap = BinaryHeap::from(items);
    }

    /// Number of queued (live) jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len() - self.tombstones.len()
    }

    /// `true` if no live jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total pushes since creation (overhead accounting).
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total pops since creation (overhead accounting).
    #[must_use]
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Iterates over live queued jobs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.heap
            .iter()
            .map(|Reverse(OrderedJob(j))| j)
            .filter(|j| !self.tombstones.contains(&j.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::ids::TaskId;
    use yasmin_core::priority::Priority;
    use yasmin_core::time::{Duration, Instant};

    fn job(id: u64, prio: u64) -> Job {
        Job {
            id: JobId::new(id),
            task: TaskId::new(id as u32),
            seq: 0,
            release: Instant::ZERO,
            graph_release: Instant::ZERO,
            abs_deadline: Instant::ZERO + Duration::from_millis(1),
            priority: Priority::new(prio),
            preempted: false,
        }
    }

    #[test]
    fn pops_in_priority_order() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(1, 30)).unwrap();
        q.push(job(2, 10)).unwrap();
        q.push(job(3, 20)).unwrap();
        assert_eq!(q.peek().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().priority, Priority::new(10));
        assert_eq!(q.pop().unwrap().priority, Priority::new(20));
        assert_eq!(q.pop().unwrap().priority, Priority::new(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_priority_breaks_ties_deterministically() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(5, 10)).unwrap();
        q.push(job(2, 10)).unwrap();
        // Same priority & release: lower JobId first.
        assert_eq!(q.pop().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().id, JobId::new(5));
    }

    #[test]
    fn capacity_enforced() {
        let mut q = ReadyQueue::with_capacity(2);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        assert!(matches!(
            q.push(job(3, 3)),
            Err(Error::CapacityExceeded { capacity: 2, .. })
        ));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_specific_job() {
        let mut q = ReadyQueue::with_capacity(8);
        for i in 1..=4 {
            q.push(job(i, i)).unwrap();
        }
        let removed = q.remove(JobId::new(3)).unwrap();
        assert_eq!(removed.id, JobId::new(3));
        assert_eq!(q.len(), 3);
        assert!(q.remove(JobId::new(99)).is_none());
        // Remaining order intact.
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert_eq!(q.pop().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().id, JobId::new(4));
    }

    #[test]
    fn pop_after_remove_preserves_order() {
        // Tombstoned entries must never surface from pop/peek, and the
        // surviving order must match a queue that never held them.
        let mut q = ReadyQueue::with_capacity(16);
        for i in 1..=8 {
            q.push(job(i, i)).unwrap();
        }
        assert!(q.remove(JobId::new(1)).is_some()); // current top
        assert!(q.remove(JobId::new(5)).is_some()); // mid-heap
        assert_eq!(q.len(), 6);
        assert_eq!(q.peek().unwrap().id, JobId::new(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id.raw()).collect();
        assert_eq!(order, vec![2, 3, 4, 6, 7, 8]);
        assert!(q.is_empty());
        // Removing an already-removed id is a no-op.
        assert!(q.remove(JobId::new(5)).is_none());
    }

    #[test]
    fn peek_hint_is_immutable_and_skips_tombstones() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(1, 10)).unwrap();
        q.push(job(2, 20)).unwrap();
        q.push(job(3, 30)).unwrap();
        assert!(q.remove(JobId::new(1)).is_some()); // tombstone the top
        let hint = |q: &ReadyQueue| q.peek_hint().map(|j| j.id);
        assert_eq!(hint(&q), Some(JobId::new(2)), "hint skips the dead top");
        assert_eq!(hint(&q), Some(JobId::new(2)), "no compaction side effect");
        // peek (mutable) agrees with the hint.
        assert_eq!(q.peek().map(|j| j.id), Some(JobId::new(2)));
        assert!(ReadyQueue::with_capacity(2).peek_hint().is_none());
    }

    #[test]
    fn interleaved_remove_push_pop() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(1, 10)).unwrap();
        q.push(job(2, 20)).unwrap();
        q.push(job(3, 30)).unwrap();
        assert_eq!(q.remove(JobId::new(2)).unwrap().id, JobId::new(2));
        // A new, more urgent job after the removal.
        q.push(job(4, 5)).unwrap();
        assert_eq!(q.pop().unwrap().id, JobId::new(4));
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert_eq!(q.pop().unwrap().id, JobId::new(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_after_remove_of_same_id_is_live() {
        // Re-pushing an id that was removed must not be swallowed by the
        // stale tombstone, nor may the dead pre-remove entry resurface.
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(5, 30)).unwrap();
        q.push(job(1, 20)).unwrap();
        assert_eq!(q.remove(JobId::new(5)).unwrap().priority, Priority::new(30));
        // Same id, now more urgent than job 1.
        q.push(job(5, 10)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().priority, Priority::new(10));
        assert_eq!(q.pop().unwrap().priority, Priority::new(10));
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn tombstones_free_capacity_for_pushes() {
        // Removed jobs must not count against the bound, even while
        // their dead entries still sit in the heap.
        let mut q = ReadyQueue::with_capacity(2);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        assert!(q.remove(JobId::new(2)).is_some());
        assert_eq!(q.len(), 1);
        q.push(job(3, 3)).unwrap(); // forces compaction, not growth
        assert!(matches!(
            q.push(job(4, 4)),
            Err(Error::CapacityExceeded { capacity: 2, .. })
        ));
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert_eq!(q.pop().unwrap().id, JobId::new(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn op_counters() {
        let mut q = ReadyQueue::with_capacity(4);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        let _ = q.pop();
        assert_eq!(q.pushes(), 2);
        assert_eq!(q.pops(), 1);
        let _ = q.pop();
        let _ = q.pop(); // empty pop does not count
        assert_eq!(q.pops(), 2);
    }
}
