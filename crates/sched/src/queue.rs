//! Priority-ordered ready queues.
//!
//! With global scheduling "all worker threads share a common ready queue,
//! whereas with partitioned scheduling each worker thread has its own
//! ready queue" (§3.3, Fig. 1a/1b). The queue is an **index-tracked
//! 4-ary heap** over [`Job::queue_key`] with a fixed capacity decided at
//! `start()` — no allocation on any path after construction.
//!
//! The heap is laid out **struct-of-arrays**: the array that sifts is a
//! dense vector of 32-byte nodes — the bare queue key (priority word,
//! release instant, job id: the exact words every comparison reads)
//! packed with the payload-slab slot and the index back-pointer — while
//! the [`Job`] payloads themselves sit in a stable slab that never
//! moves. The PR 4 layout kept the full `Job` inline in each heap
//! entry, so at multi-thousand-job occupancy every sift level dragged
//! ~64 payload bytes per compared child through the cache; here the
//! comparison loop touches only the packed nodes (the priority word
//! decides almost every comparison, the release/id words break ties) in
//! a single bounds-checked stream — half the traffic, two nodes per
//! cache line, with a node's four heap children adjacent — and payloads
//! are read exactly once, on pop, peek or remove.
//!
//! Every heap entry is tracked by an open-addressed index slab at most
//! half full, keyed by a Fibonacci (multiplicative) hash of the job id
//! (engines number jobs sequentially — shards stamp their shard index
//! into the high bits — so masking raw low bits would pile the live
//! window into one long occupied run and make probe scans O(queue);
//! the multiplicative spread keeps runs O(1) expected). The slab stores
//! the full [`JobId`] next to the heap position, so a lookup is
//! generation-checked: a colliding foreign id probes on instead of
//! aliasing. Deletion uses backward-shift compaction (no probe
//! tombstones), keeping lookups O(1) expected forever — there is no
//! lazy-delete state anywhere, so `len()` is exact,
//! [`ReadyQueue::peek`] takes `&self`, and removal never scans.
//!
//! | operation | cost |
//! |-----------|------|
//! | [`ReadyQueue::push`]   | O(log n) sift-up, O(1) index insert |
//! | [`ReadyQueue::pop`]    | O(log n) sift-down, O(1) index delete |
//! | [`ReadyQueue::remove`] | O(log n) sift from the tracked position |
//! | [`ReadyQueue::peek`] / [`ReadyQueue::peek_hint`] | O(1), `&self` |
//! | [`ReadyQueue::scan_in_order`] | O(v·D) comparisons for v visited |
//!
//! Earlier revisions used a `BinaryHeap` with tombstoned lazy deletion:
//! `remove` was an O(n) scan, `peek` needed `&mut self` to purge dead
//! entries, and a `compact()` rebuild guarded the capacity bound. The
//! index heap removes all three caveats; cheap `remove` + shared-ref
//! `peek` are also what work stealing needs to probe a victim queue, and
//! the ordered scan is what **batch** stealing uses to enumerate the k
//! most urgent stealable jobs without detaching anything.

use crate::job::Job;
use yasmin_core::error::{Error, Result};
use yasmin_core::ids::JobId;
use yasmin_core::priority::Priority;
use yasmin_core::time::Instant;

/// Heap arity: 4 halves the depth of a binary heap for the queue sizes
/// the engine runs (dozens to a few thousand ready jobs), and the
/// four-child minimum scan stays within two cache lines of packed keys.
const D: usize = 4;

/// Marker for an unoccupied index-slab slot.
const EMPTY: u32 = u32::MAX;

/// The words the hot comparison loop reads — exactly
/// [`Job::queue_key`]'s return, kept dense so sifts never touch the
/// payload slab.
type Key = (Priority, Instant, JobId);

/// One slot of the open-addressed id → heap-position index.
#[derive(Debug, Clone, Copy)]
struct IndexSlot {
    /// Full id stored for the generation check: a probe matches only on
    /// id equality, never on the hashed home slot alone.
    id: JobId,
    /// Position in the heap array, or [`EMPTY`].
    pos: u32,
}

/// One heap entry: the queue key first (so the sift and scan comparison
/// loops read the leading words of a single dense stream), then where
/// the payload lives in the slab and which index-slab slot tracks this
/// entry (so sift moves update the index by direct indexing — no
/// hashing or probing anywhere on the sift path). 32 bytes: two per
/// cache line, and a node's four heap children sit adjacent.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// The comparison words — exactly [`Job::queue_key`]'s return.
    key: Key,
    /// Payload-slab slot holding the [`Job`]; stable for the entry's
    /// whole residence — sifts move `Node`s, never payloads.
    slot: u32,
    /// The index-slab slot tracking this entry.
    islot: u32,
}

/// A bounded, priority-ordered job queue (smaller priority value pops
/// first; ties broken by release time, then job id).
#[derive(Debug)]
pub struct ReadyQueue {
    /// Dense 4-ary min-heap of key-first nodes — the only array the
    /// sift and peek comparison loops touch.
    nodes: Vec<Node>,
    /// Stable payload slab; `free` lists vacated slots for reuse.
    slab: Vec<Job>,
    free: Vec<u32>,
    /// Open-addressed index over the heap, ≥ 2× capacity and a power of
    /// two, so a free slot always terminates a probe.
    index: Vec<IndexSlot>,
    /// `index.len() - 1`, for masked probing.
    mask: usize,
    capacity: usize,
    pushes: u64,
    pops: u64,
}

impl ReadyQueue {
    /// Creates a queue bounded to `capacity` pending jobs, pre-allocating
    /// the backing storage (node array, payload slab, index slab).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        ReadyQueue {
            nodes: Vec::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            index: vec![
                IndexSlot {
                    id: JobId::new(0),
                    pos: EMPTY,
                };
                slots
            ],
            mask: slots - 1,
            capacity,
            pushes: 0,
            pops: 0,
        }
    }

    /// The index-slab slot an id probes from: a Fibonacci hash (the
    /// golden-ratio multiplier's high bits), so the sequential ids the
    /// engine mints scatter uniformly instead of forming one contiguous
    /// occupied run whose probe scans would grow with the queue.
    #[inline]
    fn home(&self, id: JobId) -> usize {
        let h = id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// The slab slot holding `id`, or `None`.
    #[inline]
    fn index_lookup(&self, id: JobId) -> Option<usize> {
        let mut i = self.home(id);
        loop {
            let slot = self.index[i];
            if slot.pos == EMPTY {
                return None;
            }
            if slot.id == id {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Records `id` at heap position `pos` (id must not be present);
    /// returns the slab slot chosen.
    #[inline]
    fn index_insert(&mut self, id: JobId, pos: u32) -> u32 {
        let mut i = self.home(id);
        while self.index[i].pos != EMPTY {
            debug_assert_ne!(self.index[i].id, id, "duplicate live job id");
            i = (i + 1) & self.mask;
        }
        self.index[i] = IndexSlot { id, pos };
        i as u32
    }

    /// Deletes slab slot `i` by backward-shift compaction: entries in
    /// the probe chain whose home precedes the freed slot move back (the
    /// slab never accumulates probe tombstones), and each moved entry's
    /// heap back-pointer is re-aimed at its new slot.
    fn index_delete(&mut self, mut i: usize) {
        loop {
            self.index[i].pos = EMPTY;
            let mut j = i;
            loop {
                j = (j + 1) & self.mask;
                if self.index[j].pos == EMPTY {
                    return;
                }
                let h = self.home(self.index[j].id);
                // Keep the entry where it is iff its home lies cyclically
                // in (i, j]; otherwise it belongs at or before the hole.
                let stays = (j.wrapping_sub(h) & self.mask) < (j.wrapping_sub(i) & self.mask);
                if !stays {
                    self.index[i] = self.index[j];
                    self.nodes[self.index[i].pos as usize].islot = i as u32;
                    i = j;
                    break;
                }
            }
        }
    }

    /// Moves the entry at `pos` up towards the root until the heap
    /// property holds; only 32-byte nodes move (payloads stay put in
    /// the slab), and every shifted entry's index-slab slot is updated
    /// by direct indexing.
    fn sift_up(&mut self, mut pos: usize) {
        let node = self.nodes[pos];
        while pos > 0 {
            let parent = (pos - 1) / D;
            let pn = self.nodes[parent];
            if pn.key <= node.key {
                break;
            }
            self.nodes[pos] = pn;
            self.index[pn.islot as usize].pos = pos as u32;
            pos = parent;
        }
        self.nodes[pos] = node;
        self.index[node.islot as usize].pos = pos as u32;
    }

    /// Moves the entry at `pos` down towards the leaves until the heap
    /// property holds. The four-child minimum scan reads the leading
    /// key words of the dense node array only.
    fn sift_down(&mut self, mut pos: usize) {
        let node = self.nodes[pos];
        let n = self.nodes.len();
        loop {
            let first = pos * D + 1;
            if first >= n {
                break;
            }
            let mut best = first;
            let mut best_key = self.nodes[first].key;
            for c in (first + 1)..(first + D).min(n) {
                let k = self.nodes[c].key;
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if node.key <= best_key {
                break;
            }
            let cn = self.nodes[best];
            self.nodes[pos] = cn;
            self.index[cn.islot as usize].pos = pos as u32;
            pos = best;
        }
        self.nodes[pos] = node;
        self.index[node.islot as usize].pos = pos as u32;
    }

    /// Detaches and returns the job at heap position `pos`, restoring
    /// the heap property around the hole and recycling the payload slot.
    fn remove_at(&mut self, pos: usize) -> Job {
        let node = self.nodes[pos];
        let job = self.slab[node.slot as usize];
        self.free.push(node.slot);
        self.index_delete(node.islot as usize);
        let last = self.nodes.pop().expect("pos is in bounds");
        if pos < self.nodes.len() {
            self.nodes[pos] = last;
            self.index[last.islot as usize].pos = pos as u32;
            // The filler came from a leaf: it may be out of order in
            // either direction relative to its new neighbourhood.
            if pos > 0 && last.key < self.nodes[(pos - 1) / D].key {
                self.sift_up(pos);
            } else {
                self.sift_down(pos);
            }
        }
        job
    }

    /// Inserts a job. Live job ids must be unique per queue (the engine
    /// numbers jobs monotonically, so this holds by construction; an id
    /// may be re-pushed after its previous instance left the queue).
    ///
    /// # Errors
    ///
    /// [`Error::CapacityExceeded`] when the bound would be crossed — a
    /// sizing error, not a runtime condition to paper over.
    #[inline]
    pub fn push(&mut self, job: Job) -> Result<()> {
        if self.nodes.len() >= self.capacity {
            return Err(Error::CapacityExceeded {
                what: "ready queue",
                capacity: self.capacity,
            });
        }
        let pos = self.nodes.len();
        let islot = self.index_insert(job.id, pos as u32);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = job;
                s
            }
            None => {
                self.slab.push(job);
                (self.slab.len() - 1) as u32
            }
        };
        self.nodes.push(Node {
            key: job.queue_key(),
            slot,
            islot,
        });
        self.sift_up(pos);
        self.pushes += 1;
        Ok(())
    }

    /// Removes and returns the most urgent job (O(log n)).
    #[inline]
    pub fn pop(&mut self) -> Option<Job> {
        if self.nodes.is_empty() {
            return None;
        }
        self.pops += 1;
        Some(self.remove_at(0))
    }

    /// The most urgent job without removing it — O(1), through a shared
    /// reference, with no side effect.
    #[inline]
    #[must_use]
    pub fn peek(&self) -> Option<&Job> {
        self.nodes.first().map(|n| &self.slab[n.slot as usize])
    }

    /// The most urgent job's priority — what the dispatch paths that
    /// only compare urgency (the preemption check) need. Reads the root
    /// node's leading key word alone; the payload slab is never touched.
    #[inline]
    #[must_use]
    pub fn peek_priority(&self) -> Option<Priority> {
        self.nodes.first().map(|n| n.key.0)
    }

    /// Alias of [`ReadyQueue::peek`], kept for the callers (telemetry,
    /// work-stealing probes) that adopted it while `peek` still needed
    /// `&mut self` to purge lazily-deleted entries. Both are now O(1)
    /// and side-effect-free.
    #[inline]
    #[must_use]
    pub fn peek_hint(&self) -> Option<&Job> {
        self.peek()
    }

    /// Visits queued jobs in ascending [`Job::queue_key`] order without
    /// mutating the queue, stopping when `visit` returns `false`.
    ///
    /// `frontier` is caller-retained scratch (cleared here, grown only
    /// to its high-water mark): the candidate set starts at the root and
    /// gains at most `D - 1` net entries per visit, so enumerating the
    /// k most urgent jobs costs O(k²·D) key comparisons on a frontier
    /// that never exceeds `k·(D-1) + 1` slots — tiny for the batch
    /// sizes work stealing uses, and allocation-free once warm.
    ///
    /// Visit order is deterministic: live keys are unique (the job id
    /// word is unique per queue), so the frontier minimum is unique at
    /// every step regardless of the frontier's internal layout.
    pub fn scan_in_order(&self, frontier: &mut Vec<u32>, mut visit: impl FnMut(&Job) -> bool) {
        frontier.clear();
        if self.nodes.is_empty() {
            return;
        }
        frontier.push(0);
        while !frontier.is_empty() {
            let mut mi = 0;
            for i in 1..frontier.len() {
                if self.nodes[frontier[i] as usize].key < self.nodes[frontier[mi] as usize].key {
                    mi = i;
                }
            }
            let pos = frontier.swap_remove(mi) as usize;
            if !visit(&self.slab[self.nodes[pos].slot as usize]) {
                return;
            }
            let first = pos * D + 1;
            for c in first..(first + D).min(self.nodes.len()) {
                frontier.push(c as u32);
            }
        }
    }

    /// Removes a specific job in O(log n): the index locates its heap
    /// position, the last leaf fills the hole and sifts into place
    /// (used when cancelling, and by work stealing on victim queues).
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        let slot = self.index_lookup(id)?;
        let pos = self.index[slot].pos as usize;
        Some(self.remove_at(pos))
    }

    /// Number of queued jobs (exact — there is no lazy-delete debt).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total pushes since creation (overhead accounting).
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total pops since creation (overhead accounting).
    #[must_use]
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Iterates over queued jobs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.nodes.iter().map(|n| &self.slab[n.slot as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::ids::TaskId;
    use yasmin_core::priority::Priority;
    use yasmin_core::time::{Duration, Instant};

    fn job(id: u64, prio: u64) -> Job {
        Job {
            id: JobId::new(id),
            task: TaskId::new(id as u32),
            seq: 0,
            release: Instant::ZERO,
            graph_release: Instant::ZERO,
            abs_deadline: Instant::ZERO + Duration::from_millis(1),
            priority: Priority::new(prio),
            preempted: false,
        }
    }

    #[test]
    fn pops_in_priority_order() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(1, 30)).unwrap();
        q.push(job(2, 10)).unwrap();
        q.push(job(3, 20)).unwrap();
        assert_eq!(q.peek().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().priority, Priority::new(10));
        assert_eq!(q.pop().unwrap().priority, Priority::new(20));
        assert_eq!(q.pop().unwrap().priority, Priority::new(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_priority_breaks_ties_deterministically() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(5, 10)).unwrap();
        q.push(job(2, 10)).unwrap();
        // Same priority & release: lower JobId first.
        assert_eq!(q.pop().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().id, JobId::new(5));
    }

    #[test]
    fn capacity_enforced() {
        let mut q = ReadyQueue::with_capacity(2);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        assert!(matches!(
            q.push(job(3, 3)),
            Err(Error::CapacityExceeded { capacity: 2, .. })
        ));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_specific_job() {
        let mut q = ReadyQueue::with_capacity(8);
        for i in 1..=4 {
            q.push(job(i, i)).unwrap();
        }
        let removed = q.remove(JobId::new(3)).unwrap();
        assert_eq!(removed.id, JobId::new(3));
        assert_eq!(q.len(), 3);
        assert!(q.remove(JobId::new(99)).is_none());
        // Remaining order intact.
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert_eq!(q.pop().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().id, JobId::new(4));
    }

    #[test]
    fn pop_after_remove_preserves_order() {
        // Removed entries must never surface from pop/peek, and the
        // surviving order must match a queue that never held them.
        let mut q = ReadyQueue::with_capacity(16);
        for i in 1..=8 {
            q.push(job(i, i)).unwrap();
        }
        assert!(q.remove(JobId::new(1)).is_some()); // current top
        assert!(q.remove(JobId::new(5)).is_some()); // mid-heap
        assert_eq!(q.len(), 6);
        assert_eq!(q.peek().unwrap().id, JobId::new(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id.raw()).collect();
        assert_eq!(order, vec![2, 3, 4, 6, 7, 8]);
        assert!(q.is_empty());
        // Removing an already-removed id is a no-op.
        assert!(q.remove(JobId::new(5)).is_none());
    }

    #[test]
    fn peek_is_immutable_and_exact() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(1, 10)).unwrap();
        q.push(job(2, 20)).unwrap();
        q.push(job(3, 30)).unwrap();
        assert!(q.remove(JobId::new(1)).is_some()); // remove the top
        let hint = |q: &ReadyQueue| q.peek_hint().map(|j| j.id);
        assert_eq!(hint(&q), Some(JobId::new(2)), "peek sees the live top");
        assert_eq!(hint(&q), Some(JobId::new(2)), "no side effect");
        assert_eq!(q.peek().map(|j| j.id), Some(JobId::new(2)));
        assert!(ReadyQueue::with_capacity(2).peek_hint().is_none());
    }

    #[test]
    fn interleaved_remove_push_pop() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(1, 10)).unwrap();
        q.push(job(2, 20)).unwrap();
        q.push(job(3, 30)).unwrap();
        assert_eq!(q.remove(JobId::new(2)).unwrap().id, JobId::new(2));
        // A new, more urgent job after the removal.
        q.push(job(4, 5)).unwrap();
        assert_eq!(q.pop().unwrap().id, JobId::new(4));
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert_eq!(q.pop().unwrap().id, JobId::new(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_after_remove_of_same_id_is_live() {
        // Re-pushing an id after its previous instance was removed must
        // enqueue the new instance under its new key.
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(5, 30)).unwrap();
        q.push(job(1, 20)).unwrap();
        assert_eq!(q.remove(JobId::new(5)).unwrap().priority, Priority::new(30));
        // Same id, now more urgent than job 1.
        q.push(job(5, 10)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().priority, Priority::new(10));
        assert_eq!(q.pop().unwrap().priority, Priority::new(10));
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn removal_frees_capacity_for_pushes() {
        // Removed jobs free their slot immediately — the bound is on
        // live jobs and the index holds no lazy-delete debt.
        let mut q = ReadyQueue::with_capacity(2);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        assert!(q.remove(JobId::new(2)).is_some());
        assert_eq!(q.len(), 1);
        q.push(job(3, 3)).unwrap();
        assert!(matches!(
            q.push(job(4, 4)),
            Err(Error::CapacityExceeded { capacity: 2, .. })
        ));
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert_eq!(q.pop().unwrap().id, JobId::new(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn op_counters() {
        let mut q = ReadyQueue::with_capacity(4);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        let _ = q.pop();
        assert_eq!(q.pushes(), 2);
        assert_eq!(q.pops(), 1);
        let _ = q.pop();
        let _ = q.pop(); // empty pop does not count
        assert_eq!(q.pops(), 2);
    }

    #[test]
    fn index_survives_colliding_homes() {
        // Three ids hashing to the same home slot of the 8-slot slab:
        // the full-id check and linear probing must keep them distinct,
        // and backward shift must keep the probe chain unbroken through
        // removals.
        let mask = 7usize; // (4.max(1) * 2).next_power_of_two() - 1
        let home = |id: u64| ((id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & mask;
        let mut colliders = vec![0u64];
        let mut id = 1u64;
        while colliders.len() < 3 {
            if home(id) == home(0) {
                colliders.push(id);
            }
            id += 1;
        }
        let mut q = ReadyQueue::with_capacity(4);
        for (i, &c) in colliders.iter().enumerate() {
            q.push(job(c, 10 * (i as u64 + 1))).unwrap();
        }
        assert_eq!(q.len(), 3);
        // Remove the middle collider; its probe-chain successor must
        // still resolve.
        assert_eq!(
            q.remove(JobId::new(colliders[1])).unwrap().priority,
            Priority::new(20)
        );
        assert_eq!(
            q.remove(JobId::new(colliders[2])).unwrap().priority,
            Priority::new(30)
        );
        assert_eq!(q.pop().unwrap().id, JobId::new(colliders[0]));
        assert!(q.is_empty());
    }

    #[test]
    fn scan_in_order_enumerates_by_key_without_mutating() {
        let mut q = ReadyQueue::with_capacity(16);
        for (id, prio) in [(1, 40), (2, 10), (3, 30), (4, 20), (5, 50), (6, 5)] {
            q.push(job(id, prio)).unwrap();
        }
        let mut frontier = Vec::new();
        let mut seen = Vec::new();
        q.scan_in_order(&mut frontier, |j| {
            seen.push(j.id.raw());
            true
        });
        assert_eq!(seen, vec![6, 2, 4, 3, 1, 5], "ascending key order");
        assert_eq!(q.len(), 6, "scan must not mutate");
        // Early stop: the visitor's `false` ends the scan.
        seen.clear();
        q.scan_in_order(&mut frontier, |j| {
            seen.push(j.id.raw());
            seen.len() < 3
        });
        assert_eq!(seen, vec![6, 2, 4]);
        // Empty queue: no visits, no panic.
        let empty = ReadyQueue::with_capacity(4);
        empty.scan_in_order(&mut frontier, |_| panic!("no jobs to visit"));
    }

    #[test]
    fn churn_with_interleaved_removes_stays_consistent() {
        // Deterministic churn: push/remove/pop across several index
        // wrap-arounds; every op's result is cross-checked against a
        // naive model. Also the shape Miri runs in CI.
        let mut q = ReadyQueue::with_capacity(16);
        let mut model: Vec<Job> = Vec::new();
        let mut next_id = 0u64;
        let mut state = 0x9E37_79B9u64;
        for _ in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match state % 4 {
                0 | 1 => {
                    if model.len() < 16 {
                        let j = job(next_id, (state >> 8) % 5);
                        next_id += 1;
                        q.push(j).unwrap();
                        model.push(j);
                    }
                }
                2 => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, j)| j.queue_key())
                        .map(|(i, _)| i);
                    let got = q.pop();
                    match expect {
                        Some(i) => assert_eq!(got.unwrap(), model.remove(i)),
                        None => assert!(got.is_none()),
                    }
                }
                3 => {
                    if !model.is_empty() {
                        let i = (state >> 16) as usize % model.len();
                        let id = model[i].id;
                        assert_eq!(q.remove(id).unwrap(), model.remove(i));
                    }
                }
                _ => unreachable!(),
            }
            assert_eq!(q.len(), model.len());
            assert_eq!(
                q.peek().copied(),
                model.iter().min_by_key(|j| j.queue_key()).copied()
            );
        }
    }
}
