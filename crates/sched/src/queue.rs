//! Priority-ordered ready queues.
//!
//! With global scheduling "all worker threads share a common ready queue,
//! whereas with partitioned scheduling each worker thread has its own
//! ready queue" (§3.3, Fig. 1a/1b). The queue is an **index-tracked
//! 4-ary heap** over [`Job::queue_key`] with a fixed capacity decided at
//! `start()` — no allocation on any path after construction. Heap
//! entries carry the job payload inline next to a back-pointer into the
//! index slab, so every sift level is one array read, one array write
//! and one direct slab update — no hashing anywhere on the sift path.
//!
//! Every heap entry is tracked by an open-addressed index slab at most
//! half full, keyed by a Fibonacci (multiplicative) hash of the job id
//! (engines number jobs sequentially — shards stamp their shard index
//! into the high bits — so masking raw low bits would pile the live
//! window into one long occupied run and make probe scans O(queue);
//! the multiplicative spread keeps runs O(1) expected). The slab stores
//! the full [`JobId`] next to the heap position, so a lookup is
//! generation-checked: a colliding foreign id probes on instead of
//! aliasing. Deletion uses backward-shift compaction (no probe
//! tombstones), keeping lookups O(1) expected forever — there is no
//! lazy-delete state anywhere, so `len()` is exact,
//! [`ReadyQueue::peek`] takes `&self`, and removal never scans.
//!
//! | operation | cost |
//! |-----------|------|
//! | [`ReadyQueue::push`]   | O(log n) sift-up, O(1) index insert |
//! | [`ReadyQueue::pop`]    | O(log n) sift-down, O(1) index delete |
//! | [`ReadyQueue::remove`] | O(log n) sift from the tracked position |
//! | [`ReadyQueue::peek`] / [`ReadyQueue::peek_hint`] | O(1), `&self` |
//!
//! Earlier revisions used a `BinaryHeap` with tombstoned lazy deletion:
//! `remove` was an O(n) scan, `peek` needed `&mut self` to purge dead
//! entries, and a `compact()` rebuild guarded the capacity bound. The
//! index heap removes all three caveats; cheap `remove` + shared-ref
//! `peek` are also what work stealing needs to probe a victim queue.

use crate::job::Job;
use yasmin_core::error::{Error, Result};
use yasmin_core::ids::JobId;
use yasmin_core::priority::Priority;

/// Heap arity: 4 halves the depth of a binary heap for the queue sizes
/// the engine runs (dozens to a few thousand ready jobs), and the
/// four-child minimum scan stays within one cache line of `Job`s.
const D: usize = 4;

/// Marker for an unoccupied index-slab slot.
const EMPTY: u32 = u32::MAX;

/// One slot of the open-addressed id → heap-position index.
#[derive(Debug, Clone, Copy)]
struct IndexSlot {
    /// Full id stored for the generation check: a probe matches only on
    /// id equality, never on the hashed home slot alone.
    id: JobId,
    /// Position in the heap array, or [`EMPTY`].
    pos: u32,
}

/// One heap entry: the job plus a back-pointer to its index-slab slot,
/// so sift moves update the slab by direct indexing — no hashing or
/// probing anywhere on the sift path.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    job: Job,
    /// The index-slab slot tracking this entry.
    islot: u32,
}

/// A bounded, priority-ordered job queue (smaller priority value pops
/// first; ties broken by release time, then job id).
#[derive(Debug)]
pub struct ReadyQueue {
    /// 4-ary min-heap over [`Job::queue_key`]; `heap.len()` is the exact
    /// live count.
    heap: Vec<HeapEntry>,
    /// Open-addressed index over the heap, ≥ 2× capacity and a power of
    /// two, so a free slot always terminates a probe.
    index: Vec<IndexSlot>,
    /// `index.len() - 1`, for masked probing.
    mask: usize,
    capacity: usize,
    pushes: u64,
    pops: u64,
}

impl ReadyQueue {
    /// Creates a queue bounded to `capacity` pending jobs, pre-allocating
    /// the backing storage (heap array and index slab).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        ReadyQueue {
            heap: Vec::with_capacity(capacity),
            index: vec![
                IndexSlot {
                    id: JobId::new(0),
                    pos: EMPTY,
                };
                slots
            ],
            mask: slots - 1,
            capacity,
            pushes: 0,
            pops: 0,
        }
    }

    /// The index-slab slot an id probes from: a Fibonacci hash (the
    /// golden-ratio multiplier's high bits), so the sequential ids the
    /// engine mints scatter uniformly instead of forming one contiguous
    /// occupied run whose probe scans would grow with the queue.
    #[inline]
    fn home(&self, id: JobId) -> usize {
        let h = id.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// The slab slot holding `id`, or `None`.
    #[inline]
    fn index_lookup(&self, id: JobId) -> Option<usize> {
        let mut i = self.home(id);
        loop {
            let slot = self.index[i];
            if slot.pos == EMPTY {
                return None;
            }
            if slot.id == id {
                return Some(i);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Records `id` at heap position `pos` (id must not be present);
    /// returns the slab slot chosen.
    #[inline]
    fn index_insert(&mut self, id: JobId, pos: u32) -> u32 {
        let mut i = self.home(id);
        while self.index[i].pos != EMPTY {
            debug_assert_ne!(self.index[i].id, id, "duplicate live job id");
            i = (i + 1) & self.mask;
        }
        self.index[i] = IndexSlot { id, pos };
        i as u32
    }

    /// Deletes slab slot `i` by backward-shift compaction: entries in
    /// the probe chain whose home precedes the freed slot move back (the
    /// slab never accumulates probe tombstones), and each moved entry's
    /// heap back-pointer is re-aimed at its new slot.
    fn index_delete(&mut self, mut i: usize) {
        loop {
            self.index[i].pos = EMPTY;
            let mut j = i;
            loop {
                j = (j + 1) & self.mask;
                if self.index[j].pos == EMPTY {
                    return;
                }
                let h = self.home(self.index[j].id);
                // Keep the entry where it is iff its home lies cyclically
                // in (i, j]; otherwise it belongs at or before the hole.
                let stays = (j.wrapping_sub(h) & self.mask) < (j.wrapping_sub(i) & self.mask);
                if !stays {
                    self.index[i] = self.index[j];
                    self.heap[self.index[i].pos as usize].islot = i as u32;
                    i = j;
                    break;
                }
            }
        }
    }

    /// Moves the entry at `pos` up towards the root until the heap
    /// property holds; every shifted entry's slab slot is updated by
    /// direct indexing (no hashing on the sift path).
    fn sift_up(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / D;
            let pe = self.heap[parent];
            if pe.job.queue_key() <= entry.job.queue_key() {
                break;
            }
            self.heap[pos] = pe;
            self.index[pe.islot as usize].pos = pos as u32;
            pos = parent;
        }
        self.heap[pos] = entry;
        self.index[entry.islot as usize].pos = pos as u32;
    }

    /// Moves the entry at `pos` down towards the leaves until the heap
    /// property holds.
    fn sift_down(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        let n = self.heap.len();
        loop {
            let first = pos * D + 1;
            if first >= n {
                break;
            }
            let mut best = first;
            let mut best_key = self.heap[first].job.queue_key();
            for c in (first + 1)..(first + D).min(n) {
                let k = self.heap[c].job.queue_key();
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if entry.job.queue_key() <= best_key {
                break;
            }
            let ce = self.heap[best];
            self.heap[pos] = ce;
            self.index[ce.islot as usize].pos = pos as u32;
            pos = best;
        }
        self.heap[pos] = entry;
        self.index[entry.islot as usize].pos = pos as u32;
    }

    /// Detaches and returns the job at heap position `pos`, restoring
    /// the heap property around the hole.
    fn remove_at(&mut self, pos: usize) -> Job {
        let entry = self.heap[pos];
        self.index_delete(entry.islot as usize);
        let last = self.heap.pop().expect("pos is in bounds");
        if pos < self.heap.len() {
            self.heap[pos] = last;
            self.index[last.islot as usize].pos = pos as u32;
            // The filler came from a leaf: it may be out of order in
            // either direction relative to its new neighbourhood.
            if pos > 0 && last.job.queue_key() < self.heap[(pos - 1) / D].job.queue_key() {
                self.sift_up(pos);
            } else {
                self.sift_down(pos);
            }
        }
        entry.job
    }

    /// Inserts a job. Live job ids must be unique per queue (the engine
    /// numbers jobs monotonically, so this holds by construction; an id
    /// may be re-pushed after its previous instance left the queue).
    ///
    /// # Errors
    ///
    /// [`Error::CapacityExceeded`] when the bound would be crossed — a
    /// sizing error, not a runtime condition to paper over.
    #[inline]
    pub fn push(&mut self, job: Job) -> Result<()> {
        if self.heap.len() >= self.capacity {
            return Err(Error::CapacityExceeded {
                what: "ready queue",
                capacity: self.capacity,
            });
        }
        let pos = self.heap.len();
        let islot = self.index_insert(job.id, pos as u32);
        self.heap.push(HeapEntry { job, islot });
        self.sift_up(pos);
        self.pushes += 1;
        Ok(())
    }

    /// Removes and returns the most urgent job (O(log n)).
    #[inline]
    pub fn pop(&mut self) -> Option<Job> {
        if self.heap.is_empty() {
            return None;
        }
        self.pops += 1;
        Some(self.remove_at(0))
    }

    /// The most urgent job without removing it — O(1), through a shared
    /// reference, with no side effect.
    #[inline]
    #[must_use]
    pub fn peek(&self) -> Option<&Job> {
        self.heap.first().map(|e| &e.job)
    }

    /// The most urgent job's priority — what the dispatch paths that
    /// only compare urgency (the preemption check) need, without
    /// copying the whole job out.
    #[inline]
    #[must_use]
    pub fn peek_priority(&self) -> Option<Priority> {
        self.heap.first().map(|e| e.job.priority)
    }

    /// Alias of [`ReadyQueue::peek`], kept for the callers (telemetry,
    /// work-stealing probes) that adopted it while `peek` still needed
    /// `&mut self` to purge lazily-deleted entries. Both are now O(1)
    /// and side-effect-free.
    #[inline]
    #[must_use]
    pub fn peek_hint(&self) -> Option<&Job> {
        self.peek()
    }

    /// Removes a specific job in O(log n): the index locates its heap
    /// position, the last leaf fills the hole and sifts into place
    /// (used when cancelling, and by work stealing on victim queues).
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        let slot = self.index_lookup(id)?;
        let pos = self.index[slot].pos as usize;
        Some(self.remove_at(pos))
    }

    /// Number of queued jobs (exact — there is no lazy-delete debt).
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total pushes since creation (overhead accounting).
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total pops since creation (overhead accounting).
    #[must_use]
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Iterates over queued jobs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.heap.iter().map(|e| &e.job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::ids::TaskId;
    use yasmin_core::priority::Priority;
    use yasmin_core::time::{Duration, Instant};

    fn job(id: u64, prio: u64) -> Job {
        Job {
            id: JobId::new(id),
            task: TaskId::new(id as u32),
            seq: 0,
            release: Instant::ZERO,
            graph_release: Instant::ZERO,
            abs_deadline: Instant::ZERO + Duration::from_millis(1),
            priority: Priority::new(prio),
            preempted: false,
        }
    }

    #[test]
    fn pops_in_priority_order() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(1, 30)).unwrap();
        q.push(job(2, 10)).unwrap();
        q.push(job(3, 20)).unwrap();
        assert_eq!(q.peek().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().priority, Priority::new(10));
        assert_eq!(q.pop().unwrap().priority, Priority::new(20));
        assert_eq!(q.pop().unwrap().priority, Priority::new(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_priority_breaks_ties_deterministically() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(5, 10)).unwrap();
        q.push(job(2, 10)).unwrap();
        // Same priority & release: lower JobId first.
        assert_eq!(q.pop().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().id, JobId::new(5));
    }

    #[test]
    fn capacity_enforced() {
        let mut q = ReadyQueue::with_capacity(2);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        assert!(matches!(
            q.push(job(3, 3)),
            Err(Error::CapacityExceeded { capacity: 2, .. })
        ));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_specific_job() {
        let mut q = ReadyQueue::with_capacity(8);
        for i in 1..=4 {
            q.push(job(i, i)).unwrap();
        }
        let removed = q.remove(JobId::new(3)).unwrap();
        assert_eq!(removed.id, JobId::new(3));
        assert_eq!(q.len(), 3);
        assert!(q.remove(JobId::new(99)).is_none());
        // Remaining order intact.
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert_eq!(q.pop().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().id, JobId::new(4));
    }

    #[test]
    fn pop_after_remove_preserves_order() {
        // Removed entries must never surface from pop/peek, and the
        // surviving order must match a queue that never held them.
        let mut q = ReadyQueue::with_capacity(16);
        for i in 1..=8 {
            q.push(job(i, i)).unwrap();
        }
        assert!(q.remove(JobId::new(1)).is_some()); // current top
        assert!(q.remove(JobId::new(5)).is_some()); // mid-heap
        assert_eq!(q.len(), 6);
        assert_eq!(q.peek().unwrap().id, JobId::new(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|j| j.id.raw()).collect();
        assert_eq!(order, vec![2, 3, 4, 6, 7, 8]);
        assert!(q.is_empty());
        // Removing an already-removed id is a no-op.
        assert!(q.remove(JobId::new(5)).is_none());
    }

    #[test]
    fn peek_is_immutable_and_exact() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(1, 10)).unwrap();
        q.push(job(2, 20)).unwrap();
        q.push(job(3, 30)).unwrap();
        assert!(q.remove(JobId::new(1)).is_some()); // remove the top
        let hint = |q: &ReadyQueue| q.peek_hint().map(|j| j.id);
        assert_eq!(hint(&q), Some(JobId::new(2)), "peek sees the live top");
        assert_eq!(hint(&q), Some(JobId::new(2)), "no side effect");
        assert_eq!(q.peek().map(|j| j.id), Some(JobId::new(2)));
        assert!(ReadyQueue::with_capacity(2).peek_hint().is_none());
    }

    #[test]
    fn interleaved_remove_push_pop() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(1, 10)).unwrap();
        q.push(job(2, 20)).unwrap();
        q.push(job(3, 30)).unwrap();
        assert_eq!(q.remove(JobId::new(2)).unwrap().id, JobId::new(2));
        // A new, more urgent job after the removal.
        q.push(job(4, 5)).unwrap();
        assert_eq!(q.pop().unwrap().id, JobId::new(4));
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert_eq!(q.pop().unwrap().id, JobId::new(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn push_after_remove_of_same_id_is_live() {
        // Re-pushing an id after its previous instance was removed must
        // enqueue the new instance under its new key.
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(5, 30)).unwrap();
        q.push(job(1, 20)).unwrap();
        assert_eq!(q.remove(JobId::new(5)).unwrap().priority, Priority::new(30));
        // Same id, now more urgent than job 1.
        q.push(job(5, 10)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().priority, Priority::new(10));
        assert_eq!(q.pop().unwrap().priority, Priority::new(10));
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn removal_frees_capacity_for_pushes() {
        // Removed jobs free their slot immediately — the bound is on
        // live jobs and the index holds no lazy-delete debt.
        let mut q = ReadyQueue::with_capacity(2);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        assert!(q.remove(JobId::new(2)).is_some());
        assert_eq!(q.len(), 1);
        q.push(job(3, 3)).unwrap();
        assert!(matches!(
            q.push(job(4, 4)),
            Err(Error::CapacityExceeded { capacity: 2, .. })
        ));
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert_eq!(q.pop().unwrap().id, JobId::new(3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn op_counters() {
        let mut q = ReadyQueue::with_capacity(4);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        let _ = q.pop();
        assert_eq!(q.pushes(), 2);
        assert_eq!(q.pops(), 1);
        let _ = q.pop();
        let _ = q.pop(); // empty pop does not count
        assert_eq!(q.pops(), 2);
    }

    #[test]
    fn index_survives_colliding_homes() {
        // Three ids hashing to the same home slot of the 8-slot slab:
        // the full-id check and linear probing must keep them distinct,
        // and backward shift must keep the probe chain unbroken through
        // removals.
        let mask = 7usize; // (4.max(1) * 2).next_power_of_two() - 1
        let home = |id: u64| ((id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & mask;
        let mut colliders = vec![0u64];
        let mut id = 1u64;
        while colliders.len() < 3 {
            if home(id) == home(0) {
                colliders.push(id);
            }
            id += 1;
        }
        let mut q = ReadyQueue::with_capacity(4);
        for (i, &c) in colliders.iter().enumerate() {
            q.push(job(c, 10 * (i as u64 + 1))).unwrap();
        }
        assert_eq!(q.len(), 3);
        // Remove the middle collider; its probe-chain successor must
        // still resolve.
        assert_eq!(
            q.remove(JobId::new(colliders[1])).unwrap().priority,
            Priority::new(20)
        );
        assert_eq!(
            q.remove(JobId::new(colliders[2])).unwrap().priority,
            Priority::new(30)
        );
        assert_eq!(q.pop().unwrap().id, JobId::new(colliders[0]));
        assert!(q.is_empty());
    }

    #[test]
    fn churn_with_interleaved_removes_stays_consistent() {
        // Deterministic churn: push/remove/pop across several index
        // wrap-arounds; every op's result is cross-checked against a
        // naive model. Also the shape Miri runs in CI.
        let mut q = ReadyQueue::with_capacity(16);
        let mut model: Vec<Job> = Vec::new();
        let mut next_id = 0u64;
        let mut state = 0x9E37_79B9u64;
        for _ in 0..400 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match state % 4 {
                0 | 1 => {
                    if model.len() < 16 {
                        let j = job(next_id, (state >> 8) % 5);
                        next_id += 1;
                        q.push(j).unwrap();
                        model.push(j);
                    }
                }
                2 => {
                    let expect = model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, j)| j.queue_key())
                        .map(|(i, _)| i);
                    let got = q.pop();
                    match expect {
                        Some(i) => assert_eq!(got.unwrap(), model.remove(i)),
                        None => assert!(got.is_none()),
                    }
                }
                3 => {
                    if !model.is_empty() {
                        let i = (state >> 16) as usize % model.len();
                        let id = model[i].id;
                        assert_eq!(q.remove(id).unwrap(), model.remove(i));
                    }
                }
                _ => unreachable!(),
            }
            assert_eq!(q.len(), model.len());
            assert_eq!(
                q.peek().copied(),
                model.iter().min_by_key(|j| j.queue_key()).copied()
            );
        }
    }
}
