//! Priority-ordered ready queues.
//!
//! With global scheduling "all worker threads share a common ready queue,
//! whereas with partitioned scheduling each worker thread has its own
//! ready queue" (§3.3, Fig. 1a/1b). The queue is a binary heap over
//! [`Job::queue_key`] with a fixed capacity decided at `start()` — no
//! allocation on the hot path.

use crate::job::Job;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use yasmin_core::error::{Error, Result};
use yasmin_core::ids::JobId;

/// A bounded, priority-ordered job queue (smaller priority value pops
/// first; ties broken by release time, then job id).
#[derive(Debug)]
pub struct ReadyQueue {
    heap: BinaryHeap<Reverse<OrderedJob>>,
    capacity: usize,
    pushes: u64,
    pops: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OrderedJob(Job);

impl Ord for OrderedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.queue_key().cmp(&other.0.queue_key())
    }
}

impl PartialOrd for OrderedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl ReadyQueue {
    /// Creates a queue bounded to `capacity` pending jobs, pre-allocating
    /// the backing storage.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        ReadyQueue {
            heap: BinaryHeap::with_capacity(capacity),
            capacity,
            pushes: 0,
            pops: 0,
        }
    }

    /// Inserts a job.
    ///
    /// # Errors
    ///
    /// [`Error::CapacityExceeded`] when the bound would be crossed — a
    /// sizing error, not a runtime condition to paper over.
    pub fn push(&mut self, job: Job) -> Result<()> {
        if self.heap.len() >= self.capacity {
            return Err(Error::CapacityExceeded {
                what: "ready queue",
                capacity: self.capacity,
            });
        }
        self.heap.push(Reverse(OrderedJob(job)));
        self.pushes += 1;
        Ok(())
    }

    /// Removes and returns the most urgent job.
    pub fn pop(&mut self) -> Option<Job> {
        let j = self.heap.pop().map(|Reverse(OrderedJob(j))| j);
        if j.is_some() {
            self.pops += 1;
        }
        j
    }

    /// The most urgent job without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&Job> {
        self.heap.peek().map(|Reverse(OrderedJob(j))| j)
    }

    /// Removes a specific job (linear scan; used when cancelling).
    pub fn remove(&mut self, id: JobId) -> Option<Job> {
        let mut found = None;
        let items: Vec<_> = std::mem::take(&mut self.heap).into_vec();
        for Reverse(OrderedJob(j)) in items {
            if j.id == id && found.is_none() {
                found = Some(j);
            } else {
                self.heap.push(Reverse(OrderedJob(j)));
            }
        }
        found
    }

    /// Number of queued jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no jobs are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total pushes since creation (overhead accounting).
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total pops since creation (overhead accounting).
    #[must_use]
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Iterates over queued jobs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.heap.iter().map(|Reverse(OrderedJob(j))| j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::ids::TaskId;
    use yasmin_core::priority::Priority;
    use yasmin_core::time::{Duration, Instant};

    fn job(id: u64, prio: u64) -> Job {
        Job {
            id: JobId::new(id),
            task: TaskId::new(id as u32),
            seq: 0,
            release: Instant::ZERO,
            graph_release: Instant::ZERO,
            abs_deadline: Instant::ZERO + Duration::from_millis(1),
            priority: Priority::new(prio),
            preempted: false,
        }
    }

    #[test]
    fn pops_in_priority_order() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(1, 30)).unwrap();
        q.push(job(2, 10)).unwrap();
        q.push(job(3, 20)).unwrap();
        assert_eq!(q.peek().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().priority, Priority::new(10));
        assert_eq!(q.pop().unwrap().priority, Priority::new(20));
        assert_eq!(q.pop().unwrap().priority, Priority::new(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_priority_breaks_ties_deterministically() {
        let mut q = ReadyQueue::with_capacity(8);
        q.push(job(5, 10)).unwrap();
        q.push(job(2, 10)).unwrap();
        // Same priority & release: lower JobId first.
        assert_eq!(q.pop().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().id, JobId::new(5));
    }

    #[test]
    fn capacity_enforced() {
        let mut q = ReadyQueue::with_capacity(2);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        assert!(matches!(
            q.push(job(3, 3)),
            Err(Error::CapacityExceeded { capacity: 2, .. })
        ));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn remove_specific_job() {
        let mut q = ReadyQueue::with_capacity(8);
        for i in 1..=4 {
            q.push(job(i, i)).unwrap();
        }
        let removed = q.remove(JobId::new(3)).unwrap();
        assert_eq!(removed.id, JobId::new(3));
        assert_eq!(q.len(), 3);
        assert!(q.remove(JobId::new(99)).is_none());
        // Remaining order intact.
        assert_eq!(q.pop().unwrap().id, JobId::new(1));
        assert_eq!(q.pop().unwrap().id, JobId::new(2));
        assert_eq!(q.pop().unwrap().id, JobId::new(4));
    }

    #[test]
    fn op_counters() {
        let mut q = ReadyQueue::with_capacity(4);
        q.push(job(1, 1)).unwrap();
        q.push(job(2, 2)).unwrap();
        let _ = q.pop();
        assert_eq!(q.pushes(), 2);
        assert_eq!(q.pops(), 1);
        let _ = q.pop();
        let _ = q.pop(); // empty pop does not count
        assert_eq!(q.pops(), 2);
    }
}
