//! Off-line computed schedules and their on-line dispatcher (§3.4).
//!
//! "Unlike any similar middleware we found in literature, YASMIN also
//! natively supports off-line computed schedules. … In our run-time
//! implementation an on-line dispatcher dispatches tasks at the
//! predefined time following a given time table and a given mapping"
//! (Fig. 1c).
//!
//! This module provides three pieces:
//!
//! * [`ScheduleTable`] — the time table: per worker, a sequence of
//!   entries ordered by release time, covering one hyperperiod;
//! * [`synthesize`] — an off-line list scheduler that builds a table from
//!   a task set (deadline-ordered, precedence- and accelerator-aware,
//!   with the version pre-selected off-line as the paper suggests);
//! * [`OfflineDispatcher`] — the run-time side: hands each worker its next
//!   entry, wrapping around the hyperperiod with "special delay slots …
//!   in between RT tasks" represented by the gap to the entry's start.

use std::sync::Arc;
use yasmin_core::error::{Error, Result};
use yasmin_core::graph::TaskSet;
use yasmin_core::ids::{AccelId, TaskId, VersionId, WorkerId};
use yasmin_core::time::{Duration, Instant};

/// How the off-line scheduler picks the version of each task instance.
///
/// "If the static scheduler is aware of multi-version tasks, the version
/// can be pre-selected off-line", which also shrinks the binary (§3.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum OfflineVersionChoice {
    /// Shortest WCET (time-optimal greedy).
    #[default]
    MinWcet,
    /// Lowest energy per activation.
    MinEnergy,
    /// Shortest WCET among versions not using any accelerator.
    CpuOnly,
}

/// Options steering [`synthesize`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SynthesisOptions {
    /// Version pre-selection rule.
    pub version_choice: OfflineVersionChoice,
    /// Honour each task's `assigned_worker` (partitioned table) instead of
    /// placing greedily.
    pub partitioned: bool,
}

/// One slot of the time table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableEntry {
    /// The worker executing this slot.
    pub worker: WorkerId,
    /// Start time within the hyperperiod.
    pub start: Instant,
    /// Planned execution time (WCET of the chosen version).
    pub duration: Duration,
    /// The task instance.
    pub task: TaskId,
    /// The pre-selected version.
    pub version: VersionId,
    /// Instance number within the hyperperiod.
    pub instance: u64,
    /// Release time of the instance (never after `start`).
    pub release: Instant,
    /// Absolute deadline of the instance within the hyperperiod frame.
    pub abs_deadline: Instant,
}

impl TableEntry {
    /// The planned completion time.
    #[must_use]
    pub fn finish(&self) -> Instant {
        self.start + self.duration
    }
}

/// A validated off-line schedule covering one hyperperiod.
#[derive(Clone, Debug)]
pub struct ScheduleTable {
    horizon: Duration,
    per_worker: Vec<Vec<TableEntry>>,
    misses: Vec<TableEntry>,
}

impl ScheduleTable {
    /// The table horizon (the hyperperiod).
    #[must_use]
    pub fn horizon(&self) -> Duration {
        self.horizon
    }

    /// Number of workers the table targets.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.per_worker.len()
    }

    /// The entries of one worker, ordered by start time.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range.
    #[must_use]
    pub fn entries(&self, worker: WorkerId) -> &[TableEntry] {
        &self.per_worker[worker.index()]
    }

    /// All entries across workers (unordered).
    pub fn all_entries(&self) -> impl Iterator<Item = &TableEntry> {
        self.per_worker.iter().flatten()
    }

    /// Entries whose planned finish exceeds their deadline — a
    /// non-empty result means the heuristic found no feasible table.
    #[must_use]
    pub fn deadline_misses(&self) -> &[TableEntry] {
        &self.misses
    }

    /// Latest planned finish across all workers.
    #[must_use]
    pub fn makespan(&self) -> Duration {
        self.all_entries()
            .map(|e| e.finish().saturating_since(Instant::ZERO))
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// Checks the structural invariants of the table against `ts`:
    /// no overlap per worker, accelerator exclusivity, precedence between
    /// same-instance producer/consumer entries, releases respected.
    ///
    /// # Errors
    ///
    /// [`Error::Infeasible`] describing the first violation found.
    pub fn validate(&self, ts: &TaskSet) -> Result<()> {
        // Per-worker: sorted & non-overlapping.
        for (w, entries) in self.per_worker.iter().enumerate() {
            for pair in entries.windows(2) {
                if pair[1].start < pair[0].finish() {
                    return Err(Error::Infeasible(format!(
                        "worker {w}: overlapping entries at {} and {}",
                        pair[0].start, pair[1].start
                    )));
                }
            }
        }
        // Release respected & versions exist.
        for e in self.all_entries() {
            if e.start < e.release {
                return Err(Error::Infeasible(format!(
                    "task {} instance {} starts before release",
                    e.task, e.instance
                )));
            }
            ts.task(e.task)?.version(e.version)?;
        }
        // Accelerator exclusivity.
        let mut accel_busy: Vec<Vec<(Instant, Instant)>> = vec![Vec::new(); ts.accels().len()];
        for e in self.all_entries() {
            if let Some(a) = ts.task(e.task)?.version(e.version)?.accel() {
                accel_busy[a.index()].push((e.start, e.finish()));
            }
        }
        for (ai, mut spans) in accel_busy.into_iter().enumerate() {
            spans.sort();
            for pair in spans.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return Err(Error::Infeasible(format!(
                        "accelerator H{ai} used by two overlapping entries"
                    )));
                }
            }
        }
        // Precedence: same-instance src finish <= dst start.
        for edge in ts.edges() {
            let srcs: Vec<&TableEntry> =
                self.all_entries().filter(|e| e.task == edge.src).collect();
            let dsts: Vec<&TableEntry> =
                self.all_entries().filter(|e| e.task == edge.dst).collect();
            for d in &dsts {
                if let Some(s) = srcs.iter().find(|s| s.instance == d.instance) {
                    if d.start < s.finish() {
                        return Err(Error::Infeasible(format!(
                            "edge {}→{} instance {}: consumer starts before producer ends",
                            edge.src, edge.dst, d.instance
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// One job instance during synthesis.
#[derive(Clone, Debug)]
struct PendingJob {
    task: TaskId,
    instance: u64,
    release: Instant,
    abs_deadline: Instant,
    preds: Vec<usize>,
    scheduled: Option<usize>,
}

/// Builds an off-line table for one hyperperiod of `ts` on `workers`
/// workers, ordering choices by earliest deadline (an EDF list schedule).
///
/// Sporadic roots are planned at their minimum inter-arrival (worst
/// case); aperiodic tasks are excluded — §3.4 leaves them to the user.
///
/// # Errors
///
/// * [`Error::InvalidConfig`] if `workers == 0`;
/// * [`Error::Infeasible`] if the task set has no recurring task (no
///   hyperperiod), or partitioned synthesis lacks assignments.
pub fn synthesize(ts: &TaskSet, workers: usize, opts: SynthesisOptions) -> Result<ScheduleTable> {
    if workers == 0 {
        return Err(Error::InvalidConfig(
            "offline synthesis needs workers".into(),
        ));
    }
    let horizon = ts
        .hyperperiod()
        .ok_or_else(|| Error::Infeasible("no recurring task, hyperperiod undefined".into()))?;

    // 1. Expand job instances over the hyperperiod.
    let mut jobs: Vec<PendingJob> = Vec::new();
    let mut index_of: std::collections::HashMap<(TaskId, u64), usize> =
        std::collections::HashMap::new();
    for root in ts.roots() {
        if !root.spec().kind().is_recurring() {
            continue;
        }
        let period = root.spec().period();
        let offset = root.spec().release_offset();
        let count = horizon / period;
        let component = ts.component_of(root.id());
        for k in 0..count {
            let release = Instant::ZERO + offset + period * k;
            let rel_d = ts.effective_deadline(root.id());
            let abs_deadline = if rel_d == Duration::MAX {
                Instant::MAX
            } else {
                release + rel_d
            };
            // Component nodes in topological order: preds already indexed.
            for &node in &component {
                let preds: Vec<usize> = ts.in_edges(node).map(|e| index_of[&(e.src, k)]).collect();
                let idx = jobs.len();
                jobs.push(PendingJob {
                    task: node,
                    instance: k,
                    release,
                    abs_deadline,
                    preds,
                    scheduled: None,
                });
                index_of.insert((node, k), idx);
            }
        }
    }
    if jobs.is_empty() {
        return Err(Error::Infeasible("nothing to schedule".into()));
    }

    // 2. Greedy EDF list scheduling.
    let mut entries: Vec<TableEntry> = Vec::with_capacity(jobs.len());
    let mut worker_free = vec![Instant::ZERO; workers];
    let mut accel_free: std::collections::HashMap<AccelId, Instant> =
        std::collections::HashMap::new();
    let mut remaining = jobs.len();
    while remaining > 0 {
        // Ready = unscheduled with all preds scheduled.
        let mut best: Option<(Instant, Instant, usize)> = None; // (deadline, est, idx)
        for (i, j) in jobs.iter().enumerate() {
            if j.scheduled.is_some() {
                continue;
            }
            if j.preds.iter().any(|&p| jobs[p].scheduled.is_none()) {
                continue;
            }
            let pred_finish = j
                .preds
                .iter()
                .map(|&p| entries[jobs[p].scheduled.unwrap()].finish())
                .max()
                .unwrap_or(Instant::ZERO);
            let est = j.release.max(pred_finish);
            let key = (j.abs_deadline, est, i);
            if best.is_none_or(|b| key < (b.0, b.1, b.2)) {
                best = Some(key);
            }
        }
        let (_, _, idx) = best.expect("acyclic graph always has a ready job");
        let job = jobs[idx].clone();
        let task = ts.task(job.task)?;

        // Version pre-selection.
        let (version, vspec) = {
            let mut cands: Vec<(VersionId, &yasmin_core::version::VersionSpec)> = task
                .versions()
                .iter()
                .enumerate()
                .map(|(i, v)| (VersionId::new(i as u16), v))
                .collect();
            match opts.version_choice {
                OfflineVersionChoice::MinWcet => cands.sort_by_key(|(id, v)| (v.wcet(), *id)),
                OfflineVersionChoice::MinEnergy => {
                    cands.sort_by_key(|(id, v)| (v.energy(), *id));
                }
                OfflineVersionChoice::CpuOnly => {
                    cands.retain(|(_, v)| v.accel().is_none());
                    cands.sort_by_key(|(id, v)| (v.wcet(), *id));
                    if cands.is_empty() {
                        return Err(Error::Infeasible(format!(
                            "task {} has no CPU-only version",
                            job.task
                        )));
                    }
                }
            }
            cands[0]
        };

        let pred_finish = job
            .preds
            .iter()
            .map(|&p| entries[jobs[p].scheduled.unwrap()].finish())
            .max()
            .unwrap_or(Instant::ZERO);
        let est = job.release.max(pred_finish);
        let est = match vspec.accel() {
            Some(a) => est.max(*accel_free.get(&a).unwrap_or(&Instant::ZERO)),
            None => est,
        };

        // Worker choice.
        let w = if opts.partitioned {
            task.spec()
                .assigned_worker()
                .ok_or(Error::MissingPartition(job.task))?
                .index()
        } else {
            (0..workers)
                .min_by_key(|&w| (worker_free[w].max(est), w))
                .expect("workers > 0")
        };
        if w >= workers {
            return Err(Error::UnknownWorker(WorkerId::new(w as u16)));
        }
        let start = est.max(worker_free[w]);
        let entry = TableEntry {
            worker: WorkerId::new(w as u16),
            start,
            duration: vspec.wcet(),
            task: job.task,
            version,
            instance: job.instance,
            release: job.release,
            abs_deadline: job.abs_deadline,
        };
        worker_free[w] = entry.finish();
        if let Some(a) = vspec.accel() {
            accel_free.insert(a, entry.finish());
        }
        jobs[idx].scheduled = Some(entries.len());
        entries.push(entry);
        remaining -= 1;
    }

    // 3. Partition per worker, sort, collect misses.
    let mut per_worker: Vec<Vec<TableEntry>> = vec![Vec::new(); workers];
    let mut misses = Vec::new();
    for e in entries {
        if e.abs_deadline != Instant::MAX && e.finish() > e.abs_deadline {
            misses.push(e);
        }
        per_worker[e.worker.index()].push(e);
    }
    for v in &mut per_worker {
        v.sort_by_key(|e| (e.start, e.task));
    }
    Ok(ScheduleTable {
        horizon,
        per_worker,
        misses,
    })
}

/// Like [`synthesize`] but fails when any instance misses its deadline.
///
/// # Errors
///
/// [`Error::Infeasible`] listing the first missing instance, in addition
/// to the errors of [`synthesize`].
pub fn synthesize_strict(
    ts: &TaskSet,
    workers: usize,
    opts: SynthesisOptions,
) -> Result<ScheduleTable> {
    let table = synthesize(ts, workers, opts)?;
    if let Some(m) = table.deadline_misses().first() {
        return Err(Error::Infeasible(format!(
            "task {} instance {} finishes at {} after deadline {}",
            m.task,
            m.instance,
            m.finish(),
            m.abs_deadline
        )));
    }
    Ok(table)
}

/// A dispatch slot handed to a worker at run time, in absolute time
/// (hyperperiod repetitions unrolled).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DispatchSlot {
    /// Absolute planned start.
    pub start: Instant,
    /// Planned duration.
    pub duration: Duration,
    /// Absolute deadline.
    pub abs_deadline: Instant,
    /// Task to run.
    pub task: TaskId,
    /// Pre-selected version.
    pub version: VersionId,
    /// Global instance counter (across hyperperiods).
    pub global_instance: u64,
}

/// The per-worker run-time dispatcher (Fig. 1c): "each worker thread …
/// has access to a predefined sequence of RT tasks ordered by increasing
/// release time" and waits out the delay slots between them.
#[derive(Debug)]
pub struct OfflineDispatcher {
    table: Arc<ScheduleTable>,
    cursor: Vec<usize>,
    cycle: Vec<u64>,
}

impl OfflineDispatcher {
    /// Creates a dispatcher over `table`.
    #[must_use]
    pub fn new(table: Arc<ScheduleTable>) -> Self {
        let w = table.workers();
        OfflineDispatcher {
            table,
            cursor: vec![0; w],
            cycle: vec![0; w],
        }
    }

    /// The table driving this dispatcher.
    #[must_use]
    pub fn table(&self) -> &ScheduleTable {
        &self.table
    }

    /// The next slot for `worker`, advancing its cursor. Returns `None`
    /// only when the worker's table is empty.
    pub fn next_slot(&mut self, worker: WorkerId) -> Option<DispatchSlot> {
        let wi = worker.index();
        let entries = &self.table.per_worker[wi];
        if entries.is_empty() {
            return None;
        }
        let per_cycle = entries.len() as u64;
        let e = &entries[self.cursor[wi]];
        let shift =
            Duration::from_nanos(self.table.horizon.as_nanos().saturating_mul(self.cycle[wi]));
        let slot = DispatchSlot {
            start: e.start + shift,
            duration: e.duration,
            abs_deadline: if e.abs_deadline == Instant::MAX {
                Instant::MAX
            } else {
                e.abs_deadline + shift
            },
            task: e.task,
            version: e.version,
            global_instance: self.cycle[wi] * per_cycle + e.instance,
        };
        self.cursor[wi] += 1;
        if self.cursor[wi] == entries.len() {
            self.cursor[wi] = 0;
            self.cycle[wi] += 1;
        }
        Some(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use yasmin_core::graph::TaskSetBuilder;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::version::VersionSpec;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn at_ms(v: u64) -> Instant {
        Instant::from_nanos(v * 1_000_000)
    }

    fn independent_set() -> TaskSet {
        let mut b = TaskSetBuilder::new();
        let a = b.task_decl(TaskSpec::periodic("a", ms(10))).unwrap();
        let c = b.task_decl(TaskSpec::periodic("c", ms(20))).unwrap();
        b.version_decl(a, VersionSpec::new("a", ms(3))).unwrap();
        b.version_decl(c, VersionSpec::new("c", ms(8))).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn synthesis_covers_hyperperiod() {
        let ts = independent_set();
        let table = synthesize(&ts, 2, SynthesisOptions::default()).unwrap();
        assert_eq!(table.horizon(), ms(20));
        // a: 2 instances, c: 1 instance.
        assert_eq!(table.all_entries().count(), 3);
        assert!(table.deadline_misses().is_empty());
        table.validate(&ts).unwrap();
    }

    #[test]
    fn single_worker_serialises() {
        let ts = independent_set();
        let table = synthesize_strict(&ts, 1, SynthesisOptions::default()).unwrap();
        table.validate(&ts).unwrap();
        let entries = table.entries(WorkerId::new(0));
        assert_eq!(entries.len(), 3);
        // EDF order at time 0: a (deadline 10) before c (deadline 20).
        assert_eq!(entries[0].task, TaskId::new(0));
        assert_eq!(entries[1].task, TaskId::new(1));
        // a: 0-3, c: 3-11, second a released at 10 runs 11-14 => 14ms.
        assert_eq!(table.makespan(), ms(14));
    }

    #[test]
    fn infeasible_set_reported() {
        let mut b = TaskSetBuilder::new();
        let a = b.task_decl(TaskSpec::periodic("a", ms(10))).unwrap();
        b.version_decl(a, VersionSpec::new("a", ms(15))).unwrap();
        let ts = b.build().unwrap();
        let table = synthesize(&ts, 1, SynthesisOptions::default()).unwrap();
        assert_eq!(table.deadline_misses().len(), 1);
        assert!(synthesize_strict(&ts, 1, SynthesisOptions::default()).is_err());
    }

    #[test]
    fn precedence_respected_in_table() {
        let mut b = TaskSetBuilder::new();
        let src = b.task_decl(TaskSpec::periodic("src", ms(50))).unwrap();
        let dst = b.task_decl(TaskSpec::graph_node("dst")).unwrap();
        b.version_decl(src, VersionSpec::new("s", ms(10))).unwrap();
        b.version_decl(dst, VersionSpec::new("d", ms(5))).unwrap();
        let ch = b.channel_decl("c", 1, 4);
        b.channel_connect(src, dst, ch).unwrap();
        let ts = b.build().unwrap();
        let table = synthesize_strict(&ts, 2, SynthesisOptions::default()).unwrap();
        table.validate(&ts).unwrap();
        let src_e = table.all_entries().find(|e| e.task == src).unwrap();
        let dst_e = table.all_entries().find(|e| e.task == dst).unwrap();
        assert!(dst_e.start >= src_e.finish());
    }

    #[test]
    fn accel_exclusive_in_table() {
        let mut b = TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        let t1 = b.task_decl(TaskSpec::periodic("t1", ms(100))).unwrap();
        let t2 = b.task_decl(TaskSpec::periodic("t2", ms(100))).unwrap();
        b.version_decl(t1, VersionSpec::new("g1", ms(10)).with_accel(gpu))
            .unwrap();
        b.version_decl(t2, VersionSpec::new("g2", ms(10)).with_accel(gpu))
            .unwrap();
        let ts = b.build().unwrap();
        let table = synthesize_strict(&ts, 2, SynthesisOptions::default()).unwrap();
        table.validate(&ts).unwrap();
        // Despite two workers, GPU use must serialise.
        let mut spans: Vec<(Instant, Instant)> =
            table.all_entries().map(|e| (e.start, e.finish())).collect();
        spans.sort();
        assert!(spans[1].0 >= spans[0].1);
    }

    #[test]
    fn cpu_only_choice_avoids_accels() {
        let mut b = TaskSetBuilder::new();
        let gpu = b.hwaccel_decl("gpu");
        let t = b.task_decl(TaskSpec::periodic("t", ms(100))).unwrap();
        b.version_decl(t, VersionSpec::new("gpu", ms(10)).with_accel(gpu))
            .unwrap();
        b.version_decl(t, VersionSpec::new("cpu", ms(30))).unwrap();
        let ts = b.build().unwrap();
        let opts = SynthesisOptions {
            version_choice: OfflineVersionChoice::CpuOnly,
            ..SynthesisOptions::default()
        };
        let table = synthesize_strict(&ts, 1, opts).unwrap();
        assert_eq!(
            table.all_entries().next().unwrap().version,
            VersionId::new(1)
        );
    }

    #[test]
    fn partitioned_synthesis_respects_assignment() {
        let mut b = TaskSetBuilder::new();
        let a = b
            .task_decl(TaskSpec::periodic("a", ms(10)).on_worker(WorkerId::new(1)))
            .unwrap();
        b.version_decl(a, VersionSpec::new("a", ms(2))).unwrap();
        let ts = b.build().unwrap();
        let opts = SynthesisOptions {
            partitioned: true,
            ..SynthesisOptions::default()
        };
        let table = synthesize_strict(&ts, 2, opts).unwrap();
        assert!(table.entries(WorkerId::new(0)).is_empty());
        assert_eq!(table.entries(WorkerId::new(1)).len(), 1);
    }

    #[test]
    fn dispatcher_wraps_hyperperiods() {
        let ts = independent_set();
        let table = Arc::new(synthesize_strict(&ts, 1, SynthesisOptions::default()).unwrap());
        let mut d = OfflineDispatcher::new(Arc::clone(&table));
        let w = WorkerId::new(0);
        let s1 = d.next_slot(w).unwrap();
        let s2 = d.next_slot(w).unwrap();
        let s3 = d.next_slot(w).unwrap();
        let s4 = d.next_slot(w).unwrap(); // wrapped: cycle 1
        assert_eq!(s1.start, at_ms(0));
        assert!(s2.start >= s1.start);
        assert!(s3.start >= s2.start);
        assert_eq!(s4.start, s1.start + ms(20));
        assert_eq!(s4.task, s1.task);
        assert!(s4.global_instance > s3.global_instance);
    }

    #[test]
    fn dispatcher_empty_worker() {
        let mut b = TaskSetBuilder::new();
        let a = b
            .task_decl(TaskSpec::periodic("a", ms(10)).on_worker(WorkerId::new(0)))
            .unwrap();
        b.version_decl(a, VersionSpec::new("a", ms(1))).unwrap();
        let ts = b.build().unwrap();
        let opts = SynthesisOptions {
            partitioned: true,
            ..SynthesisOptions::default()
        };
        let table = Arc::new(synthesize_strict(&ts, 2, opts).unwrap());
        let mut d = OfflineDispatcher::new(table);
        assert!(d.next_slot(WorkerId::new(1)).is_none());
        assert!(d.next_slot(WorkerId::new(0)).is_some());
    }

    #[test]
    fn validate_catches_overlap() {
        let ts = independent_set();
        let mut table = synthesize(&ts, 1, SynthesisOptions::default()).unwrap();
        // Corrupt: force overlap.
        table.per_worker[0][1].start = Instant::ZERO;
        assert!(table.validate(&ts).is_err());
    }
}
