//! The version-selection engine.
//!
//! At each dispatch YASMIN picks which version of a task to run. Five
//! policies are supported (§3.2): energy capacity, energy/time trade-off,
//! execution mode, permission bit-mask, and a user-defined function —
//! plus the shortest-WCET default that the drone exploration of Figure 4
//! uses when "we … left the scheduler decide which one to execute".
//!
//! [`rank_versions`] returns *all* eligible versions ordered by
//! preference; the dispatcher then takes the first whose hardware
//! resources are free, which is how multi-version tasks sidestep
//! accelerator congestion.

use yasmin_core::config::{SelectCtx, VersionPolicy};
use yasmin_core::ids::VersionId;
use yasmin_core::task::Task;
use yasmin_core::version::VersionSpec;

/// Reusable output + scratch storage for [`rank_versions_into`].
///
/// A `RankBuf` amortises the working memory of version ranking: after a
/// warm-up call per task arity, ranking with the built-in policies
/// performs **zero heap allocations** — the sort runs in-place
/// (`sort_unstable_by_key`) over a retained scratch vector. The
/// dispatcher keeps one per engine (plus a per-task result cache) so
/// the dispatch hot path never touches the allocator.
#[derive(Debug, Default, Clone)]
pub struct RankBuf {
    /// Ranked version ids, most preferred first.
    ids: Vec<VersionId>,
    /// Sort scratch: (primary key, secondary key, id).
    scratch: Vec<(u64, u64, VersionId)>,
}

impl RankBuf {
    /// An empty buffer; storage grows on first use and is then retained.
    #[must_use]
    pub fn new() -> Self {
        RankBuf::default()
    }

    /// A buffer pre-sized for tasks with up to `n` versions.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        RankBuf {
            ids: Vec::with_capacity(n),
            scratch: Vec::with_capacity(n),
        }
    }

    /// The ranked ids from the most recent [`rank_versions_into`] call.
    #[must_use]
    pub fn as_slice(&self) -> &[VersionId] {
        &self.ids
    }

    /// Number of ranked versions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the last ranking produced no eligible version.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Sorts the scratch keys and copies the ids into `self.ids`.
    fn commit_sorted(&mut self) {
        // `sort_unstable` is in-place (the stable sort allocates); the
        // id tiebreaker makes the order total, so instability is moot.
        self.scratch.sort_unstable();
        self.ids.clear();
        self.ids.extend(self.scratch.iter().map(|&(_, _, id)| id));
    }
}

/// Ranks the versions of `task` under `policy` into `buf`, most
/// preferred first. Versions that a policy deems ineligible (budget
/// exceeded, wrong mode, missing permission) are filtered out entirely;
/// an empty result means *no version may run right now* and the
/// dispatcher treats the job as blocked.
///
/// Built-in policies allocate nothing once `buf` has warmed up to the
/// task's version count. [`VersionPolicy::UserDefined`] is the
/// exception: the callback contract returns a fresh `Vec` and receives
/// a freshly built candidate slice, so it allocates per call — user
/// policies are also never result-cached by the engine, since the
/// function may be stateful.
pub fn rank_versions_into(policy: &VersionPolicy, ctx: &SelectCtx, task: &Task, buf: &mut RankBuf) {
    let versions = task.versions();
    buf.ids.clear();
    buf.scratch.clear();

    match policy {
        VersionPolicy::ShortestWcet => {
            for (i, v) in versions.iter().enumerate() {
                buf.scratch.push((
                    v.wcet().as_nanos(),
                    v.energy().as_microjoules(),
                    VersionId::new(i as u16),
                ));
            }
            buf.commit_sorted();
        }
        VersionPolicy::Energy => {
            // Affordable versions first, the most capable (highest budget)
            // leading; an exhausted battery falls back to the cheapest
            // version so the task can still run.
            let battery = ctx.battery;
            let budget_of =
                |v: &VersionSpec| v.props().energy_budget.map_or(0, |e| e.as_microjoules());
            // Interpret budgets against the battery fraction with 25 %
            // headroom: the most demanding version stays affordable until
            // the battery drops below 80 %, then versions shed in budget
            // order — a graceful-degradation curve rather than a
            // knife-edge at exactly full charge.
            let max_budget = versions.iter().map(budget_of).max().unwrap_or(0);
            let affordable_limit =
                (u128::from(max_budget) * u128::from(battery.as_permille()) / 800) as u64;
            for (i, v) in versions.iter().enumerate() {
                let b = budget_of(v);
                if b <= affordable_limit {
                    // Descending budget via a complemented key.
                    buf.scratch
                        .push((u64::MAX - b, 0, VersionId::new(i as u16)));
                }
            }
            if buf.scratch.is_empty() {
                // Battery too low for every declared budget: degrade to
                // the single cheapest version.
                let cheapest = versions
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (budget_of(v), VersionId::new(i as u16)))
                    .min();
                if let Some((_, id)) = cheapest {
                    buf.ids.push(id);
                }
                return;
            }
            buf.commit_sorted();
        }
        VersionPolicy::EnergyTimeTradeoff { time_weight } => {
            let w = u64::from(*time_weight).min(1000);
            let max_t = versions
                .iter()
                .map(|v| v.wcet().as_nanos())
                .max()
                .unwrap_or(1)
                .max(1);
            let max_e = versions
                .iter()
                .map(|v| v.energy().as_microjoules())
                .max()
                .unwrap_or(1)
                .max(1);
            // Normalised weighted cost in permille; integer arithmetic for
            // determinism.
            for (i, v) in versions.iter().enumerate() {
                let t = v.wcet().as_nanos() * 1000 / max_t;
                let e = v.energy().as_microjoules() * 1000 / max_e;
                let cost = w * t + (1000 - w) * e;
                buf.scratch.push((cost, 0, VersionId::new(i as u16)));
            }
            buf.commit_sorted();
        }
        VersionPolicy::Mode => {
            for (i, v) in versions.iter().enumerate() {
                if v.props().modes.contains(ctx.mode) {
                    buf.scratch
                        .push((v.wcet().as_nanos(), 0, VersionId::new(i as u16)));
                }
            }
            buf.commit_sorted();
        }
        VersionPolicy::Permission => {
            for (i, v) in versions.iter().enumerate() {
                if v.props().permissions.intersects(ctx.permissions) {
                    buf.scratch
                        .push((v.wcet().as_nanos(), 0, VersionId::new(i as u16)));
                }
            }
            buf.commit_sorted();
        }
        VersionPolicy::UserDefined(f) => {
            let candidates: Vec<(VersionId, &VersionSpec)> = versions
                .iter()
                .enumerate()
                .map(|(i, v)| (VersionId::new(i as u16), v))
                .collect();
            buf.ids = f(ctx, task.id(), &candidates);
        }
    }
}

/// Ranks the versions of `task` under `policy`, most preferred first,
/// returning a fresh `Vec`. Thin allocating wrapper over
/// [`rank_versions_into`] — hot paths should hold a [`RankBuf`] instead.
#[must_use]
pub fn rank_versions(policy: &VersionPolicy, ctx: &SelectCtx, task: &Task) -> Vec<VersionId> {
    let mut buf = RankBuf::with_capacity(task.versions().len());
    rank_versions_into(policy, ctx, task, &mut buf);
    buf.ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use yasmin_core::energy::{BatteryLevel, Energy};
    use yasmin_core::ids::TaskId;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::time::Duration;
    use yasmin_core::version::{ExecMode, ModeMask, PermMask};

    fn two_version_task() -> Task {
        let mut t = Task::new(
            TaskId::new(0),
            TaskSpec::periodic("left", Duration::from_millis(250)),
        );
        // v0: cheap & slow (CPU); v1: hungry & fast (accelerator-ish).
        t.push_version(
            VersionSpec::new("v1", Duration::from_millis(80))
                .with_energy(Energy::from_millijoules(5))
                .with_energy_budget(Energy::from_millijoules(5)),
        );
        t.push_version(
            VersionSpec::new("v2", Duration::from_millis(30))
                .with_energy(Energy::from_millijoules(12))
                .with_energy_budget(Energy::from_millijoules(12)),
        );
        t
    }

    #[test]
    fn shortest_wcet_prefers_fastest() {
        let t = two_version_task();
        let r = rank_versions(&VersionPolicy::ShortestWcet, &SelectCtx::default(), &t);
        assert_eq!(r, vec![VersionId::new(1), VersionId::new(0)]);
    }

    #[test]
    fn energy_full_battery_prefers_most_capable() {
        let t = two_version_task();
        let ctx = SelectCtx {
            battery: BatteryLevel::FULL,
            ..SelectCtx::default()
        };
        let r = rank_versions(&VersionPolicy::Energy, &ctx, &t);
        assert_eq!(
            r[0],
            VersionId::new(1),
            "full battery affords the 12mJ version"
        );
    }

    #[test]
    fn energy_low_battery_degrades() {
        let t = two_version_task();
        let ctx = SelectCtx {
            battery: BatteryLevel::from_percent(30),
            ..SelectCtx::default()
        };
        // Affordable limit = 12mJ * 0.30 = 3.6mJ < both budgets -> degrade
        // to the cheapest version only.
        let r = rank_versions(&VersionPolicy::Energy, &ctx, &t);
        assert_eq!(r, vec![VersionId::new(0)]);
    }

    #[test]
    fn energy_mid_battery_keeps_affordable() {
        let t = two_version_task();
        let ctx = SelectCtx {
            battery: BatteryLevel::from_percent(50),
            ..SelectCtx::default()
        };
        // Limit = 6mJ: only the 5mJ version is affordable.
        let r = rank_versions(&VersionPolicy::Energy, &ctx, &t);
        assert_eq!(r, vec![VersionId::new(0)]);
    }

    #[test]
    fn tradeoff_pure_time_equals_shortest_wcet() {
        let t = two_version_task();
        let r = rank_versions(
            &VersionPolicy::EnergyTimeTradeoff { time_weight: 1000 },
            &SelectCtx::default(),
            &t,
        );
        assert_eq!(r[0], VersionId::new(1));
    }

    #[test]
    fn tradeoff_pure_energy_prefers_cheapest() {
        let t = two_version_task();
        let r = rank_versions(
            &VersionPolicy::EnergyTimeTradeoff { time_weight: 0 },
            &SelectCtx::default(),
            &t,
        );
        assert_eq!(r[0], VersionId::new(0));
    }

    #[test]
    fn mode_filters_by_current_mode() {
        let mut t = Task::new(
            TaskId::new(0),
            TaskSpec::periodic("enc", Duration::from_millis(500)),
        );
        t.push_version(
            VersionSpec::new("plain", Duration::from_millis(3))
                .with_modes(ModeMask::only(ExecMode::NORMAL)),
        );
        t.push_version(
            VersionSpec::new("aes", Duration::from_millis(100))
                .with_modes(ModeMask::only(ExecMode::new(1))),
        );
        let normal = SelectCtx::default();
        assert_eq!(
            rank_versions(&VersionPolicy::Mode, &normal, &t),
            vec![VersionId::new(0)]
        );
        let secure = SelectCtx {
            mode: ExecMode::new(1),
            ..SelectCtx::default()
        };
        assert_eq!(
            rank_versions(&VersionPolicy::Mode, &secure, &t),
            vec![VersionId::new(1)]
        );
    }

    #[test]
    fn permission_filters_by_mask() {
        let mut t = Task::new(
            TaskId::new(0),
            TaskSpec::periodic("p", Duration::from_millis(10)),
        );
        t.push_version(
            VersionSpec::new("a", Duration::from_millis(1))
                .with_permissions(PermMask::from_bits(0b01)),
        );
        t.push_version(
            VersionSpec::new("b", Duration::from_millis(2))
                .with_permissions(PermMask::from_bits(0b10)),
        );
        let ctx = SelectCtx {
            permissions: PermMask::from_bits(0b10),
            ..SelectCtx::default()
        };
        assert_eq!(
            rank_versions(&VersionPolicy::Permission, &ctx, &t),
            vec![VersionId::new(1)]
        );
        let none = SelectCtx {
            permissions: PermMask::NONE,
            ..SelectCtx::default()
        };
        assert!(rank_versions(&VersionPolicy::Permission, &none, &t).is_empty());
    }

    #[test]
    fn into_variant_matches_wrapper_and_reuses_storage() {
        let t = two_version_task();
        let mut buf = RankBuf::with_capacity(2);
        for policy in [
            VersionPolicy::ShortestWcet,
            VersionPolicy::Energy,
            VersionPolicy::EnergyTimeTradeoff { time_weight: 300 },
        ] {
            let ctx = SelectCtx::default();
            rank_versions_into(&policy, &ctx, &t, &mut buf);
            assert_eq!(
                buf.as_slice(),
                rank_versions(&policy, &ctx, &t).as_slice(),
                "policy {policy:?} diverged"
            );
        }
        // Storage is retained across calls.
        let ptr = buf.as_slice().as_ptr();
        rank_versions_into(
            &VersionPolicy::ShortestWcet,
            &SelectCtx::default(),
            &t,
            &mut buf,
        );
        assert_eq!(buf.as_slice().as_ptr(), ptr, "ids storage reused");
        assert_eq!(buf.len(), 2);
        assert!(!buf.is_empty());
    }

    #[test]
    fn degraded_energy_ranking_into_matches_wrapper() {
        let t = two_version_task();
        let ctx = SelectCtx {
            battery: BatteryLevel::from_percent(10),
            ..SelectCtx::default()
        };
        let mut buf = RankBuf::new();
        rank_versions_into(&VersionPolicy::Energy, &ctx, &t, &mut buf);
        assert_eq!(buf.as_slice(), &[VersionId::new(0)]);
    }

    #[test]
    fn user_defined_controls_order() {
        let t = two_version_task();
        let policy = VersionPolicy::UserDefined(Arc::new(|_, _, cands| {
            // Reverse declaration order.
            cands.iter().rev().map(|(id, _)| *id).collect()
        }));
        let r = rank_versions(&policy, &SelectCtx::default(), &t);
        assert_eq!(r, vec![VersionId::new(1), VersionId::new(0)]);
    }
}
