//! The version-selection engine.
//!
//! At each dispatch YASMIN picks which version of a task to run. Five
//! policies are supported (§3.2): energy capacity, energy/time trade-off,
//! execution mode, permission bit-mask, and a user-defined function —
//! plus the shortest-WCET default that the drone exploration of Figure 4
//! uses when "we … left the scheduler decide which one to execute".
//!
//! [`rank_versions`] returns *all* eligible versions ordered by
//! preference; the dispatcher then takes the first whose hardware
//! resources are free, which is how multi-version tasks sidestep
//! accelerator congestion.

use yasmin_core::config::{SelectCtx, VersionPolicy};
use yasmin_core::ids::VersionId;
use yasmin_core::task::Task;
use yasmin_core::version::VersionSpec;

/// Ranks the versions of `task` under `policy`, most preferred first.
/// Versions that a policy deems ineligible (budget exceeded, wrong mode,
/// missing permission) are filtered out entirely.
///
/// An empty result means *no version may run right now*; the dispatcher
/// treats the job as blocked.
#[must_use]
pub fn rank_versions(policy: &VersionPolicy, ctx: &SelectCtx, task: &Task) -> Vec<VersionId> {
    let candidates: Vec<(VersionId, &VersionSpec)> = task
        .versions()
        .iter()
        .enumerate()
        .map(|(i, v)| (VersionId::new(i as u16), v))
        .collect();

    match policy {
        VersionPolicy::ShortestWcet => {
            let mut c = candidates;
            c.sort_by_key(|(id, v)| (v.wcet(), v.energy(), *id));
            c.into_iter().map(|(id, _)| id).collect()
        }
        VersionPolicy::Energy => {
            // Affordable versions first, the most capable (highest budget)
            // leading; an exhausted battery falls back to the cheapest
            // version so the task can still run.
            let battery = ctx.battery;
            let budget_of =
                |v: &VersionSpec| v.props().energy_budget.map_or(0, |e| e.as_microjoules());
            // Interpret budgets against the battery fraction with 25 %
            // headroom: the most demanding version stays affordable until
            // the battery drops below 80 %, then versions shed in budget
            // order — a graceful-degradation curve rather than a
            // knife-edge at exactly full charge.
            let max_budget = candidates
                .iter()
                .map(|(_, v)| budget_of(v))
                .max()
                .unwrap_or(0);
            let affordable_limit =
                (u128::from(max_budget) * u128::from(battery.as_permille()) / 800) as u64;
            let mut affordable: Vec<_> = candidates
                .iter()
                .filter(|(_, v)| budget_of(v) <= affordable_limit)
                .map(|&(id, v)| (id, v))
                .collect();
            affordable.sort_by_key(|(id, v)| (std::cmp::Reverse(budget_of(v)), *id));
            if affordable.is_empty() {
                // Battery too low for every declared budget: degrade to
                // the single cheapest version.
                let mut c = candidates;
                c.sort_by_key(|(id, v)| (budget_of(v), *id));
                c.truncate(1);
                return c.into_iter().map(|(id, _)| id).collect();
            }
            affordable.into_iter().map(|(id, _)| id).collect()
        }
        VersionPolicy::EnergyTimeTradeoff { time_weight } => {
            let w = u64::from(*time_weight).min(1000);
            let max_t = candidates
                .iter()
                .map(|(_, v)| v.wcet().as_nanos())
                .max()
                .unwrap_or(1)
                .max(1);
            let max_e = candidates
                .iter()
                .map(|(_, v)| v.energy().as_microjoules())
                .max()
                .unwrap_or(1)
                .max(1);
            // Normalised weighted cost in permille; integer arithmetic for
            // determinism.
            let cost = |v: &VersionSpec| {
                let t = v.wcet().as_nanos() * 1000 / max_t;
                let e = v.energy().as_microjoules() * 1000 / max_e;
                w * t + (1000 - w) * e
            };
            let mut c = candidates;
            c.sort_by_key(|(id, v)| (cost(v), *id));
            c.into_iter().map(|(id, _)| id).collect()
        }
        VersionPolicy::Mode => {
            let mut c: Vec<_> = candidates
                .into_iter()
                .filter(|(_, v)| v.props().modes.contains(ctx.mode))
                .collect();
            c.sort_by_key(|(id, v)| (v.wcet(), *id));
            c.into_iter().map(|(id, _)| id).collect()
        }
        VersionPolicy::Permission => {
            let mut c: Vec<_> = candidates
                .into_iter()
                .filter(|(_, v)| v.props().permissions.intersects(ctx.permissions))
                .collect();
            c.sort_by_key(|(id, v)| (v.wcet(), *id));
            c.into_iter().map(|(id, _)| id).collect()
        }
        VersionPolicy::UserDefined(f) => f(ctx, task.id(), &candidates),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use yasmin_core::energy::{BatteryLevel, Energy};
    use yasmin_core::ids::TaskId;
    use yasmin_core::task::TaskSpec;
    use yasmin_core::time::Duration;
    use yasmin_core::version::{ExecMode, ModeMask, PermMask};

    fn two_version_task() -> Task {
        let mut t = Task::new(
            TaskId::new(0),
            TaskSpec::periodic("left", Duration::from_millis(250)),
        );
        // v0: cheap & slow (CPU); v1: hungry & fast (accelerator-ish).
        t.push_version(
            VersionSpec::new("v1", Duration::from_millis(80))
                .with_energy(Energy::from_millijoules(5))
                .with_energy_budget(Energy::from_millijoules(5)),
        );
        t.push_version(
            VersionSpec::new("v2", Duration::from_millis(30))
                .with_energy(Energy::from_millijoules(12))
                .with_energy_budget(Energy::from_millijoules(12)),
        );
        t
    }

    #[test]
    fn shortest_wcet_prefers_fastest() {
        let t = two_version_task();
        let r = rank_versions(&VersionPolicy::ShortestWcet, &SelectCtx::default(), &t);
        assert_eq!(r, vec![VersionId::new(1), VersionId::new(0)]);
    }

    #[test]
    fn energy_full_battery_prefers_most_capable() {
        let t = two_version_task();
        let ctx = SelectCtx {
            battery: BatteryLevel::FULL,
            ..SelectCtx::default()
        };
        let r = rank_versions(&VersionPolicy::Energy, &ctx, &t);
        assert_eq!(
            r[0],
            VersionId::new(1),
            "full battery affords the 12mJ version"
        );
    }

    #[test]
    fn energy_low_battery_degrades() {
        let t = two_version_task();
        let ctx = SelectCtx {
            battery: BatteryLevel::from_percent(30),
            ..SelectCtx::default()
        };
        // Affordable limit = 12mJ * 0.30 = 3.6mJ < both budgets -> degrade
        // to the cheapest version only.
        let r = rank_versions(&VersionPolicy::Energy, &ctx, &t);
        assert_eq!(r, vec![VersionId::new(0)]);
    }

    #[test]
    fn energy_mid_battery_keeps_affordable() {
        let t = two_version_task();
        let ctx = SelectCtx {
            battery: BatteryLevel::from_percent(50),
            ..SelectCtx::default()
        };
        // Limit = 6mJ: only the 5mJ version is affordable.
        let r = rank_versions(&VersionPolicy::Energy, &ctx, &t);
        assert_eq!(r, vec![VersionId::new(0)]);
    }

    #[test]
    fn tradeoff_pure_time_equals_shortest_wcet() {
        let t = two_version_task();
        let r = rank_versions(
            &VersionPolicy::EnergyTimeTradeoff { time_weight: 1000 },
            &SelectCtx::default(),
            &t,
        );
        assert_eq!(r[0], VersionId::new(1));
    }

    #[test]
    fn tradeoff_pure_energy_prefers_cheapest() {
        let t = two_version_task();
        let r = rank_versions(
            &VersionPolicy::EnergyTimeTradeoff { time_weight: 0 },
            &SelectCtx::default(),
            &t,
        );
        assert_eq!(r[0], VersionId::new(0));
    }

    #[test]
    fn mode_filters_by_current_mode() {
        let mut t = Task::new(
            TaskId::new(0),
            TaskSpec::periodic("enc", Duration::from_millis(500)),
        );
        t.push_version(
            VersionSpec::new("plain", Duration::from_millis(3))
                .with_modes(ModeMask::only(ExecMode::NORMAL)),
        );
        t.push_version(
            VersionSpec::new("aes", Duration::from_millis(100))
                .with_modes(ModeMask::only(ExecMode::new(1))),
        );
        let normal = SelectCtx::default();
        assert_eq!(
            rank_versions(&VersionPolicy::Mode, &normal, &t),
            vec![VersionId::new(0)]
        );
        let secure = SelectCtx {
            mode: ExecMode::new(1),
            ..SelectCtx::default()
        };
        assert_eq!(
            rank_versions(&VersionPolicy::Mode, &secure, &t),
            vec![VersionId::new(1)]
        );
    }

    #[test]
    fn permission_filters_by_mask() {
        let mut t = Task::new(
            TaskId::new(0),
            TaskSpec::periodic("p", Duration::from_millis(10)),
        );
        t.push_version(
            VersionSpec::new("a", Duration::from_millis(1))
                .with_permissions(PermMask::from_bits(0b01)),
        );
        t.push_version(
            VersionSpec::new("b", Duration::from_millis(2))
                .with_permissions(PermMask::from_bits(0b10)),
        );
        let ctx = SelectCtx {
            permissions: PermMask::from_bits(0b10),
            ..SelectCtx::default()
        };
        assert_eq!(
            rank_versions(&VersionPolicy::Permission, &ctx, &t),
            vec![VersionId::new(1)]
        );
        let none = SelectCtx {
            permissions: PermMask::NONE,
            ..SelectCtx::default()
        };
        assert!(rank_versions(&VersionPolicy::Permission, &none, &t).is_empty());
    }

    #[test]
    fn user_defined_controls_order() {
        let t = two_version_task();
        let policy = VersionPolicy::UserDefined(Arc::new(|_, _, cands| {
            // Reverse declaration order.
            cands.iter().rev().map(|(id, _)| *id).collect()
        }));
        let r = rank_versions(&policy, &SelectCtx::default(), &t);
        assert_eq!(r, vec![VersionId::new(1), VersionId::new(0)]);
    }
}
